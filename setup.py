"""Setuptools entry point.

Kept alongside pyproject.toml so the package installs in offline
environments that lack the ``wheel`` package (``python setup.py develop``
does not need to build a wheel, unlike PEP-517 editable installs).
"""

from setuptools import setup

setup()
