"""Cross-cutting invariants: classification stability, memory accounting,
failure injection at the engine level, cost monotonicity."""

import numpy as np
import pytest

from repro.core.classification import classify
from repro.core.survey import PAPER_TABLE_1, build_reference_instances
from repro.engines import CoGaDBEngine, ES2Engine, HyperEngine, PelotonEngine
from repro.execution import ExecutionContext
from repro.execution.operators import sum_column
from repro.hardware import Platform
from repro.workload import generate_items, item_schema


class TestClassificationStability:
    """Table 1 must keep matching after engines adapt: a responsive
    engine's re-organization changes its fragments, never its class."""

    def test_rows_match_after_reorganization(self):
        for engine, relation_name in build_reference_instances(row_count=400):
            if engine.is_responsive:
                engine.reorganize(
                    relation_name, ExecutionContext(engine.platform)
                )
            derived = classify(engine, relation_name)
            expected = PAPER_TABLE_1[engine.name]
            assert derived.adaptability == expected.adaptability, engine.name
            assert (
                derived.flexibility.table_label
                == expected.flexibility.table_label
            ), engine.name
            assert derived.scheme == expected.scheme, engine.name
            assert derived.location_label == expected.location_label, engine.name


class TestMemoryAccounting:
    def test_hyper_compaction_conserves_payload(self):
        platform = Platform.paper_testbed()
        engine = HyperEngine(platform, chunk_rows=64)
        engine.create("item", item_schema())
        engine.load("item", generate_items(500))
        used = platform.host_memory.used
        engine.reorganize("item", ExecutionContext(platform))
        assert platform.host_memory.used == used

    def test_peloton_reformat_conserves_payload(self):
        platform = Platform.paper_testbed()
        engine = PelotonEngine(platform, tile_group_rows=64)
        engine.create("item", item_schema())
        engine.load("item", generate_items(500))
        ctx = ExecutionContext(platform)
        for __ in range(10):
            engine.sum("item", "i_price", ctx)
        used = platform.host_memory.used
        engine.reorganize("item", ctx)
        assert platform.host_memory.used == used

    def test_device_memory_freed_on_reference_merge(self):
        from repro.core.reference_engine import ReferenceEngine

        platform = Platform.paper_testbed()
        engine = ReferenceEngine(platform, delta_tile_rows=64)
        engine.create("item", item_schema())
        engine.load("item", generate_items(500))
        placed_bytes = platform.device_memory.used
        assert placed_bytes > 0
        ctx = ExecutionContext(platform)
        for i in range(5):
            engine.insert("item", (500 + i, 1, "AA", "B", 1.0), ctx)
        engine.reorganize("item", ctx)
        # Replicas were rebuilt for the grown relation, not leaked.
        expected = sum(
            505 * item_schema().attribute(a).width
            for a in engine.placed_columns("item")
        )
        assert platform.device_memory.used == expected


class TestES2FailureInjection:
    def test_node_failure_keeps_engine_queryable(self):
        """Losing one node's DFS replicas must not lose data (the
        surviving memory fragments and DFS replicas still serve)."""
        platform = Platform.paper_testbed()
        engine = ES2Engine(platform, partition_rows=128, dfs_replication=3)
        engine.create("item", item_schema())
        columns = generate_items(400)
        engine.load("item", columns)
        expected = float(np.sum(columns["i_price"]))

        lost = engine.dfs.fail_node("node1")
        assert lost > 0
        assert engine.dfs.under_replicated()
        ctx = ExecutionContext(platform)
        assert engine.sum("item", "i_price", ctx) == pytest.approx(expected)

        repaired = engine.dfs.re_replicate(ctx.counters)
        assert repaired == lost
        assert engine.dfs.under_replicated() == []

    def test_dfs_pages_match_fragments_after_readaption(self):
        platform = Platform.paper_testbed()
        engine = ES2Engine(platform, partition_rows=128)
        engine.create("item", item_schema())
        engine.load("item", generate_items(400))
        ctx = ExecutionContext(platform)
        for __ in range(30):
            engine.sum("item", "i_price", ctx)
        engine.reorganize("item", ctx)
        for layout in engine.layouts("item"):
            for fragment in layout.fragments:
                assert engine.dfs.file(fragment.label).size == len(
                    fragment.serialize()
                )


class TestCoGaDBCapacityExhaustion:
    def test_placement_fills_device_then_falls_back(self):
        # Device fits exactly two 400-row columns of 8 bytes.
        platform = Platform.paper_testbed(device_capacity=2 * 400 * 8)
        engine = CoGaDBEngine(platform)
        engine.create("item", item_schema())
        engine.load("item", generate_items(400))
        ctx = ExecutionContext(platform)
        reports = engine.place_columns("item", ("i_price", "i_id", "i_im_id"), ctx)
        assert [report.placed for report in reports] == [True, True, False]
        assert "fallback" in reports[2].reason
        assert platform.device_memory.available == 0
        # Queries remain correct regardless of where columns ended up.
        assert engine.sum("item", "i_price", ctx) > 0
        assert engine.sum("item", "i_im_id", ctx) >= 0


class TestInsertHeavyPaths:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: HyperEngine(p, chunk_rows=64),
            lambda p: PelotonEngine(p, tile_group_rows=64),
        ],
        ids=["HyPer", "Peloton"],
    )
    def test_hundreds_of_inserts_across_chunks(self, factory):
        platform = Platform.paper_testbed()
        engine = factory(platform)
        engine.create("item", item_schema())
        columns = generate_items(100)
        engine.load("item", columns)
        ctx = ExecutionContext(platform)
        for i in range(300):
            engine.insert("item", (1000 + i, 1, "AA", "B", float(i % 7)), ctx)
        assert engine.relation("item").row_count == 400
        expected = float(np.sum(columns["i_price"])) + sum(
            float(i % 7) for i in range(300)
        )
        assert engine.sum("item", "i_price", ctx) == pytest.approx(expected)
        assert engine.point_query("item", 1299, ctx)[0] == 1299
        for layout in engine.layouts("item"):
            layout.validate()


class TestCostMonotonicity:
    def test_scan_cost_monotone_in_rows(self, platform):
        from repro.bench import build_column_store
        from repro.workload import item_relation

        costs = []
        for rows in (10_000, 100_000, 1_000_000):
            fresh = Platform.paper_testbed()
            store = build_column_store(fresh, item_relation(rows))
            ctx = ExecutionContext(fresh)
            sum_column(store, "i_price", ctx)
            costs.append(ctx.cycles)
        assert costs == sorted(costs)
        # And superlinearity is bounded: 10x data <= ~12x cost.
        assert costs[2] / costs[1] < 12

    def test_materialize_cost_monotone_in_positions(self, platform):
        from repro.bench import build_row_store
        from repro.execution.operators import materialize_rows
        from repro.workload import customer_relation, random_positions

        relation = customer_relation(1_000_000)
        store = build_row_store(platform, relation)
        costs = []
        for count in (10, 100, 1000):
            ctx = ExecutionContext(platform)
            materialize_rows(store, random_positions(1_000_000, count), ctx)
            costs.append(ctx.cycles)
        assert costs == sorted(costs)
