"""Figure 2 acceptance: the paper's findings (i)-(iv) hold for every
panel, at paper scale, on the simulated platform.

These are the reproduction's quantitative acceptance criteria from
DESIGN.md §4.  Each panel runs on a reduced x-axis (first/last paper
points) to keep the suite fast; the benchmark harness runs the full
axes.
"""

import pytest

from repro.bench import (
    check_panel1_shapes,
    check_panel2_shapes,
    check_panel3_shapes,
    check_panel4_shapes,
    panel1_materialize_customers,
    panel2_sum_selected_items,
    panel3_sum_all_transfer_included,
    panel4_sum_all_device_resident,
    trace_crosscheck,
)


@pytest.fixture(scope="module")
def panel1():
    return panel1_materialize_customers(row_counts=(5_000_000, 85_000_000))


@pytest.fixture(scope="module")
def panel2():
    return panel2_sum_selected_items(row_counts=(10_000_000, 60_000_000))


@pytest.fixture(scope="module")
def panel3():
    return panel3_sum_all_transfer_included(row_counts=(5_000_000, 65_000_000))


@pytest.fixture(scope="module")
def panel4():
    return panel4_sum_all_device_resident(row_counts=(5_000_000, 65_000_000))


class TestPanelShapes:
    def test_panel1_findings_i_and_ii(self, panel1):
        assert check_panel1_shapes(panel1) == []

    def test_panel2_findings_i_and_ii(self, panel2):
        assert check_panel2_shapes(panel2) == []

    def test_panel3_finding_iii_and_transfer_penalty(self, panel3):
        assert check_panel3_shapes(panel3) == []

    def test_panel4_finding_iv(self, panel4):
        assert check_panel4_shapes(panel4) == []


class TestPanelMagnitudes:
    def test_row_store_materialization_factor(self, panel1):
        """NSM materializes ~21-column records an order of magnitude
        cheaper than DSM (one record access vs. 21 column accesses)."""
        row = panel1.y_at("row-store / host & single-threaded", 85_000_000)
        column = panel1.y_at("column-store / host & single-threaded", 85_000_000)
        assert 5 <= column / row <= 50

    def test_column_scan_factor(self, panel3):
        """DSM scans 8 of 28 record bytes: a ~2.5-3.5x advantage."""
        row = panel3.y_at("row-store / host & single-threaded", 65_000_000)
        column = panel3.y_at("column-store / host & single-threaded", 65_000_000)
        assert 1.5 <= row / column <= 5

    def test_device_advantage_factor(self, panel4):
        """The resident GPU sum wins by roughly device/host bandwidth."""
        host = panel4.y_at("column-store / host & multi-threaded", 65_000_000)
        device = panel4.y_at("column-store / device", 65_000_000)
        assert 2 <= host / device <= 20

    def test_scans_scale_linearly(self, panel3):
        """Full-column sums are linear in the row count."""
        small = panel3.y_at("column-store / host & single-threaded", 5_000_000)
        large = panel3.y_at("column-store / host & single-threaded", 65_000_000)
        assert large / small == pytest.approx(13.0, rel=0.15)

    def test_point_queries_nearly_flat(self, panel1):
        """150 point accesses grow only via TLB effects, not linearly."""
        small = panel1.y_at("row-store / host & single-threaded", 5_000_000)
        large = panel1.y_at("row-store / host & single-threaded", 85_000_000)
        assert large / small < 2.0

    def test_transfer_dominates_panel3_device(self, panel3, panel4):
        """Panels 3 vs 4 differ exactly by the staging cost."""
        with_transfer = panel3.y_at("column-store / device", 65_000_000)
        resident = panel4.y_at("column-store / device", 65_000_000)
        assert with_transfer > 5 * resident


class TestTraceCrosscheck:
    """The batched trace path re-validates Figure 2's two scan shapes.

    `trace_crosscheck` drives the layout-generated addresses through
    `access_batch` and compares against the analytic formulas — the
    production-path version of the synthetic agreement tests in
    tests/hardware/test_cache.py.
    """

    def test_both_shapes_agree(self):
        report = trace_crosscheck(row_count=60_000)
        dsm = report["dsm_stream"]
        nsm = report["nsm_strided"]
        assert dsm["ratio"] == pytest.approx(1.0, rel=0.25)
        assert nsm["ratio"] == pytest.approx(1.0, rel=0.25)
        # The traced orderings reproduce the paper's effect: strided
        # NSM field reads cost more than the DSM column stream.
        assert nsm["traced_cycles"] > dsm["traced_cycles"]
