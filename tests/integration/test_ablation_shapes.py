"""Ablation acceptance: each sweep shows the effect it isolates."""

import pytest

from repro.bench.ablations import (
    gputx_bulk_size_sweep,
    pcie_crossover_sweep,
    pdsm_mixed_workload_sweep,
    processing_model_sweep,
    threading_crossover_sweep,
)


class TestThreadingCrossover:
    def test_cheap_threads_make_multi_win(self):
        points = threading_crossover_sweep(
            spawn_cycles_values=(1_000.0, 2_000_000.0), row_count=1_000_000
        )
        assert points[0].outcomes["multi_wins"] == 1.0
        assert points[-1].outcomes["multi_wins"] == 0.0

    def test_multi_cost_monotone_in_spawn(self):
        points = threading_crossover_sweep(
            spawn_cycles_values=(10_000.0, 100_000.0, 400_000.0)
        )
        costs = [p.outcomes["multi_ms"] for p in points]
        assert costs == sorted(costs)


class TestPcieCrossover:
    def test_fast_link_flips_the_winner(self):
        points = pcie_crossover_sweep(bandwidths=(2e9, 64e9))
        assert points[0].outcomes["device_wins"] == 0.0
        assert points[-1].outcomes["device_wins"] == 1.0

    def test_paper_link_speed_loses(self):
        """At the paper-era ~6 GB/s the transfer kills the device win —
        panel 3's message."""
        (point,) = pcie_crossover_sweep(bandwidths=(6e9,))
        assert point.outcomes["device_wins"] == 0.0


class TestPdsm:
    def test_no_layout_wins_everywhere(self):
        """Section II-B: 'neither DSM nor NSM is always the best choice'."""
        points = pdsm_mixed_workload_sweep(oltp_shares=(0.0, 1.0))
        olap_only, oltp_only = points
        assert olap_only.outcomes["dsm_ms"] < olap_only.outcomes["nsm_ms"]
        assert oltp_only.outcomes["nsm_ms"] < oltp_only.outcomes["dsm_ms"]

    def test_pdsm_between_the_extremes_on_oltp(self):
        (point,) = pdsm_mixed_workload_sweep(oltp_shares=(1.0,))
        assert (
            point.outcomes["nsm_ms"]
            < point.outcomes["pdsm_ms"]
            < point.outcomes["dsm_ms"]
        )

    def test_pdsm_matches_dsm_on_olap(self):
        """Arulraj 2016: PDSM is 'less efficient than DSM for several
        cases' — here the hot-column split makes the scan equal-cost,
        never better."""
        (point,) = pdsm_mixed_workload_sweep(oltp_shares=(0.0,))
        assert point.outcomes["pdsm_ms"] == pytest.approx(
            point.outcomes["dsm_ms"], rel=0.01
        )


class TestGpuTxBulk:
    def test_per_tx_cost_collapses_with_bulk_size(self):
        points = gputx_bulk_size_sweep(bulk_sizes=(1, 64, 4096))
        costs = [p.outcomes["per_tx_us"] for p in points]
        assert costs[0] > 10 * costs[1] > 10 * costs[2]


class TestProcessingModels:
    def test_bulk_always_wins_and_gap_grows_absolutely(self):
        points = processing_model_sweep(row_counts=(1_000, 100_000))
        for point in points:
            assert point.outcomes["bulk_ms"] < point.outcomes["volcano_ms"]
        gap_small = points[0].outcomes["volcano_ms"] - points[0].outcomes["bulk_ms"]
        gap_large = points[-1].outcomes["volcano_ms"] - points[-1].outcomes["bulk_ms"]
        assert gap_large > gap_small
