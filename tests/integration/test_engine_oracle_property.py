"""Property-based oracle tests: random operation sequences, every engine.

Hypothesis drives randomized interleavings of updates, point reads,
position sums and full sums against each engine and a plain-Python
oracle; any divergence in any engine's data plane fails with the
shrunk operation sequence.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.reference_engine import ReferenceEngine
from repro.engines import (
    CoGaDBEngine,
    ColumnStoreEngine,
    EmulatedMultiLayoutEngine,
    ES2Engine,
    FracturedMirrorsEngine,
    GpuTxEngine,
    H2OEngine,
    HyperEngine,
    HyriseEngine,
    LStoreEngine,
    PaxEngine,
    PelotonEngine,
    RowStoreEngine,
)
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema

ROWS = 120

ENGINES = {
    "RowStore": RowStoreEngine,
    "ColumnStore": ColumnStoreEngine,
    "EmulatedMulti": EmulatedMultiLayoutEngine,
    "PAX": lambda p: PaxEngine(p, buffer_pool_pages=8),
    "Frac. Mirrors": FracturedMirrorsEngine,
    "ES2": lambda p: ES2Engine(p, partition_rows=48),
    "GPUTx": GpuTxEngine,
    "HYRISE": HyriseEngine,
    "H2O": lambda p: H2OEngine(p, hot_columns=("i_price",)),
    "HyPer": lambda p: HyperEngine(p, chunk_rows=32),
    "CoGaDB": CoGaDBEngine,
    "L-Store": lambda p: LStoreEngine(p, tail_capacity=16),
    "L-Store+compression": lambda p: LStoreEngine(
        p, tail_capacity=16, compress_base=True
    ),
    "Peloton": lambda p: PelotonEngine(p, tile_group_rows=32),
    "Reference": lambda p: ReferenceEngine(p, delta_tile_rows=32, auto_place=False),
}

operation = st.one_of(
    st.tuples(
        st.just("update"),
        st.integers(0, ROWS - 1),
        st.floats(-1000, 1000, allow_nan=False),
    ),
    st.tuples(st.just("read"), st.integers(0, ROWS - 1)),
    st.tuples(
        st.just("sum_at"),
        st.lists(st.integers(0, ROWS - 1), min_size=1, max_size=8, unique=True),
    ),
    st.just(("sum",)),
)


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@given(operations=st.lists(operation, max_size=25))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_random_operations_match_oracle(engine_name, operations):
    platform = Platform.paper_testbed()
    engine = ENGINES[engine_name](platform)
    engine.create("item", item_schema())
    columns = generate_items(ROWS)
    engine.load("item", columns)
    oracle = columns["i_price"].astype(float).copy()
    ctx = ExecutionContext(platform)

    for op in operations:
        if op[0] == "update":
            __, position, value = op
            engine.update("item", position, "i_price", value, ctx)
            oracle[position] = value
        elif op[0] == "read":
            __, position = op
            row = engine.materialize("item", [position], ctx)[0]
            assert row[4] == pytest.approx(oracle[position])
        elif op[0] == "sum_at":
            __, positions = op
            positions = sorted(positions)
            got = engine.sum_at("item", "i_price", positions, ctx)
            assert got == pytest.approx(float(np.sum(oracle[positions])))
        else:
            got = engine.sum("item", "i_price", ctx)
            assert got == pytest.approx(float(np.sum(oracle)))

    # Final full check, plus a reorganize-then-recheck for responsive
    # engines (re-organization must never change answers).
    assert engine.sum("item", "i_price", ctx) == pytest.approx(float(np.sum(oracle)))
    if engine.is_responsive:
        engine.reorganize("item", ctx)
        assert engine.sum("item", "i_price", ctx) == pytest.approx(
            float(np.sum(oracle))
        )
        row = engine.materialize("item", [ROWS - 1], ctx)[0]
        assert row[4] == pytest.approx(oracle[ROWS - 1])
