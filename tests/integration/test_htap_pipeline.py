"""End-to-end HTAP scenario: a mixed workload against adaptive engines.

Drives an HTAPMix query stream through engines, checks every answer
against a plain-Python oracle, and verifies that responsive engines end
up cheaper after adaptation than before.
"""

import numpy as np
import pytest

from repro.core.reference_engine import ReferenceEngine
from repro.engines import H2OEngine, HyriseEngine, PelotonEngine
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import HTAPMix, QueryShape, generate_items, item_relation, item_schema

ROWS = 600


def oracle_columns(columns):
    return {name: list(values) for name, values in columns.items()}


def run_mix(engine, platform, mix, count):
    """Run the mix, mirroring every write into a Python oracle."""
    ctx = ExecutionContext(platform)
    oracle = oracle_columns(generate_items(ROWS))
    for query in mix.queries(count):
        if query.shape is QueryShape.FULL_SUM:
            got = engine.sum("item", query.attributes[0], ctx)
            want = float(np.sum(oracle[query.attributes[0]]))
            assert got == pytest.approx(want), query
        elif query.shape is QueryShape.POINT_MATERIALIZE:
            rows = engine.materialize("item", list(query.positions), ctx)
            for row, position in zip(rows, query.positions):
                assert row[0] == oracle["i_id"][position]
        else:  # POINT_UPDATE
            position = query.positions[0]
            attribute = query.attributes[0]
            value = float(len(oracle[attribute]) % 97)
            engine.update("item", position, attribute, value, ctx)
            oracle[attribute][position] = value
    return ctx


ENGINES = {
    "HYRISE": HyriseEngine,
    "H2O": lambda p: H2OEngine(p, hot_columns=("i_price",)),
    "Peloton": lambda p: PelotonEngine(p, tile_group_rows=128),
    "Reference": lambda p: ReferenceEngine(p, delta_tile_rows=128),
}


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_mixed_workload_correctness(name):
    platform = Platform.paper_testbed()
    engine = ENGINES[name](platform)
    engine.create("item", item_schema())
    engine.load("item", generate_items(ROWS))
    mix = HTAPMix(item_relation(ROWS), oltp_fraction=0.5, seed=17)
    run_mix(engine, platform, mix, count=60)


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_adaptation_pays_off_for_scan_heavy_drift(name):
    """Workload drifts to pure OLAP; after reorganize, scans are no
    more expensive than before (strictly cheaper for layout-changing
    engines)."""
    platform = Platform.paper_testbed()
    engine = ENGINES[name](platform)
    engine.create("item", item_schema())
    engine.load("item", generate_items(ROWS))
    ctx = ExecutionContext(platform)
    for __ in range(30):
        engine.sum("item", "i_price", ctx)
    before = ExecutionContext(platform)
    engine.sum("item", "i_price", before)
    engine.reorganize("item", ExecutionContext(platform))
    after = ExecutionContext(platform)
    engine.sum("item", "i_price", after)
    assert after.cycles <= before.cycles


def test_reference_engine_full_htap_lifecycle():
    """Load -> mixed queries -> inserts -> merge -> device-accelerated
    analytics, all values checked."""
    platform = Platform.paper_testbed()
    engine = ReferenceEngine(platform, delta_tile_rows=64)
    engine.create("item", item_schema())
    columns = generate_items(ROWS)
    engine.load("item", columns)
    ctx = ExecutionContext(platform)

    expected = float(np.sum(columns["i_price"]))
    for i in range(20):
        engine.insert("item", (ROWS + i, 1, "AA", "B", 10.0), ctx)
        expected += 10.0
    engine.update("item", 0, "i_price", 1.0, ctx)
    expected += 1.0 - float(columns["i_price"][0])
    assert engine.sum("item", "i_price", ctx) == pytest.approx(expected)

    assert engine.reorganize("item", ctx)
    assert engine.sum("item", "i_price", ctx) == pytest.approx(expected)
    assert engine.point_query("item", ROWS + 5, ctx)[4] == 10.0
    assert engine.placed_columns("item")
