"""Unit tests for the Figure 2 harness itself (repro.bench)."""

import pytest

from repro.bench import (
    PanelResult,
    SeriesPoint,
    build_column_store,
    build_device_column_store,
    build_row_store,
    panel1_materialize_customers,
    render_panel,
)
from repro.hardware.memory import MemoryKind
from repro.layout.linearization import LinearizationKind
from repro.workload import item_relation


class TestStoreBuilders:
    def test_row_store_is_one_nsm_phantom(self, platform):
        store = build_row_store(platform, item_relation(1000))
        assert len(store) == 1
        fragment = store.fragments[0]
        assert fragment.linearization is LinearizationKind.NSM
        assert fragment.is_phantom and fragment.filled == 1000

    def test_column_store_one_fragment_per_attribute(self, platform):
        store = build_column_store(platform, item_relation(1000))
        assert len(store) == 5
        assert all(f.region.is_column for f in store.fragments)
        store.validate()

    def test_device_store_places_requested_columns(self, platform):
        store = build_device_column_store(
            platform, item_relation(1000), ("i_price",)
        )
        spaces = {
            f.region.attributes[0]: f.space.kind for f in store.fragments
        }
        assert spaces["i_price"] is MemoryKind.DEVICE
        assert spaces["i_id"] is MemoryKind.HOST

    def test_stores_account_simulated_memory(self, platform):
        build_row_store(platform, item_relation(1000))
        assert platform.host_memory.used == 1000 * 28


class TestPanelResult:
    def test_y_at(self):
        panel = PanelResult(
            "t", {"s": (SeriesPoint(10, 1.0, 0.5), SeriesPoint(20, 2.0, 1.0))}
        )
        assert panel.y_at("s", 20) == 1.0
        with pytest.raises(KeyError):
            panel.y_at("s", 30)

    def test_render_contains_all_series_and_rows(self):
        panel = panel1_materialize_customers(row_counts=(5_000_000,))
        rendered = render_panel(panel)
        assert "5M" in rendered
        for name in panel.series:
            assert name in rendered

    def test_points_follow_x_axis(self):
        panel = panel1_materialize_customers(row_counts=(5_000_000, 25_000_000))
        for points in panel.series.values():
            assert [p.rows for p in points] == [5_000_000, 25_000_000]

    def test_milliseconds_consistent_with_cycles(self):
        panel = panel1_materialize_customers(row_counts=(5_000_000,))
        for points in panel.series.values():
            point = points[0]
            assert point.milliseconds == pytest.approx(
                point.cycles / 2.6e9 * 1e3
            )
