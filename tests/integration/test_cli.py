"""CLI entry point tests (python -m repro)."""

from repro.__main__ import main


def test_default_survey_succeeds(capsys):
    assert main([]) == 0
    output = capsys.readouterr().out
    assert "PAX" in output and "Peloton" in output
    assert "all six" in output


def test_taxonomy(capsys):
    assert main(["taxonomy"]) == 0
    assert "Fragment Linearization" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["bogus"]) == 2
    assert "unknown command" in capsys.readouterr().out


def test_figure2_command(capsys):
    assert main(["figure2"]) == 0
    output = capsys.readouterr().out
    assert "materialize 150 customers" in output
    assert "transfer excluded" in output
    assert output.count("column-store / device") >= 2
