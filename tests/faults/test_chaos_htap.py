"""End-to-end chaos tests: HTAP workloads under seeded fault schedules.

The acceptance claim: with per-site fault probability <= 0.2, every
query of a faulted run returns exactly the fault-free run's answer, the
number of injected faults equals the number retried + fallen back +
recovered + surfaced (nothing vanishes), and the faulted run's total
simulated cycle count is strictly greater (resilience is paid for, not
free).
"""

import os

import pytest

from repro.core.reference_engine import ReferenceEngine
from repro.engines import H2OEngine
from repro.engines.cogadb import CoGaDBEngine
from repro.execution import ExecutionContext
from repro.faults import (
    SITE_DEVICE_ALLOC,
    SITE_KERNEL_LAUNCH,
    SITE_PCIE_TRANSFER,
    SITE_REORG_INTERRUPT,
    FaultInjector,
    RetryPolicy,
    run_query_stream,
)
from repro.hardware import Platform
from repro.workload import HTAPMix, generate_items, item_relation, item_schema

#: CI's chaos job sweeps this over fixed seeds; the default is the
#: local developer run.  Every assertion below must hold for ANY seed —
#: the fault schedule changes, the guarantees don't.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "5"))

#: Well above HyPE's on-device GPU crossover, so even after calibration
#: drift the schedulers keep routing sums to the device fault sites.
ROWS = 30_000
#: Small relation for the reorg tests (migration is row by row).
REORG_ROWS = 400
QUERIES = 50


def build_engine(key: str, rows: int = ROWS):
    platform = Platform.paper_testbed()
    if key == "cogadb":
        engine = CoGaDBEngine(platform)
    elif key == "reference":
        engine = ReferenceEngine(platform, delta_tile_rows=128)
    else:
        engine = H2OEngine(platform, hot_columns=("i_price",))
    engine.create("item", item_schema())
    engine.load("item", generate_items(rows))
    if key == "cogadb":
        engine.place_columns(
            "item", ("i_price", "i_im_id"), ExecutionContext(platform)
        )
    return engine, platform


def htap_queries(count: int = QUERIES, rows: int = ROWS):
    return HTAPMix(item_relation(rows), oltp_fraction=0.4, seed=17).query_list(count)


def run_fault_free(key: str, queries, reorganize_every: int = 0, rows: int = ROWS):
    engine, platform = build_engine(key, rows)
    ctx = ExecutionContext(platform)
    ctx.retry = RetryPolicy()  # wired but a pass-through without faults
    return run_query_stream(
        engine, "item", queries, ctx, reorganize_every=reorganize_every
    )


def run_faulted(
    key: str, queries, injector: FaultInjector, reorganize_every=0, rows: int = ROWS
):
    engine, platform = build_engine(key, rows)
    injector.install(platform)
    ctx = ExecutionContext(platform)
    ctx.retry = RetryPolicy(report=injector.report)
    result = run_query_stream(
        engine,
        "item",
        queries,
        ctx,
        injector=injector,
        reorganize_every=reorganize_every,
    )
    return result, engine


def device_fault_injector(seed: int = CHAOS_SEED) -> FaultInjector:
    return (
        FaultInjector(seed=seed)
        .arm(SITE_PCIE_TRANSFER, 0.15)
        .arm(SITE_DEVICE_ALLOC, 0.05)
        .arm(SITE_KERNEL_LAUNCH, 0.05)
    )


@pytest.mark.parametrize("key", ["cogadb", "reference"])
class TestChaosCorrectness:
    def test_faulted_run_matches_fault_free_run(self, key):
        queries = htap_queries()
        baseline = run_fault_free(key, queries)
        faulted, __ = run_faulted(key, queries, device_fault_injector())
        assert faulted.results == baseline.results

    def test_every_injected_fault_is_accounted(self, key):
        injector = device_fault_injector()
        run_faulted(key, htap_queries(), injector)
        report = injector.report
        assert report.injected > 0, "chaos run injected nothing — raise the odds"
        assert report.injected == (
            report.retried + report.fallen_back + report.recovered + report.surfaced
        )
        assert report.unaccounted == 0

    def test_resilience_costs_cycles(self, key):
        queries = htap_queries()
        baseline = run_fault_free(key, queries)
        faulted, __ = run_faulted(key, queries, device_fault_injector())
        assert faulted.cycles > baseline.cycles

    def test_counters_surface_resilience_events(self, key):
        injector = device_fault_injector()
        faulted, __ = run_faulted(key, htap_queries(), injector)
        assert faulted.counters["faults_injected"] == injector.report.injected
        handled_locally = (
            faulted.counters["fault_retries"] + faulted.counters["fault_fallbacks"]
        )
        assert handled_locally > 0


class TestChaosWithReorganization:
    """H2O re-organizes mid-stream while reorg interruptions are armed."""

    def test_aborted_reorgs_do_not_corrupt_answers(self):
        queries = htap_queries(rows=REORG_ROWS)
        baseline = run_fault_free(
            "h2o", queries, reorganize_every=10, rows=REORG_ROWS
        )
        injector = (
            FaultInjector(seed=11)
            .arm(SITE_REORG_INTERRUPT, 0.002)
            .arm(SITE_PCIE_TRANSFER, 0.1)
        )
        faulted, engine = run_faulted(
            "h2o", queries, injector, reorganize_every=10, rows=REORG_ROWS
        )
        assert faulted.results == baseline.results
        assert injector.report.unaccounted == 0
        attempted, aborted = faulted.reorganizations
        assert attempted == QUERIES // 10
        assert aborted >= 1, "no reorg was interrupted — adjust the seed"
        # The rollback guarantee: the engine still serves a valid layout.
        engine.layouts("item")[0].validate()

    def test_fault_free_twin_run_has_no_resilience_noise(self):
        baseline = run_fault_free(
            "h2o", htap_queries(rows=REORG_ROWS), reorganize_every=10, rows=REORG_ROWS
        )
        assert baseline.resilience == {}
        assert baseline.counters["faults_injected"] == 0
        assert baseline.reorganizations[1] == 0
