"""Determinism: the chaos subsystem is a pure function of its seeds.

Two runs with the same (engine, workload, fault seed) must agree on
every result, every performance counter, and every resilience counter —
byte for byte once serialized.  This is what makes fault schedules
debuggable and chaos failures reproducible.
"""

import json

from repro.faults import (
    SITE_DEVICE_ALLOC,
    SITE_KERNEL_LAUNCH,
    SITE_PCIE_TRANSFER,
    FaultInjector,
)

from tests.faults.test_chaos_htap import build_engine, htap_queries, run_faulted


def chaos_run(seed: int):
    injector = (
        FaultInjector(seed=seed)
        .arm(SITE_PCIE_TRANSFER, 0.15)
        .arm(SITE_DEVICE_ALLOC, 0.05)
        .arm(SITE_KERNEL_LAUNCH, 0.05)
    )
    result, __ = run_faulted("cogadb", htap_queries(), injector)
    return result


class TestSeedDeterminism:
    def test_same_seed_same_results(self):
        assert chaos_run(seed=21).results == chaos_run(seed=21).results

    def test_same_seed_byte_identical_counters(self):
        first = chaos_run(seed=21)
        second = chaos_run(seed=21)
        first_bytes = json.dumps(
            {"counters": first.counters, "resilience": first.resilience},
            sort_keys=True,
        ).encode()
        second_bytes = json.dumps(
            {"counters": second.counters, "resilience": second.resilience},
            sort_keys=True,
        ).encode()
        assert first_bytes == second_bytes
        assert first.cycles == second.cycles

    def test_different_seed_different_fault_schedule(self):
        """Distinct seeds must not replay the same fault sequence."""
        schedules = set()
        for seed in (1, 2, 3, 4, 5):
            run = chaos_run(seed)
            schedules.add(
                tuple(sorted((k, v) for k, v in run.resilience.items()))
            )
        assert len(schedules) > 1

    def test_fault_free_runs_are_deterministic_too(self):
        from tests.faults.test_chaos_htap import run_fault_free

        queries = htap_queries()
        first = run_fault_free("reference", queries)
        second = run_fault_free("reference", queries)
        assert first.results == second.results
        assert first.counters == second.counters
        assert first.cycles == second.cycles

    def test_engine_state_is_rebuilt_not_shared(self):
        """build_engine returns fresh platforms (no cross-run bleed)."""
        engine_one, platform_one = build_engine("cogadb")
        engine_two, platform_two = build_engine("cogadb")
        assert platform_one is not platform_two
        assert engine_one is not engine_two
