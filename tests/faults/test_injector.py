"""FaultInjector unit tests: sites, specs, determinism, installation."""

import pytest

from repro.errors import (
    DeviceError,
    ExecutionError,
    ReproError,
    TransferError,
)
from repro.execution import ExecutionContext
from repro.faults import (
    FAULT_SITES,
    SITE_DEVICE_ALLOC,
    SITE_KERNEL_LAUNCH,
    SITE_PCIE_TRANSFER,
    FaultInjector,
    FaultSpec,
    register_fault_site,
)
from repro.hardware import Platform
from repro.hardware.event import PerfCounters


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ExecutionError):
            FaultSpec("no.such.site", 0.5)

    def test_probability_bounds(self):
        with pytest.raises(ExecutionError):
            FaultSpec(SITE_PCIE_TRANSFER, 1.5)
        with pytest.raises(ExecutionError):
            FaultSpec(SITE_PCIE_TRANSFER, -0.1)

    def test_negative_cap_rejected(self):
        with pytest.raises(ExecutionError):
            FaultSpec(SITE_PCIE_TRANSFER, 0.5, max_faults=-1)

    def test_exhaustion(self):
        spec = FaultSpec(SITE_PCIE_TRANSFER, 1.0, max_faults=2)
        assert not spec.exhausted
        spec.fired = 2
        assert spec.exhausted


class TestRegistry:
    def test_builtin_sites_registered(self):
        for site in (SITE_PCIE_TRANSFER, SITE_DEVICE_ALLOC, SITE_KERNEL_LAUNCH):
            description, error = FAULT_SITES[site]
            assert description
            assert issubclass(error, ReproError)

    def test_register_new_site(self):
        name = register_fault_site("test.flaky-cache", "cache line flip")
        try:
            assert name in FAULT_SITES
            with pytest.raises(ExecutionError):
                FaultInjector(seed=1).arm(name, 1.0).check(name)
        finally:
            del FAULT_SITES["test.flaky-cache"]

    def test_conflicting_reregistration_rejected(self):
        with pytest.raises(ExecutionError):
            register_fault_site(SITE_PCIE_TRANSFER, "something else entirely")

    def test_idempotent_reregistration_allowed(self):
        description, error = FAULT_SITES[SITE_PCIE_TRANSFER]
        assert register_fault_site(SITE_PCIE_TRANSFER, description, error) == (
            SITE_PCIE_TRANSFER
        )


class TestInjection:
    def test_unarmed_site_never_fires(self):
        injector = FaultInjector(seed=1)
        assert not any(injector.fires(SITE_PCIE_TRANSFER) for _ in range(100))

    def test_armed_site_fires_eventually(self):
        injector = FaultInjector(seed=1).arm(SITE_PCIE_TRANSFER, 0.5)
        assert any(injector.fires(SITE_PCIE_TRANSFER) for _ in range(100))

    def test_unarmed_checks_consume_no_randomness(self):
        """The fault sequence only depends on draws at armed sites."""
        plain = FaultInjector(seed=9).arm(SITE_PCIE_TRANSFER, 0.3)
        noisy = FaultInjector(seed=9).arm(SITE_PCIE_TRANSFER, 0.3)
        pattern_plain = []
        pattern_noisy = []
        for _ in range(60):
            pattern_plain.append(plain.fires(SITE_PCIE_TRANSFER))
            noisy.fires(SITE_DEVICE_ALLOC)  # unarmed: must not perturb
            pattern_noisy.append(noisy.fires(SITE_PCIE_TRANSFER))
        assert pattern_plain == pattern_noisy

    def test_max_faults_cap(self):
        injector = FaultInjector(seed=1).arm(SITE_PCIE_TRANSFER, 1.0, max_faults=3)
        fired = sum(injector.fires(SITE_PCIE_TRANSFER) for _ in range(10))
        assert fired == 3
        assert injector.total_injected == 3

    def test_check_raises_registered_error_marked_injected(self):
        injector = FaultInjector(seed=1).arm(SITE_DEVICE_ALLOC, 1.0)
        counters = PerfCounters()
        with pytest.raises(DeviceError) as excinfo:
            injector.check(SITE_DEVICE_ALLOC, counters)
        assert excinfo.value.injected is True
        assert counters.faults_injected == 1
        assert injector.report.injected_by_site[SITE_DEVICE_ALLOC] == 1

    def test_arm_all(self):
        injector = FaultInjector(seed=1).arm_all(0.2)
        assert set(injector.specs) == set(FAULT_SITES)

    def test_duplicate_arm_rejected(self):
        """Re-arming silently overwrote the schedule before; now it errors."""
        injector = FaultInjector(seed=1).arm(SITE_PCIE_TRANSFER, 0.3)
        with pytest.raises(ExecutionError, match="already armed"):
            injector.arm(SITE_PCIE_TRANSFER, 0.9)
        # The original schedule survives the rejected re-arm.
        assert injector.specs[SITE_PCIE_TRANSFER].probability == 0.3

    def test_disarm_then_rearm(self):
        injector = FaultInjector(seed=1).arm(SITE_PCIE_TRANSFER, 0.3)
        injector.disarm(SITE_PCIE_TRANSFER)
        assert not injector.armed
        injector.arm(SITE_PCIE_TRANSFER, 0.9)
        assert injector.specs[SITE_PCIE_TRANSFER].probability == 0.9

    def test_disarm_unknown_site_is_noop(self):
        FaultInjector(seed=1).disarm("never.armed.site")

    def test_choice_is_deterministic(self):
        options = ["a", "b", "c", "d"]
        picks_one = [FaultInjector(seed=4).choice(options) for _ in range(1)]
        picks_two = [FaultInjector(seed=4).choice(options) for _ in range(1)]
        assert picks_one == picks_two

    def test_choice_requires_options(self):
        with pytest.raises(ExecutionError):
            FaultInjector(seed=1).choice([])


class TestInstallation:
    def test_install_hooks_platform_models(self, platform: Platform):
        injector = FaultInjector(seed=1)
        injector.install(platform)
        assert platform.injector is injector
        assert platform.interconnect.injector is injector
        assert platform.gpu.injector is injector

    def test_transfer_fault_charges_before_raising(self, platform: Platform):
        FaultInjector(seed=1).arm(SITE_PCIE_TRANSFER, 1.0).install(platform)
        counters = PerfCounters()
        with pytest.raises(TransferError):
            platform.interconnect.transfer_cost(1 << 20, counters)
        assert counters.cycles > 0  # the wire time was burned anyway
        assert counters.bytes_transferred == 1 << 20
        assert counters.faults_injected == 1

    def test_prediction_calls_never_fault(self, platform: Platform):
        """Cost-model *predictions* pass no counters and stay pure."""
        FaultInjector(seed=1).arm_all(1.0).install(platform)
        assert platform.interconnect.transfer_cost(1 << 20) > 0
        assert platform.gpu.reduction_cost(1000, 4) > 0

    def test_kernel_fault_raises_device_error(self, platform: Platform):
        FaultInjector(seed=1).arm(SITE_KERNEL_LAUNCH, 1.0).install(platform)
        counters = PerfCounters()
        with pytest.raises(DeviceError):
            platform.gpu.reduction_cost(1000, 4, counters)
        assert counters.cycles > 0

    def test_uninstalled_platform_is_fault_free(self, platform: Platform):
        ctx = ExecutionContext(platform)
        cost = platform.interconnect.transfer_cost(1 << 20, ctx.counters)
        assert cost > 0
        assert ctx.counters.faults_injected == 0
