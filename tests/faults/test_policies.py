"""RetryPolicy, CircuitBreaker and FallbackChain unit tests."""

import pytest

from repro.errors import (
    CapacityError,
    DeadlineExceeded,
    DeviceError,
    EngineError,
    ExecutionError,
    TransferError,
)
from repro.execution import ExecutionContext
from repro.faults import (
    CircuitBreaker,
    FallbackChain,
    FallbackStep,
    FaultInjector,
    ResilienceReport,
    RetryPolicy,
)


def injected_transfer_error() -> TransferError:
    error = TransferError("injected transfer fault")
    error.injected = True
    return error


class Flaky:
    """Callable failing a fixed number of times before succeeding."""

    def __init__(self, failures: int, error_factory=injected_transfer_error):
        self.failures = failures
        self.error_factory = error_factory
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error_factory()
        return "served"


class TestRetryPolicy:
    def test_transient_failure_absorbed(self, ctx: ExecutionContext):
        report = ResilienceReport()
        policy = RetryPolicy(max_attempts=3, report=report)
        flaky = Flaky(failures=2)
        assert policy.run("op", flaky, ctx) == "served"
        assert flaky.calls == 3
        assert report.retried == 2
        assert ctx.counters.fault_retries == 2

    def test_backoff_charged_in_cycles(self, ctx: ExecutionContext):
        policy = RetryPolicy(max_attempts=2, backoff_cycles=10_000.0)
        policy.run("op", Flaky(failures=1), ctx)
        assert ctx.counters.cycles >= 9_000.0  # one jittered backoff
        assert any("retry-backoff" in part for part in ctx.breakdown.parts)

    def test_exhausted_attempts_propagate_untallied(self, ctx: ExecutionContext):
        report = ResilienceReport()
        policy = RetryPolicy(max_attempts=3, report=report)
        with pytest.raises(TransferError):
            policy.run("op", Flaky(failures=99), ctx)
        # Two absorbed failures tallied; the final one is the caller's
        # to attribute (fallback or surfaced), never double-counted.
        assert report.retried == 2

    def test_organic_errors_not_counted_as_injected(self, ctx: ExecutionContext):
        def organic_error():
            return TransferError("organic wire fault")

        report = ResilienceReport()
        policy = RetryPolicy(max_attempts=2, report=report)
        policy.run("op", Flaky(failures=1, error_factory=organic_error), ctx)
        assert report.retried == 0  # retried, but not an injected fault
        assert report.retry_attempts == 1

    def test_non_retryable_propagates_immediately(self, ctx: ExecutionContext):
        def fatal():
            raise EngineError("not transient")

        with pytest.raises(EngineError):
            RetryPolicy(max_attempts=5).run("op", fatal, ctx)

    def test_jitter_is_seed_deterministic(self):
        def charge_pattern(seed: int) -> list[float]:
            policy = RetryPolicy(max_attempts=4, seed=seed, report=ResilienceReport())
            try:
                policy.run("op", Flaky(failures=99), None)
            except TransferError:
                pass
            return policy.report.backoff_cycles

        assert charge_pattern(3) == charge_pattern(3)

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExecutionError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ExecutionError):
            RetryPolicy(jitter=1.0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_calls=2)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.is_open
        assert breaker.opens == 1

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # half-open probe admitted
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open

    def test_validation(self):
        with pytest.raises(ExecutionError):
            CircuitBreaker(failure_threshold=0)


class TestFallbackChain:
    def gpu_then_cpu(self, gpu, report=None, breaker=None):
        return FallbackChain(
            [
                FallbackStep("gpu", gpu, breaker=breaker),
                FallbackStep("cpu", lambda: "cpu-served"),
            ],
            report=report,
        )

    def test_first_step_serves_when_healthy(self, ctx: ExecutionContext):
        chain = self.gpu_then_cpu(lambda: "gpu-served")
        assert chain.run(ctx) == ("gpu-served", "gpu")
        assert ctx.counters.degraded_queries == 0

    def test_degrades_on_transient_error(self, ctx: ExecutionContext):
        report = ResilienceReport()
        chain = self.gpu_then_cpu(Flaky(failures=99), report=report)
        assert chain.run(ctx) == ("cpu-served", "cpu")
        assert report.fallen_back == 1
        assert report.degraded_queries == 1
        assert ctx.counters.fault_fallbacks == 1
        assert ctx.counters.degraded_queries == 1

    def test_capacity_error_degrades_too(self, ctx: ExecutionContext):
        def oom():
            raise CapacityError("device full")

        assert self.gpu_then_cpu(oom).run(ctx) == ("cpu-served", "cpu")

    def test_last_step_failure_propagates(self, ctx: ExecutionContext):
        def always_fails():
            raise DeviceError("boom")

        chain = FallbackChain([FallbackStep("only", always_fails)])
        with pytest.raises(DeviceError):
            chain.run(ctx)

    def test_open_breaker_skips_step(self, ctx: ExecutionContext):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=10)
        breaker.record_failure()
        gpu = Flaky(failures=0)
        chain = self.gpu_then_cpu(gpu, breaker=breaker)
        assert chain.run(ctx) == ("cpu-served", "cpu")
        assert gpu.calls == 0  # never attempted: circuit is open

    def test_last_step_runs_even_with_open_breaker(self, ctx: ExecutionContext):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=10)
        breaker.record_failure()
        chain = FallbackChain(
            [FallbackStep("only", lambda: "served", breaker=breaker)]
        )
        assert chain.run(ctx) == ("served", "only")

    def test_breaker_learns_from_chain_outcomes(self, ctx: ExecutionContext):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=4)
        gpu = Flaky(failures=2)
        chain = self.gpu_then_cpu(gpu, breaker=breaker)
        chain.run(ctx)
        chain.run(ctx)
        assert breaker.is_open

    def test_per_step_retry_is_consulted(self, ctx: ExecutionContext):
        report = ResilienceReport()
        chain = FallbackChain(
            [
                FallbackStep(
                    "gpu",
                    Flaky(failures=1),
                    retry=RetryPolicy(max_attempts=2, report=report),
                ),
                FallbackStep("cpu", lambda: "cpu-served"),
            ],
            report=report,
        )
        assert chain.run(ctx) == ("served", "gpu")
        assert report.retried == 1
        assert report.fallen_back == 0

    def test_empty_chain_rejected(self):
        with pytest.raises(ExecutionError):
            FallbackChain([])

    def test_report_counts_only_injected_fallbacks(self, ctx: ExecutionContext):
        def organic():
            raise TransferError("organic")

        report = ResilienceReport()
        chain = self.gpu_then_cpu(organic, report=report)
        chain.run(ctx)
        assert report.fallen_back == 0
        assert ctx.counters.fault_fallbacks == 1  # still visible in counters


class TestReportInvariants:
    def test_unaccounted_tracks_outcomes(self):
        report = ResilienceReport()
        injector = FaultInjector(seed=1, report=report).arm(
            "pcie.transfer", 1.0, max_faults=3
        )
        for _ in range(3):
            injector.fires("pcie.transfer")
        assert report.unaccounted == 3
        report.record_retried()
        report.record_fallback()
        report.record_surfaced()
        assert report.unaccounted == 0
        assert report.injected == report.handled == 3

    def test_snapshot_and_render_are_stable(self):
        report = ResilienceReport()
        report.record_injected("pcie.transfer")
        report.record_retried()
        snapshot = report.snapshot()
        assert snapshot["injected[pcie.transfer]"] == 1
        assert snapshot["retried"] == 1
        assert "resilience report" in report.render()
        assert "unaccounted" in report.render()


class TestRetryDeadline:
    """`max_total_cycles`: a hard cap on cumulative backoff."""

    def test_deadline_raises_deadline_exceeded(self, ctx: ExecutionContext):
        policy = RetryPolicy(
            max_attempts=10, backoff_cycles=10_000.0, max_total_cycles=15_000.0
        )
        flaky = Flaky(failures=99)
        with pytest.raises(DeadlineExceeded):
            policy.run("op", flaky, ctx)
        # First backoff (~10k) fits; the second (~20k) would blow the
        # 15k budget, so the policy gives up after two attempts.
        assert flaky.calls == 2

    def test_deadline_chains_and_marks_the_last_error(
        self, ctx: ExecutionContext
    ):
        policy = RetryPolicy(
            max_attempts=10, backoff_cycles=10_000.0, max_total_cycles=0.0
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            policy.run("op", Flaky(failures=99), ctx)
        assert isinstance(excinfo.value.__cause__, TransferError)
        assert excinfo.value.injected  # propagated from the last error

    def test_deadline_propagates_untallied(self, ctx: ExecutionContext):
        report = ResilienceReport()
        policy = RetryPolicy(
            max_attempts=10,
            backoff_cycles=10_000.0,
            max_total_cycles=0.0,
            report=report,
        )
        with pytest.raises(DeadlineExceeded):
            policy.run("op", Flaky(failures=99), ctx)
        # The deadline error is the caller's to attribute — the report
        # saw no retry and stays balanced once the caller surfaces it.
        assert report.retried == 0
        assert report.retry_attempts == 0

    def test_organic_deadline_is_not_marked_injected(
        self, ctx: ExecutionContext
    ):
        def organic_error():
            return TransferError("organic wire fault")

        policy = RetryPolicy(
            max_attempts=10, backoff_cycles=10_000.0, max_total_cycles=0.0
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            policy.run("op", Flaky(failures=99, error_factory=organic_error), ctx)
        assert not excinfo.value.injected

    def test_deadline_boundary_is_inclusive(self, ctx: ExecutionContext):
        # Regression: with jitter off, the very first backoff lands
        # *exactly* on the budget.  The deadline is a budget, not a
        # threshold — elapsed == deadline leaves no budget to retry in,
        # so the policy must surface DeadlineExceeded, not sleep-retry.
        policy = RetryPolicy(
            max_attempts=10,
            backoff_cycles=10_000.0,
            jitter=0.0,
            max_total_cycles=10_000.0,
        )
        flaky = Flaky(failures=99)
        with pytest.raises(DeadlineExceeded):
            policy.run("op", flaky, ctx)
        assert flaky.calls == 1
        assert ctx.counters.fault_retries == 0

    def test_unbounded_when_unset(self, ctx: ExecutionContext):
        policy = RetryPolicy(max_attempts=6, backoff_cycles=50_000.0)
        assert policy.run("op", Flaky(failures=5), ctx) == "served"

    def test_negative_deadline_rejected(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(max_total_cycles=-1.0)
