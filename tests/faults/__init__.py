"""Fault-injection and resilience tests (the chaos suite)."""
