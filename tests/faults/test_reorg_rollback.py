"""Transactional re-organization: interruption rolls back cleanly.

An injected ``reorg.interrupt`` mid-migration must leave the layout
exactly as it was (same fragments, same values, still valid), free the
partially-built fragments, and still charge the wasted copy work.
"""

import pytest

from repro.adapt.advisor import GroupProposal, LayoutProposal
from repro.adapt.reorganizer import reorganize_layout
from repro.errors import ReorganizationAborted
from repro.execution.context import ExecutionContext
from repro.faults import SITE_REORG_INTERRUPT, FaultInjector
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema

ROWS = 64


@pytest.fixture
def relation():
    return Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), ROWS)


@pytest.fixture
def rows():
    return [(i, float(i) * 1.5) for i in range(ROWS)]


@pytest.fixture
def layout(relation, platform, rows):
    fragment = Fragment.from_rows(
        Region.full(relation),
        relation.schema,
        LinearizationKind.NSM,
        platform.host_memory,
        rows,
    )
    return Layout("t", relation, [fragment])


def columnar_proposal():
    return LayoutProposal(
        (
            GroupProposal(("a",), LinearizationKind.DIRECT),
            GroupProposal(("p",), LinearizationKind.DIRECT),
        ),
        0.0,
    )


class TestRollback:
    def arm(self, platform, probability=1.0, max_faults=1):
        injector = FaultInjector(seed=3).arm(
            SITE_REORG_INTERRUPT, probability, max_faults=max_faults
        )
        injector.install(platform)
        return injector

    def test_interrupted_reorg_raises_and_rolls_back(
        self, layout, platform, rows
    ):
        self.arm(platform)
        ctx = ExecutionContext(platform)
        old_fragments = list(layout.fragments)
        with pytest.raises(ReorganizationAborted) as excinfo:
            reorganize_layout(layout, columnar_proposal(), platform.host_memory, ctx)
        assert excinfo.value.injected is True
        # Layout untouched: same fragment objects, same values, valid.
        assert list(layout.fragments) == old_fragments
        layout.validate()
        assert [layout.read_row(i) for i in range(ROWS)] == rows

    def test_partial_fragments_freed(self, layout, platform):
        """Mid-migration memory is released on abort (no leak)."""
        # Abort after some rows have migrated, not on the first check.
        injector = FaultInjector(seed=3).arm(
            SITE_REORG_INTERRUPT, 0.05, max_faults=1
        )
        injector.install(platform)
        ctx = ExecutionContext(platform)
        before = platform.host_memory.used
        with pytest.raises(ReorganizationAborted):
            reorganize_layout(layout, columnar_proposal(), platform.host_memory, ctx)
        assert platform.host_memory.used == before

    def test_wasted_work_is_charged(self, layout, platform):
        injector = FaultInjector(seed=3).arm(
            SITE_REORG_INTERRUPT, 0.05, max_faults=1
        )
        injector.install(platform)
        ctx = ExecutionContext(platform)
        with pytest.raises(ReorganizationAborted):
            reorganize_layout(layout, columnar_proposal(), platform.host_memory, ctx)
        assert ctx.cycles > 0
        assert any("reorganize-aborted" in part for part in ctx.breakdown.parts)

    def test_retry_after_abort_succeeds(self, layout, platform, rows):
        """Exactly-once fault: the second attempt completes the reorg."""
        self.arm(platform, max_faults=1)
        ctx = ExecutionContext(platform)
        with pytest.raises(ReorganizationAborted):
            reorganize_layout(layout, columnar_proposal(), platform.host_memory, ctx)
        reorganize_layout(layout, columnar_proposal(), platform.host_memory, ctx)
        assert len(layout) == 2
        assert [layout.read_row(i) for i in range(ROWS)] == rows

    def test_phantom_reorg_abort_keeps_geometry(self, relation, platform):
        fragment = Fragment(
            Region.full(relation),
            relation.schema,
            LinearizationKind.NSM,
            platform.host_memory,
            materialize=False,
        )
        fragment.fill_phantom(ROWS)
        layout = Layout("t", relation, [fragment])
        self.arm(platform)
        ctx = ExecutionContext(platform)
        with pytest.raises(ReorganizationAborted):
            reorganize_layout(layout, columnar_proposal(), platform.host_memory, ctx)
        assert layout.fragments == (fragment,) or list(layout.fragments) == [fragment]
        assert fragment.is_phantom and fragment.filled == ROWS

    def test_uninterrupted_reorg_unaffected(self, layout, platform, rows):
        """An installed but unarmed injector changes nothing."""
        FaultInjector(seed=3).install(platform)
        ctx = ExecutionContext(platform)
        reorganize_layout(layout, columnar_proposal(), platform.host_memory, ctx)
        assert len(layout) == 2
        assert [layout.read_row(i) for i in range(ROWS)] == rows
