"""Distributed fault sites: DFS block-read errors and node crashes."""

import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.engines.es2 import ES2Engine
from repro.errors import DistributedError
from repro.execution import ExecutionContext
from repro.faults import SITE_DFS_READ, SITE_NODE_CRASH, FaultInjector
from repro.hardware.event import PerfCounters


@pytest.fixture
def store():
    return BlockStore(Cluster(node_count=4), replication=2, block_size=100)


class TestBlockReadFaults:
    def test_degrades_to_surviving_replica(self, store):
        store.write("/t", b"x" * 100)
        store.injector = FaultInjector(seed=1).arm(SITE_DFS_READ, 1.0, max_faults=1)
        counters = PerfCounters()
        payload, cost = store.read("/t", store.cluster.nodes[0], counters)
        assert payload == b"x" * 100  # degraded read still serves the bytes
        assert store.injector.report.recovered == 1
        assert counters.fault_recoveries == 1
        assert cost > 0  # the replica re-read went over the network

    def test_degraded_read_costs_more_than_clean_read(self, store):
        store.write("/t", b"x" * 100)
        replicas = store.file("/t").blocks[0].replica_nodes
        local = store.cluster.node(replicas[0])
        clean = PerfCounters()
        store.read("/t", local, clean)
        store.injector = FaultInjector(seed=1).arm(SITE_DFS_READ, 1.0, max_faults=1)
        degraded = PerfCounters()
        store.read("/t", local, degraded)
        assert degraded.cycles > clean.cycles

    def test_surfaces_when_no_replica_left(self):
        store = BlockStore(Cluster(node_count=4), replication=1, block_size=100)
        store.write("/t", b"x" * 100)
        store.injector = FaultInjector(seed=1).arm(SITE_DFS_READ, 1.0, max_faults=1)
        with pytest.raises(DistributedError) as excinfo:
            store.read("/t", store.cluster.nodes[0])
        assert excinfo.value.injected is True

    def test_unarmed_store_reads_cleanly(self, store):
        store.write("/t", b"x" * 100)
        store.injector = FaultInjector(seed=1)
        payload, __ = store.read("/t", store.cluster.nodes[0])
        assert payload == b"x" * 100
        assert store.injector.report.injected == 0


class TestNodeCrash:
    def test_crash_triggers_re_replication(self, store):
        store.write("/t", b"x" * 300)
        store.injector = FaultInjector(seed=2).arm(SITE_NODE_CRASH, 1.0, max_faults=1)
        counters = PerfCounters()
        victim = store.inject_node_crash(counters)
        assert victim is not None
        assert store.under_replicated() == []  # repaired immediately
        assert store.injector.report.recovered == 1

    def test_exclusion_protects_the_coordinator(self, store):
        store.write("/t", b"x" * 100)
        protected = store.cluster.nodes[0].name
        store.injector = FaultInjector(seed=2).arm(SITE_NODE_CRASH, 1.0)
        for _ in range(10):
            victim = store.inject_node_crash(exclude=(protected,))
            assert victim != protected

    def test_no_injector_is_a_noop(self, store):
        store.write("/t", b"x" * 100)
        assert store.inject_node_crash() is None

    def test_unfired_site_is_a_noop(self, store):
        store.write("/t", b"x" * 100)
        store.injector = FaultInjector(seed=2)  # nothing armed
        assert store.inject_node_crash() is None
        assert store.under_replicated() == []


class TestES2UnderFaults:
    def test_sum_survives_node_crash(self, loaded_item_engine_factory):
        engine, platform = loaded_item_engine_factory(ES2Engine, partition_rows=128)
        clean_ctx = ExecutionContext(platform)
        expected = engine.sum("item", "i_price", clean_ctx)
        injector = FaultInjector(seed=2).arm(SITE_NODE_CRASH, 1.0, max_faults=1)
        injector.install(platform)
        ctx = ExecutionContext(platform)
        got = engine.sum("item", "i_price", ctx)
        assert got == expected
        assert injector.report.recovered == 1
        assert injector.report.unaccounted == 0
        assert "es2-re-replication" in ctx.breakdown.parts

    def test_recovery_is_paid_in_cycles(self, loaded_item_engine_factory):
        engine, platform = loaded_item_engine_factory(ES2Engine, partition_rows=128)
        clean_ctx = ExecutionContext(platform)
        engine.sum("item", "i_price", clean_ctx)
        injector = FaultInjector(seed=2).arm(SITE_NODE_CRASH, 1.0, max_faults=1)
        injector.install(platform)
        crash_ctx = ExecutionContext(platform)
        engine.sum("item", "i_price", crash_ctx)
        assert crash_ctx.cycles > clean_ctx.cycles
