"""Documentation consistency gates.

The docs promise regeneration commands and file paths; these tests keep
those promises true as the repository evolves.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


def test_design_bench_targets_exist():
    design = (ROOT / "DESIGN.md").read_text()
    targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
    assert targets, "DESIGN.md must reference benchmark targets"
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_experiments_bench_targets_exist():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    targets = set(re.findall(r"bench_\w+\.py", experiments))
    assert targets
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_readme_examples_exist():
    readme = (ROOT / "README.md").read_text()
    scripts = set(re.findall(r"`(\w+\.py)`", readme))
    for script in scripts:
        assert (ROOT / "examples" / script).exists(), script


def test_readme_doc_links_exist():
    readme = (ROOT / "README.md").read_text()
    links = set(re.findall(r"\]\(([\w/.]+\.md)\)", readme))
    assert links
    for link in links:
        assert (ROOT / link).exists(), link


def test_table1_engines_have_modules():
    from repro.core.survey import PAPER_TABLE_1

    modules = {
        "PAX": "pax",
        "Frac. Mirrors": "fractured_mirrors",
        "HYRISE": "hyrise",
        "ES2": "es2",
        "GPUTx": "gputx",
        "H2O": "h2o",
        "HyPer": "hyper",
        "CoGaDB": "cogadb",
        "L-Store": "lstore",
        "Peloton": "peloton",
    }
    assert set(modules) == set(PAPER_TABLE_1)
    for module in modules.values():
        assert (ROOT / "src" / "repro" / "engines" / f"{module}.py").exists()


def test_experiment_ids_covered():
    """Every experiment id promised in DESIGN.md's index appears in
    EXPERIMENTS.md with measurements."""
    design = (ROOT / "DESIGN.md").read_text()
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    ids = set(re.findall(r"^\| (E\d|A\d) \|", design, flags=re.MULTILINE))
    assert {"E1", "E5", "E8", "A1", "A8"} <= ids
    for experiment_id in ids:
        assert re.search(rf"\b{experiment_id} —", experiments) or re.search(
            rf"### .*{experiment_id}", experiments
        ), f"{experiment_id} missing from EXPERIMENTS.md"
