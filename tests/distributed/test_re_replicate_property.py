"""Property test: re-replication converges under node churn.

Hypothesis drives random interleavings of ``mark_down`` (process
crash, disk retained) and ``restore_node`` against a replicated block
store, with repair attempts mixed in.  Whatever the interleaving, once
every node is back the store must converge: ``re_replicate`` reaches a
state with zero under-replicated blocks and every file still reads
back byte-identically — the durability contract the live-migration
protocol leans on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.errors import DistributedError

NODE_COUNT = 5
REPLICATION = 2

churn_steps = st.lists(
    st.tuples(
        st.sampled_from(["down", "restore", "repair"]),
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
    ),
    max_size=16,
)


@settings(max_examples=30, deadline=None)
@given(steps=churn_steps)
def test_re_replicate_converges_after_any_churn(steps):
    cluster = Cluster(NODE_COUNT)
    store = BlockStore(cluster, replication=REPLICATION, block_size=64)
    payloads = {
        f"f{index}": bytes([index]) * (64 * (index + 1))
        for index in range(3)
    }
    for path, payload in payloads.items():
        store.write(path, payload)

    for action, node_index in steps:
        name = cluster.nodes[node_index].name
        if action == "down":
            store.mark_down(name)
        elif action == "restore":
            store.restore_node(name)
        else:
            try:
                store.re_replicate()
            except DistributedError:
                # Too few nodes up to meet the target, or a block's
                # replicas are all on down (but intact) nodes: repair
                # is legitimately impossible *right now*.  The final
                # convergence check below still must hold.
                continue
            assert store.under_replicated() == []

    for node in cluster.nodes:
        store.restore_node(node.name)
    store.re_replicate()
    assert store.under_replicated() == []
    assert store.down_nodes == ()
    reader = cluster.nodes[0]
    for path, payload in payloads.items():
        data, __ = store.read(path, reader)
        assert data == payload
