"""Replicated block store tests, including failure injection."""

import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.errors import DistributedError
from repro.hardware.event import PerfCounters


@pytest.fixture
def store():
    return BlockStore(Cluster(node_count=4), replication=3, block_size=100)


class TestWriteRead:
    def test_roundtrip(self, store):
        payload = bytes(range(250)) * 2  # 500 bytes -> 5 blocks
        store.write("/t", payload)
        reader = store.cluster.nodes[0]
        data, __ = store.read("/t", reader)
        assert data == payload

    def test_blocks_split_by_size(self, store):
        store.write("/t", b"x" * 250)
        assert len(store.file("/t").blocks) == 3

    def test_replication_factor(self, store):
        store.write("/t", b"x" * 250)
        for block in store.file("/t").blocks:
            assert len(block.replicas) == 3

    def test_write_once(self, store):
        store.write("/t", b"x")
        with pytest.raises(DistributedError):
            store.write("/t", b"y")

    def test_remote_read_costs_network(self, store):
        store.write("/t", b"x" * 100)
        replicas = store.file("/t").blocks[0].replica_nodes
        remote = next(n for n in store.cluster.nodes if n.name not in replicas)
        local = store.cluster.node(replicas[0])
        __, remote_cost = store.read("/t", remote)
        __, local_cost = store.read("/t", local)
        assert local_cost == 0.0
        assert remote_cost > 0.0

    def test_unknown_path(self, store):
        with pytest.raises(DistributedError):
            store.read("/ghost", store.cluster.nodes[0])

    def test_delete_frees_disks(self, store):
        store.write("/t", b"x" * 300)
        used = sum(node.disk.used for node in store.cluster.nodes)
        assert used == 900
        store.delete("/t")
        assert sum(node.disk.used for node in store.cluster.nodes) == 0

    def test_empty_payload(self, store):
        store.write("/empty", b"")
        data, __ = store.read("/empty", store.cluster.nodes[0])
        assert data == b""


class TestFaultTolerance:
    def test_node_failure_under_replicates(self, store):
        store.write("/t", b"x" * 100)
        victim = store.file("/t").blocks[0].replica_nodes[0]
        lost = store.fail_node(victim)
        assert lost == 1
        assert store.under_replicated() == [("/t", 0)]

    def test_re_replication_restores(self, store):
        store.write("/t", b"x" * 200)
        victim = store.file("/t").blocks[0].replica_nodes[0]
        store.fail_node(victim)
        counters = PerfCounters()
        created = store.re_replicate(counters)
        assert created >= 1
        assert store.under_replicated() == []
        assert counters.bytes_transferred > 0

    def test_data_survives_single_failure(self, store):
        payload = b"precious" * 40
        store.write("/t", payload)
        victim = store.file("/t").blocks[0].replica_nodes[0]
        store.fail_node(victim)
        survivor = next(
            n for n in store.cluster.nodes
            if n.name in store.file("/t").blocks[0].replica_nodes
        )
        data, __ = store.read("/t", survivor)
        assert data == payload

    def test_replication_over_cluster_size_rejected(self):
        with pytest.raises(DistributedError):
            BlockStore(Cluster(node_count=2), replication=3)
