"""Cluster and network model tests."""

import pytest

from repro.distributed.cluster import Cluster, NetworkModel
from repro.errors import DistributedError
from repro.hardware.event import PerfCounters


class TestCluster:
    def test_nodes_have_private_memory(self):
        cluster = Cluster(node_count=3)
        cluster.nodes[0].memory.allocate(1024)
        assert cluster.nodes[1].memory.used == 0

    def test_node_lookup(self):
        cluster = Cluster(node_count=2)
        assert cluster.node("node1") is cluster.nodes[1]
        with pytest.raises(DistributedError):
            cluster.node("ghost")

    def test_placement_deterministic(self):
        cluster = Cluster(node_count=4)
        assert cluster.node_for(5) is cluster.node_for(5)
        assert cluster.node_for(5) is cluster.nodes[1]

    def test_replica_nodes_distinct(self):
        cluster = Cluster(node_count=4)
        replicas = cluster.replica_nodes(2, 3)
        assert len({node.name for node in replicas}) == 3

    def test_replication_beyond_cluster_rejected(self):
        cluster = Cluster(node_count=2)
        with pytest.raises(DistributedError):
            cluster.replica_nodes(0, 3)

    def test_empty_cluster_rejected(self):
        with pytest.raises(DistributedError):
            Cluster(node_count=0)


class TestNetwork:
    def test_zero_free(self):
        assert NetworkModel().transfer_cost(0) == 0.0

    def test_latency_plus_bandwidth(self):
        model = NetworkModel()
        nbytes = 1 << 20
        expected = (model.latency_s + nbytes / model.bandwidth) * model.host_frequency_hz
        assert model.transfer_cost(nbytes) == pytest.approx(expected)

    def test_counters(self):
        counters = PerfCounters()
        NetworkModel().transfer_cost(100, counters)
        assert counters.bytes_transferred == 100

    def test_negative_rejected(self):
        with pytest.raises(DistributedError):
            NetworkModel().transfer_cost(-1)


class TestPeekTransferCost:
    """The estimate-only variant planners may call freely."""

    def test_peek_equals_the_charged_cost(self):
        model = NetworkModel()
        for nbytes in (0, 1, 4096, 1 << 20):
            assert model.peek_transfer_cost(nbytes) == model.transfer_cost(nbytes)

    def test_peek_never_touches_counters(self):
        counters = PerfCounters()
        NetworkModel().peek_transfer_cost(1 << 20)
        assert counters.bytes_transferred == 0

    def test_charging_variant_delegates_to_peek(self):
        model = NetworkModel()
        counters = PerfCounters()
        cost = model.transfer_cost(512, counters)
        assert cost == model.peek_transfer_cost(512)
        assert counters.bytes_transferred == 512

    def test_peek_zero_is_free(self):
        assert NetworkModel().peek_transfer_cost(0) == 0.0

    def test_peek_negative_rejected(self):
        with pytest.raises(DistributedError):
            NetworkModel().peek_transfer_cost(-1)
