"""Cascading failures: a second node dies while the first repair runs.

The chaos regression for `BlockStore.re_replicate`'s convergence claim:
with replication 3, losing two nodes — the second mid-repair — must not
lose a single block, and the repair loop must converge with the store
fully replicated and the absorbed crash accounted for.
"""

import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.errors import DistributedError
from repro.faults.injector import SITE_NODE_CRASH, FaultInjector
from repro.hardware.event import PerfCounters


PAYLOADS = {f"/data/file{i}": bytes([i]) * 2048 for i in range(6)}


@pytest.fixture
def injector():
    return FaultInjector(seed=7)


@pytest.fixture
def store(injector):
    dfs = BlockStore(
        Cluster(node_count=5),
        replication=3,
        block_size=1024,
        injector=injector,
    )
    for path, payload in PAYLOADS.items():
        dfs.write(path, payload)
    return dfs


def crash_during_repair(store, injector, counters):
    """Disk-fail node1, then repair with a second crash armed mid-loop."""
    store.fail_node("node1")
    assert store.under_replicated()  # the first loss left gaps
    injector.arm(SITE_NODE_CRASH, probability=1.0, max_faults=1)
    return store.re_replicate(counters, crash_site=SITE_NODE_CRASH)


class TestCascadingRepair:
    def test_repair_converges_with_no_block_lost(self, store, injector):
        counters = PerfCounters()
        created = crash_during_repair(store, injector, counters)
        assert created > 0
        assert store.under_replicated() == []
        # Both crash victims are down, yet every byte reads back.
        assert len(store.down_nodes) == 2
        reader = next(
            node
            for node in store.cluster.nodes
            if node.name not in store.down_nodes
        )
        for path, payload in PAYLOADS.items():
            data, __ = store.read(path, reader, counters)
            assert data == payload

    def test_surviving_blocks_meet_the_replication_target(
        self, store, injector
    ):
        counters = PerfCounters()
        crash_during_repair(store, injector, counters)
        up = {
            node.name
            for node in store.cluster.nodes
            if node.name not in store.down_nodes
        }
        for path in PAYLOADS:
            for block in store.file(path).blocks:
                live = set(block.replicas) & up
                assert len(live) >= store.replication, (path, block.index)

    def test_absorbed_crash_is_accounted_as_recovered(self, store, injector):
        counters = PerfCounters()
        crash_during_repair(store, injector, counters)
        report = injector.report
        assert report.injected == 1
        assert report.recovered >= 1
        assert report.unaccounted == 0
        assert counters.fault_recoveries >= 1

    def test_repair_charges_one_transfer_per_new_replica(
        self, store, injector
    ):
        counters = PerfCounters()
        created = crash_during_repair(store, injector, counters)
        block_bytes = store.block_size
        assert counters.bytes_transferred >= created * block_bytes

    def test_deterministic_across_runs(self, injector):
        outcomes = []
        for _ in range(2):
            local_injector = FaultInjector(seed=7)
            dfs = BlockStore(
                Cluster(node_count=5),
                replication=3,
                block_size=1024,
                injector=local_injector,
            )
            for path, payload in PAYLOADS.items():
                dfs.write(path, payload)
            counters = PerfCounters()
            created = crash_during_repair(dfs, local_injector, counters)
            outcomes.append(
                (created, sorted(dfs.down_nodes), counters.bytes_transferred)
            )
        assert outcomes[0] == outcomes[1]

    def test_replication_minus_one_failures_is_the_honest_limit(
        self, injector
    ):
        """With replication 2 the same double failure can lose blocks."""
        dfs = BlockStore(
            Cluster(node_count=5),
            replication=2,
            block_size=1024,
            injector=injector,
        )
        for path, payload in PAYLOADS.items():
            dfs.write(path, payload)
        counters = PerfCounters()
        dfs.fail_node("node1")
        injector.arm(SITE_NODE_CRASH, probability=1.0, max_faults=2)
        # Two more disk losses on top of node1 exceed replication - 1;
        # some block may end with zero live replicas, which the repair
        # reports honestly instead of fabricating data.
        try:
            dfs.re_replicate(counters, crash_site=SITE_NODE_CRASH)
        except DistributedError as error:
            assert "lost" in str(error)
        else:
            # The schedule spared enough holders — the store must then
            # be fully repaired.
            assert dfs.under_replicated() == []
