"""Layout advisor and reorganizer tests."""

import pytest

from repro.adapt.advisor import GroupProposal, LayoutAdvisor
from repro.adapt.reorganizer import reorganize_layout
from repro.adapt.statistics import AttributeStatistics
from repro.errors import WorkloadError
from repro.execution.access import AccessDescriptor, AccessKind
from repro.execution.context import ExecutionContext
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def relation():
    return Relation(
        "t", Schema.of(("a", INT64), ("b", INT64), ("p", FLOAT64)), 10_000
    )


def scan_event(relation, attribute):
    return AccessDescriptor(
        AccessKind.READ, (attribute,), relation.row_count,
        relation.row_count, relation.schema.arity,
    )


def point_event(relation):
    return AccessDescriptor(
        AccessKind.READ, relation.schema.names, 1,
        relation.row_count, relation.schema.arity,
    )


class TestAdvisor:
    def test_scan_heavy_prefers_columns(self, platform, relation):
        advisor = LayoutAdvisor(platform.memory_model)
        events = [scan_event(relation, "p")] * 20
        stats = AttributeStatistics.from_events(relation.schema, events)
        proposal = advisor.propose(relation, stats, events)
        # The winning layout must store `p` thin (directly linearized).
        owner = next(
            group for group in proposal.groups if "p" in group.attributes
        )
        assert owner.linearization is LinearizationKind.DIRECT

    def test_point_heavy_prefers_nsm(self, platform, relation):
        advisor = LayoutAdvisor(platform.memory_model)
        events = [point_event(relation)] * 20
        stats = AttributeStatistics.from_events(relation.schema, events)
        proposal = advisor.propose(relation, stats, events)
        assert proposal.groups[0].linearization is LinearizationKind.NSM
        assert proposal.groups[0].attributes == relation.schema.names

    def test_estimate_requires_coverage(self, platform, relation):
        advisor = LayoutAdvisor(platform.memory_model)
        partial = (GroupProposal(("a",), LinearizationKind.DIRECT),)
        with pytest.raises(WorkloadError):
            advisor.estimate(relation, partial, [point_event(relation)])

    def test_candidate_pool_contains_extremes(self, platform, relation):
        advisor = LayoutAdvisor(platform.memory_model)
        stats = AttributeStatistics(schema=relation.schema)
        pool = advisor.candidates(relation, stats)
        kinds = {candidate[0].linearization for candidate in pool if len(candidate) == 1}
        assert LinearizationKind.NSM in kinds
        assert LinearizationKind.DIRECT in kinds

    def test_empty_thresholds_rejected(self, platform):
        with pytest.raises(WorkloadError):
            LayoutAdvisor(platform.memory_model, thresholds=())


class TestReorganizer:
    def make_nsm_layout(self, relation, platform, rows):
        fragment = Fragment.from_rows(
            Region.full(relation), relation.schema, LinearizationKind.NSM,
            platform.host_memory, rows,
        )
        return Layout("t", relation, [fragment])

    def test_reorganize_preserves_data(self, platform):
        relation = Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), 20)
        rows = [(i, float(i)) for i in range(20)]
        layout = self.make_nsm_layout(relation, platform, rows)
        proposal_groups = (
            GroupProposal(("a",), LinearizationKind.DIRECT),
            GroupProposal(("p",), LinearizationKind.DIRECT),
        )
        from repro.adapt.advisor import LayoutProposal

        ctx = ExecutionContext(platform)
        reorganize_layout(
            layout, LayoutProposal(proposal_groups, 0.0), platform.host_memory, ctx
        )
        assert len(layout) == 2
        assert [layout.read_row(i) for i in range(20)] == rows
        assert ctx.cycles > 0

    def test_direct_multi_group_expands_to_columns(self, platform):
        relation = Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), 10)
        rows = [(i, float(i)) for i in range(10)]
        layout = self.make_nsm_layout(relation, platform, rows)
        from repro.adapt.advisor import LayoutProposal

        proposal = LayoutProposal(
            (GroupProposal(("a", "p"), LinearizationKind.DIRECT),), 0.0
        )
        reorganize_layout(layout, proposal, platform.host_memory, None)
        assert len(layout) == 2
        assert all(fragment.region.is_column for fragment in layout)

    def test_phantom_reorganize_keeps_geometry(self, platform):
        relation = Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), 1000)
        fragment = Fragment(
            Region.full(relation), relation.schema, LinearizationKind.NSM,
            platform.host_memory, materialize=False,
        )
        fragment.fill_phantom(1000)
        layout = Layout("t", relation, [fragment])
        from repro.adapt.advisor import LayoutProposal

        proposal = LayoutProposal(
            (GroupProposal(("a", "p"), LinearizationKind.DIRECT),), 0.0
        )
        reorganize_layout(layout, proposal, platform.host_memory, None)
        assert all(f.is_phantom and f.filled == 1000 for f in layout)

    def test_old_memory_freed(self, platform):
        relation = Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), 100)
        rows = [(i, float(i)) for i in range(100)]
        layout = self.make_nsm_layout(relation, platform, rows)
        from repro.adapt.advisor import LayoutProposal

        proposal = LayoutProposal(
            (GroupProposal(("a", "p"), LinearizationKind.DIRECT),), 0.0
        )
        before = platform.host_memory.used
        reorganize_layout(layout, proposal, platform.host_memory, None)
        assert platform.host_memory.used == before  # same payload size
