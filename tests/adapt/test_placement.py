"""Placement policy tests: all-or-nothing and hot-column."""

import numpy as np
import pytest

from repro.adapt.placement import AllOrNothingPlacement, HotColumnPlacement
from repro.adapt.statistics import AttributeStatistics
from repro.errors import PlacementError
from repro.execution.access import AccessDescriptor, AccessKind
from repro.execution.context import ExecutionContext
from repro.hardware.platform import Platform
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.partitioning import one_region_per_attribute
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema


def columnar(platform, rows=1000):
    relation = Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), rows)
    fragments = []
    for region in one_region_per_attribute(relation):
        fragment = Fragment(region, relation.schema, None, platform.host_memory)
        name = region.attributes[0]
        values = np.arange(rows, dtype=np.float64 if name == "p" else np.int64)
        fragment.append_columns({name: values})
        fragments.append(fragment)
    return relation, Layout("t", relation, fragments, allow_overlap=True)


class TestAllOrNothing:
    def test_placement_succeeds_when_fits(self, platform, ctx):
        relation, layout = columnar(platform)
        policy = AllOrNothingPlacement(platform.device_memory)
        decision = policy.try_place(layout, layout.fragments[1], ctx)
        assert decision.placed
        assert layout.fragments[0].space is platform.device_memory
        assert ctx.counters.bytes_transferred == 8000

    def test_fallback_when_too_big(self, ctx):
        platform = Platform.paper_testbed(device_capacity=100)
        relation, layout = columnar(platform)
        policy = AllOrNothingPlacement(platform.device_memory)
        local_ctx = ExecutionContext(platform)
        decision = policy.try_place(layout, layout.fragments[1], local_ctx)
        assert not decision.placed
        assert "fallback" in decision.reason
        # All-or-nothing: nothing was transferred.
        assert local_ctx.counters.bytes_transferred == 0

    def test_already_placed(self, platform, ctx):
        relation, layout = columnar(platform)
        policy = AllOrNothingPlacement(platform.device_memory)
        policy.try_place(layout, layout.fragments[1], ctx)
        again = policy.try_place(layout, layout.fragments[0], ctx)
        assert not again.placed

    def test_foreign_fragment_rejected(self, platform, ctx):
        relation, layout = columnar(platform)
        __, other_layout = columnar(platform)
        policy = AllOrNothingPlacement(platform.device_memory)
        with pytest.raises(PlacementError):
            policy.try_place(layout, other_layout.fragments[0], ctx)

    def test_host_target_rejected(self, platform):
        with pytest.raises(PlacementError):
            AllOrNothingPlacement(platform.host_memory)


class TestHotColumn:
    def test_hottest_placed_first(self, platform, ctx):
        relation, layout = columnar(platform)
        stats = AttributeStatistics.from_events(
            relation.schema,
            [
                AccessDescriptor(AccessKind.READ, ("p",), 1000, 1000, 2),
                AccessDescriptor(AccessKind.READ, ("a",), 10, 1000, 2),
            ],
        )
        policy = HotColumnPlacement(platform.device_memory)
        decisions = policy.place_hottest(layout, stats, ctx, limit=1)
        placed = [d.fragment_label for d in decisions if d.placed]
        assert len(placed) == 1 and ":p" in placed[0] or "p" in placed[0]
        assert layout.fragment_for(0, "p").space is platform.device_memory
        assert layout.fragment_for(0, "a").space is platform.host_memory
