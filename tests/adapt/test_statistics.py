"""Workload statistics tests: frequency, affinity, clustering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adapt.statistics import AttributeStatistics
from repro.errors import WorkloadError
from repro.execution.access import AccessDescriptor, AccessKind
from repro.model.datatypes import INT32
from repro.model.schema import Schema


@pytest.fixture
def schema():
    return Schema.of(("a", INT32), ("b", INT32), ("c", INT32), ("d", INT32))


def event(attrs, rows=1, kind=AccessKind.READ, total=1000, arity=4):
    return AccessDescriptor(kind, tuple(attrs), rows, total, arity)


class TestCounting:
    def test_weighted_by_rows(self, schema):
        stats = AttributeStatistics.from_events(
            schema, [event(("a",), rows=100), event(("b",), rows=1)]
        )
        assert stats.access_count["a"] == 100
        assert stats.frequency("a") == pytest.approx(100 / 101)

    def test_write_counts(self, schema):
        stats = AttributeStatistics.from_events(
            schema, [event(("a",), kind=AccessKind.WRITE), event(("a",))]
        )
        assert stats.write_count["a"] == 1
        assert stats.access_count["a"] == 2

    def test_unknown_attribute_rejected(self, schema):
        stats = AttributeStatistics(schema=schema)
        with pytest.raises(WorkloadError):
            stats.observe(event(("zz",)))

    def test_hottest_ranking(self, schema):
        stats = AttributeStatistics.from_events(
            schema, [event(("c",), rows=10), event(("a",), rows=5)]
        )
        assert stats.hottest(2) == ["c", "a"]

    def test_frequency_empty(self, schema):
        assert AttributeStatistics(schema=schema).frequency("a") == 0.0


class TestAffinity:
    def test_perfect_co_access(self, schema):
        stats = AttributeStatistics.from_events(schema, [event(("a", "b"))] * 5)
        assert stats.affinity("a", "b") == pytest.approx(1.0)
        assert stats.affinity("b", "a") == pytest.approx(1.0)  # symmetric

    def test_no_co_access(self, schema):
        stats = AttributeStatistics.from_events(
            schema, [event(("a",)), event(("b",))]
        )
        assert stats.affinity("a", "b") == 0.0

    def test_partial_affinity(self, schema):
        events = [event(("a", "b"))] * 3 + [event(("a",))] * 7
        stats = AttributeStatistics.from_events(schema, events)
        assert stats.affinity("a", "b") == pytest.approx(1.0)  # b never alone
        events = [event(("a", "b"))] * 3 + [event(("b",))] * 3
        stats = AttributeStatistics.from_events(schema, events)
        assert stats.affinity("a", "b") == pytest.approx(1.0)


class TestGroups:
    def test_clusters_follow_co_access(self, schema):
        events = [event(("a", "b"))] * 10 + [event(("c",))] * 10 + [event(("d",))]
        stats = AttributeStatistics.from_events(schema, events)
        assert stats.affinity_groups(0.5) == [("a", "b"), ("c",), ("d",)]

    def test_transitive_clustering(self, schema):
        events = [event(("a", "b"))] * 10 + [event(("b", "c"))] * 10
        stats = AttributeStatistics.from_events(schema, events)
        assert ("a", "b", "c") in stats.affinity_groups(0.4)

    def test_untouched_attributes_are_singletons(self, schema):
        stats = AttributeStatistics.from_events(schema, [event(("a",))])
        groups = stats.affinity_groups()
        assert ("b",) in groups and ("c",) in groups and ("d",) in groups

    def test_groups_partition_schema(self, schema):
        events = [event(("a", "c"))] * 4 + [event(("b", "d"))] * 4
        stats = AttributeStatistics.from_events(schema, events)
        groups = stats.affinity_groups(0.5)
        flat = sorted(name for group in groups for name in group)
        assert flat == sorted(schema.names)

    def test_invalid_threshold(self, schema):
        stats = AttributeStatistics(schema=schema)
        with pytest.raises(WorkloadError):
            stats.affinity_groups(0.0)
        with pytest.raises(WorkloadError):
            stats.affinity_groups(1.5)


@given(
    st.lists(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40)
def test_groups_always_partition_property(touched_sets):
    schema = Schema.of(("a", INT32), ("b", INT32), ("c", INT32), ("d", INT32))
    stats = AttributeStatistics.from_events(
        schema, [event(tuple(attrs)) for attrs in touched_sets]
    )
    for threshold in (0.3, 0.6, 1.0):
        groups = stats.affinity_groups(threshold)
        flat = sorted(name for group in groups for name in group)
        assert flat == ["a", "b", "c", "d"]
