"""Threading policy and blockwise partition tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.execution.threading import (
    MULTI_THREADED_8,
    SINGLE_THREADED,
    ThreadingPolicy,
    blockwise_partition,
)


class TestPolicies:
    def test_paper_policies(self):
        assert SINGLE_THREADED.threads == 1
        assert MULTI_THREADED_8.threads == 8
        assert not SINGLE_THREADED.is_parallel
        assert MULTI_THREADED_8.is_parallel

    def test_invalid_policy(self):
        with pytest.raises(ExecutionError):
            ThreadingPolicy("bad", 0)


class TestBlockwise:
    def test_exact_split(self):
        assert blockwise_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_early(self):
        assert blockwise_partition(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_fewer_items_than_threads(self):
        assert blockwise_partition(2, 8) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert blockwise_partition(0, 8) == []

    def test_invalid_inputs(self):
        with pytest.raises(ExecutionError):
            blockwise_partition(-1, 4)
        with pytest.raises(ExecutionError):
            blockwise_partition(4, 0)


@given(st.integers(0, 10_000), st.integers(1, 64))
def test_blockwise_exclusive_and_subsequent(count, threads):
    """The paper's invariant: exclusive AND subsequent position blocks."""
    blocks = blockwise_partition(count, threads)
    cursor = 0
    for start, stop in blocks:
        assert start == cursor  # subsequent
        assert stop > start  # exclusive, non-empty
        cursor = stop
    assert cursor == count
    assert len(blocks) <= threads
