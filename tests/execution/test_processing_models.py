"""Volcano vs. bulk processing model tests."""

import numpy as np
import pytest

from repro.execution.bulk import BulkPipeline, bulk_count_where, bulk_sum
from repro.execution.context import ExecutionContext
from repro.execution.volcano import (
    VolcanoScan,
    VolcanoSelect,
    VolcanoSum,
    run_volcano,
)
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def layout(platform):
    relation = Relation("t", Schema.of(("id", INT64), ("price", FLOAT64)), 200)
    fragments = []
    for name in relation.schema.names:
        fragment = Fragment(
            Region(relation.rows, (name,)), relation.schema, None, platform.host_memory
        )
        if name == "id":
            fragment.append_columns({"id": np.arange(200)})
        else:
            fragment.append_columns({"price": np.arange(200, dtype=np.float64) / 4})
        fragments.append(fragment)
    return Layout("t", relation, fragments)


class TestVolcano:
    def test_scan_produces_all_rows(self, layout, ctx):
        rows = run_volcano(VolcanoScan(layout, ["id"]), ctx)
        assert len(rows) == 200
        assert rows[7] == (7,)

    def test_select_filters(self, layout, ctx):
        plan = VolcanoSelect(VolcanoScan(layout, ["id"]), lambda row: row[0] < 5)
        assert run_volcano(plan, ctx) == [(i,) for i in range(5)]

    def test_sum_aggregates(self, layout, ctx):
        plan = VolcanoSum(VolcanoScan(layout, ["price"]))
        (result,) = run_volcano(plan, ctx)
        assert result[0] == pytest.approx(sum(i / 4 for i in range(200)))

    def test_call_overhead_charged_per_tuple(self, layout, platform):
        ctx = ExecutionContext(platform)
        run_volcano(VolcanoSum(VolcanoScan(layout, ["price"])), ctx)
        # At least one pull per tuple through the Sum operator.
        assert ctx.breakdown.parts["volcano-calls"] >= 200 * ctx.call_overhead_cycles


class TestBulk:
    def test_bulk_sum_value(self, layout, ctx):
        assert bulk_sum(layout, "price", ctx) == pytest.approx(
            sum(i / 4 for i in range(200))
        )

    def test_bulk_count_where(self, layout, ctx):
        assert bulk_count_where(layout, "price", lambda v: v >= 25.0, ctx) == 100

    def test_pipeline_stages_compose(self, layout, ctx):
        doubled = (
            BulkPipeline(layout, "price", vector_size=64)
            .map(lambda v: v * 2, name="double")
            .collect(ctx)
        )
        assert doubled[10] == pytest.approx(5.0)

    def test_bulk_beats_volcano(self, layout, platform):
        """Bulk pays call overhead per vector, Volcano per tuple."""
        volcano_ctx = ExecutionContext(platform)
        bulk_ctx = ExecutionContext(platform)
        run_volcano(VolcanoSum(VolcanoScan(layout, ["price"])), volcano_ctx)
        bulk_sum(layout, "price", bulk_ctx)
        assert bulk_ctx.cycles < volcano_ctx.cycles


class TestVolcanoOnRowStore:
    """The classic pairing: Volcano over NSM (Section II-A)."""

    @pytest.fixture
    def nsm_layout(self, platform):
        from repro.layout.linearization import LinearizationKind
        from repro.layout.region import Region

        relation = Relation("t", Schema.of(("id", INT64), ("price", FLOAT64)), 100)
        fragment = Fragment.from_rows(
            Region.full(relation), relation.schema, LinearizationKind.NSM,
            platform.host_memory, [(i, float(i)) for i in range(100)],
        )
        return Layout("t", relation, [fragment])

    def test_select_star_semantics(self, nsm_layout, ctx):
        rows = run_volcano(VolcanoScan(nsm_layout), ctx)
        assert rows[42] == (42, 42.0)

    def test_projection_reorders(self, nsm_layout, ctx):
        rows = run_volcano(VolcanoScan(nsm_layout, ["price", "id"]), ctx)
        assert rows[7] == (7.0, 7)

    def test_pipeline_select_sum(self, nsm_layout, ctx):
        plan = VolcanoSum(
            VolcanoSelect(VolcanoScan(nsm_layout, ["price"]), lambda r: r[0] < 10),
        )
        (result,) = run_volcano(plan, ctx)
        assert result[0] == pytest.approx(sum(range(10)))

    def test_operator_use_before_open_rejected(self, nsm_layout):
        from repro.errors import ExecutionError

        scan = VolcanoScan(nsm_layout)
        with pytest.raises(ExecutionError):
            scan.ctx
