"""CounterScope accounting: exactly-once roll-ups under interleaving."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.execution import CounterScope, ExecutionContext
from repro.hardware.event import PerfCounters
from repro.hardware.platform import Platform


def _fresh_ctx() -> ExecutionContext:
    return ExecutionContext(Platform.paper_testbed())


class TestScopeMechanics:
    def test_open_scope_seeds_the_timeline_position(self, ctx):
        scope = ctx.open_scope("q1", at_cycles=1000.0)
        assert scope.counters.cycles == 1000.0
        assert scope.baseline_cycles == 1000.0
        assert scope.cycles == 0.0
        assert scope.delta().cycles == 0.0

    def test_open_scope_defaults_to_current_position(self, ctx):
        ctx.charge("warmup", 250.0)
        scope = ctx.open_scope("q1")
        assert scope.baseline_cycles == 250.0

    def test_activate_routes_charges_into_the_scope(self, ctx):
        scope = ctx.open_scope("q1", at_cycles=0.0)
        with ctx.activate(scope):
            ctx.charge("work", 40.0)
            ctx.counters.pcie_bytes += 64
        # Nothing reached the root yet.
        assert ctx.counters.cycles == 0.0
        assert ctx.counters.pcie_bytes == 0
        assert scope.cycles == 40.0
        delta = ctx.settle(scope)
        assert delta.cycles == 40.0
        assert delta.pcie_bytes == 64
        assert ctx.counters.cycles == 40.0
        assert ctx.counters.pcie_bytes == 64
        assert ctx.breakdown.parts["work"] == 40.0

    def test_nested_activation_restores_and_settles_to_root(self, ctx):
        outer = ctx.open_scope("outer", at_cycles=0.0)
        with ctx.activate(outer):
            ctx.charge("outer-work", 50.0)
            inner = ctx.open_scope("inner")
            with ctx.activate(inner):
                ctx.charge("inner-work", 7.0)
            # Inner settles to the ROOT, not into the outer scope.
            ctx.settle(inner)
            assert outer.cycles == 50.0
        ctx.settle(outer)
        assert ctx.counters.cycles == 57.0
        assert ctx.breakdown.parts == {"outer-work": 50.0, "inner-work": 7.0}

    def test_settle_twice_is_an_error(self, ctx):
        scope = ctx.open_scope("q")
        ctx.settle(scope)
        with pytest.raises(ExecutionError):
            ctx.settle(scope)

    def test_settle_while_active_is_an_error(self, ctx):
        scope = ctx.open_scope("q")
        with ctx.activate(scope):
            with pytest.raises(ExecutionError):
                ctx.settle(scope)

    def test_activating_a_settled_scope_is_an_error(self, ctx):
        scope = ctx.open_scope("q")
        ctx.settle(scope)
        with pytest.raises(ExecutionError):
            with ctx.activate(scope):
                pass  # pragma: no cover - activation must raise first

    def test_activation_restores_on_exception(self, ctx):
        scope = ctx.open_scope("q")
        root = ctx.counters
        with pytest.raises(RuntimeError):
            with ctx.activate(scope):
                raise RuntimeError("operator died")
        assert ctx.counters is root

    def test_delta_is_a_copy(self, ctx):
        scope = ctx.open_scope("q", at_cycles=100.0)
        with ctx.activate(scope):
            ctx.charge("work", 5.0)
        before = scope.delta()
        with ctx.activate(scope):
            ctx.charge("work", 5.0)
        assert before.cycles == 5.0
        assert scope.delta().cycles == 10.0


# One interleaving event: (scope id, cycles, pcie bytes, nest flag).
EVENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=512),
        st.booleans(),
    ),
    max_size=40,
)


class TestRollUpProperty:
    """Satellite invariant: root totals == sum of scope deltas, always."""

    @given(events=EVENTS)
    def test_totals_equal_sum_of_deltas_under_any_interleaving(self, events):
        ctx = _fresh_ctx()
        scopes: dict[int, CounterScope] = {}
        nested: list[CounterScope] = []
        for index, (scope_id, cycles, pcie, nest) in enumerate(events):
            scope = scopes.setdefault(
                scope_id,
                # Deliberately varied (and nonzero) timeline seeds: the
                # baseline must never leak into the roll-up.
                ctx.open_scope(f"s{scope_id}", at_cycles=float(scope_id * 10_000)),
            )
            with ctx.activate(scope):
                ctx.charge(f"work.{scope_id}", float(cycles))
                ctx.counters.pcie_bytes += pcie
                if nest:
                    inner = ctx.open_scope(f"nested.{index}")
                    with ctx.activate(inner):
                        ctx.charge(f"nested.{index}", float(index))
                    nested.append(inner)
        deltas = [ctx.settle(scope) for scope in scopes.values()]
        deltas.extend(ctx.settle(scope) for scope in nested)
        total = PerfCounters()
        for delta in deltas:
            total.merge(delta)
        assert ctx.counters.snapshot() == total.snapshot()
        assert ctx.breakdown.total == total.cycles

    @given(events=EVENTS)
    def test_registry_attribution_matches_root(self, events):
        from repro.obs.metrics import MetricsRegistry

        ctx = _fresh_ctx()
        registry = MetricsRegistry()
        for scope_id, cycles, pcie, __ in events:
            scope = ctx.open_scope(f"s{scope_id}")
            with ctx.activate(scope):
                ctx.charge("work", float(cycles))
                ctx.counters.pcie_bytes += pcie
            registry.observe_query(scope.name, ctx.settle(scope))
        assert registry.totals.snapshot() == ctx.counters.snapshot()
