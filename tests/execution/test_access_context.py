"""AccessDescriptor and ExecutionContext tests."""

import pytest

from repro.errors import WorkloadError
from repro.execution.access import AccessDescriptor, AccessKind
from repro.execution.context import ExecutionContext


class TestAccessDescriptor:
    def make(self, rows, attrs, total_rows=10_000, arity=21):
        return AccessDescriptor(
            kind=AccessKind.READ,
            attributes=tuple(f"a{i}" for i in range(attrs)),
            row_count=rows,
            relation_rows=total_rows,
            relation_arity=arity,
        )

    def test_record_centric_shape(self):
        descriptor = self.make(rows=1, attrs=21)
        assert descriptor.is_record_centric
        assert not descriptor.is_attribute_centric

    def test_attribute_centric_shape(self):
        descriptor = self.make(rows=10_000, attrs=1)
        assert descriptor.is_attribute_centric
        assert not descriptor.is_record_centric

    def test_selectivities(self):
        descriptor = self.make(rows=100, attrs=7)
        assert descriptor.row_selectivity == pytest.approx(0.01)
        assert descriptor.attribute_selectivity == pytest.approx(7 / 21)

    def test_empty_relation_selectivity(self):
        descriptor = self.make(rows=0, attrs=1, total_rows=0)
        assert descriptor.row_selectivity == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            AccessDescriptor(AccessKind.READ, (), 1, 10, 5)
        with pytest.raises(WorkloadError):
            AccessDescriptor(AccessKind.READ, ("a",), -1, 10, 5)


class TestExecutionContext:
    def test_charge_updates_counters_and_breakdown(self, platform):
        ctx = ExecutionContext(platform)
        ctx.charge("scan", 1000.0)
        ctx.charge("scan", 500.0)
        assert ctx.cycles == 1500.0
        assert ctx.breakdown.parts["scan"] == 1500.0

    def test_note_does_not_double_count(self, platform):
        ctx = ExecutionContext(platform)
        ctx.counters.charge(100.0)
        ctx.note("transfer", 100.0)
        assert ctx.cycles == 100.0
        assert ctx.breakdown.parts["transfer"] == 100.0

    def test_seconds(self, platform):
        ctx = ExecutionContext(platform)
        ctx.charge("x", platform.cpu.frequency_hz)
        assert ctx.seconds() == pytest.approx(1.0)

    def test_fork_resets_counters_keeps_policy(self, platform):
        from repro.execution.threading import MULTI_THREADED_8

        ctx = ExecutionContext(platform, threading=MULTI_THREADED_8)
        ctx.charge("x", 10)
        fork = ctx.fork()
        assert fork.cycles == 0
        assert fork.threading is MULTI_THREADED_8
        assert fork.platform is platform


class TestRenderBreakdown:
    def test_sorted_and_bounded(self, platform):
        ctx = ExecutionContext(platform)
        ctx.charge("small", 10.0)
        ctx.charge("big", 1000.0)
        ctx.charge("medium", 100.0)
        rendered = ctx.render_breakdown(top=2)
        lines = rendered.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("big")
        assert "%" in lines[0]

    def test_empty_breakdown(self, platform):
        assert ExecutionContext(platform).render_breakdown() == ""
