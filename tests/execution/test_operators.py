"""Operator tests: correctness of the data plane, sanity of the cost plane."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.operators import (
    filter_scan,
    materialize_rows,
    sum_at_positions,
    sum_column,
    update_field,
)
from repro.execution.threading import MULTI_THREADED_8
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.partitioning import one_region_per_attribute
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def relation():
    return Relation("t", Schema.of(("id", INT64), ("price", FLOAT64)), 100)


@pytest.fixture
def rows():
    return [(i, float(i) / 2) for i in range(100)]


def nsm_layout(relation, platform, rows):
    fragment = Fragment.from_rows(
        Region.full(relation), relation.schema, LinearizationKind.NSM,
        platform.host_memory, rows,
    )
    return Layout("nsm", relation, [fragment])


def columnar_layout(relation, platform, rows):
    fragments = []
    for region in one_region_per_attribute(relation):
        fragment = Fragment(region, relation.schema, None, platform.host_memory)
        position = relation.schema.position_of(region.attributes[0])
        fragment.append_rows([(row[position],) for row in rows])
        fragments.append(fragment)
    return Layout("dsm", relation, fragments)


class TestSumColumn:
    def test_value_nsm(self, relation, platform, ctx, rows):
        layout = nsm_layout(relation, platform, rows)
        assert sum_column(layout, "price", ctx) == pytest.approx(sum(r[1] for r in rows))

    def test_value_columnar(self, relation, platform, ctx, rows):
        layout = columnar_layout(relation, platform, rows)
        assert sum_column(layout, "price", ctx) == pytest.approx(sum(r[1] for r in rows))

    def test_dsm_cheaper_than_nsm_at_scale(self, platform):
        """Finding (iii): attribute-centric scans favor DSM."""
        big = Relation("big", Schema.of(("id", INT64), ("price", FLOAT64)), 500_000)
        nsm_fragment = Fragment(
            Region.full(big), big.schema, LinearizationKind.NSM,
            platform.host_memory, materialize=False,
        )
        nsm_fragment.fill_phantom(big.row_count)
        dsm_fragments = []
        for region in one_region_per_attribute(big):
            fragment = Fragment(
                region, big.schema, None, platform.host_memory, materialize=False
            )
            fragment.fill_phantom(big.row_count)
            dsm_fragments.append(fragment)
        nsm_ctx = ExecutionContext(platform)
        dsm_ctx = ExecutionContext(platform)
        sum_column(Layout("n", big, [nsm_fragment]), "price", nsm_ctx)
        sum_column(Layout("d", big, dsm_fragments), "price", dsm_ctx)
        assert dsm_ctx.cycles < nsm_ctx.cycles

    def test_threading_helps_large_scans(self, platform):
        big = Relation("big", Schema.of(("price", FLOAT64)), 5_000_000)
        fragment = Fragment(
            Region.full(big), big.schema, None, platform.host_memory, materialize=False
        )
        fragment.fill_phantom(big.row_count)
        layout = Layout("c", big, [fragment])
        single = ExecutionContext(platform)
        multi = ExecutionContext(platform, threading=MULTI_THREADED_8)
        sum_column(layout, "price", single)
        sum_column(layout, "price", multi)
        assert multi.cycles < single.cycles

    def test_empty_layout_sums_to_zero(self, platform, ctx):
        empty = Relation("e", Schema.of(("price", FLOAT64)), 0)
        fragment = Fragment(
            Region(empty.rows, ("price",)), empty.schema, None, platform.host_memory
        )
        layout = Layout("e", empty, [fragment], validate=False)
        assert sum_column(layout, "price", ctx) == 0.0


class TestSumAtPositions:
    def test_value(self, relation, platform, ctx, rows):
        layout = columnar_layout(relation, platform, rows)
        positions = [3, 17, 42]
        expected = sum(rows[p][1] for p in positions)
        assert sum_at_positions(layout, "price", positions, ctx) == pytest.approx(expected)

    def test_uncovered_position_rejected(self, relation, platform, ctx, rows):
        layout = columnar_layout(relation, platform, rows)
        with pytest.raises(ExecutionError):
            sum_at_positions(layout, "price", [1000], ctx)

    def test_single_thread_beats_multi_on_tiny_lists(self, relation, platform, rows):
        """Finding (i): thread management dominates tiny position lists."""
        layout = columnar_layout(relation, platform, rows)
        single = ExecutionContext(platform)
        multi = ExecutionContext(platform, threading=MULTI_THREADED_8)
        sum_at_positions(layout, "price", [1, 2, 3], single)
        sum_at_positions(layout, "price", [1, 2, 3], multi)
        assert single.cycles < multi.cycles


class TestMaterialize:
    def test_values(self, relation, platform, ctx, rows):
        layout = nsm_layout(relation, platform, rows)
        assert materialize_rows(layout, [5, 50], ctx) == [rows[5], rows[50]]

    def test_values_columnar(self, relation, platform, ctx, rows):
        layout = columnar_layout(relation, platform, rows)
        assert materialize_rows(layout, [5, 50], ctx) == [rows[5], rows[50]]

    def test_nsm_cheaper_than_dsm_for_wide_records(self, platform):
        """Finding (ii): record-centric materialization favors NSM."""
        from repro.workload.tpcc import customer_relation

        relation = customer_relation(2_000_000)
        nsm_fragment = Fragment(
            Region.full(relation), relation.schema, LinearizationKind.NSM,
            platform.host_memory, materialize=False,
        )
        nsm_fragment.fill_phantom(relation.row_count)
        dsm_fragments = []
        for region in one_region_per_attribute(relation):
            fragment = Fragment(
                region, relation.schema, None, platform.host_memory, materialize=False
            )
            fragment.fill_phantom(relation.row_count)
            dsm_fragments.append(fragment)
        positions = list(range(0, 2_000_000, 13339))[:150]
        nsm_ctx = ExecutionContext(platform)
        dsm_ctx = ExecutionContext(platform)
        materialize_rows(Layout("n", relation, [nsm_fragment]), positions, nsm_ctx)
        materialize_rows(Layout("d", relation, dsm_fragments), positions, dsm_ctx)
        assert nsm_ctx.cycles * 3 < dsm_ctx.cycles  # ~21 columns vs 2 lines


class TestFilterScan:
    def test_positions(self, relation, platform, ctx, rows):
        layout = columnar_layout(relation, platform, rows)
        positions = filter_scan(layout, "price", lambda v: v >= 45.0, ctx)
        assert positions == list(range(90, 100))

    def test_bad_predicate_shape(self, relation, platform, ctx, rows):
        layout = columnar_layout(relation, platform, rows)
        with pytest.raises(ExecutionError):
            filter_scan(layout, "price", lambda v: np.array([True]), ctx)


class TestUpdate:
    def test_in_place(self, relation, platform, ctx, rows):
        layout = nsm_layout(relation, platform, rows)
        update_field(layout, 7, "price", 99.0, ctx)
        assert layout.read_row(7) == (7, 99.0)
        assert ctx.counters.bytes_written == 8

    def test_uncovered_cell_rejected(self, relation, platform, ctx, rows):
        layout = nsm_layout(relation, platform, rows)
        with pytest.raises(ExecutionError):
            update_field(layout, 100, "price", 1.0, ctx)

    def test_updates_all_replicas(self, relation, platform, ctx, rows):
        first = Fragment.from_rows(
            Region.full(relation), relation.schema, LinearizationKind.NSM,
            platform.host_memory, rows,
        )
        second = Fragment.from_rows(
            Region.full(relation), relation.schema, LinearizationKind.DSM,
            platform.host_memory, rows,
        )
        layout = Layout("repl", relation, [first, second], allow_overlap=True)
        update_field(layout, 3, "price", 123.0, ctx)
        assert first.read_field(3, "price") == 123.0
        assert second.read_field(3, "price") == 123.0
