"""GPU selection kernel tests (device_count_where)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.execution import ExecutionContext, device_count_where
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def relation():
    return Relation("t", Schema.of(("v", FLOAT64)), 2000)


def column(relation, platform_or_space, values):
    space = getattr(platform_or_space, "host_memory", platform_or_space)
    fragment = Fragment(Region.full(relation), relation.schema, None, space)
    fragment.append_columns({"v": values})
    return fragment


class TestCountWhere:
    def test_count_correct(self, relation, platform, ctx):
        values = np.arange(2000, dtype=np.float64)
        fragment = column(relation, platform, values)
        layout = Layout("t", relation, [fragment])
        got = device_count_where(layout, "v", lambda v: v >= 1500, ctx)
        assert got == 500

    def test_only_scalar_returns_when_resident(self, relation, platform):
        values = np.arange(2000, dtype=np.float64)
        fragment = column(relation, platform, values).copy_to(platform.device_memory)
        layout = Layout("t", relation, [fragment])
        ctx = ExecutionContext(platform)
        device_count_where(layout, "v", lambda v: v > 0, ctx)
        assert ctx.counters.bytes_transferred == 8

    def test_host_column_staged(self, relation, platform, ctx):
        values = np.arange(2000, dtype=np.float64)
        fragment = column(relation, platform, values)
        layout = Layout("t", relation, [fragment])
        device_count_where(layout, "v", lambda v: v > 0, ctx)
        assert ctx.counters.bytes_transferred >= 2000 * 8

    def test_bad_predicate_shape(self, relation, platform, ctx):
        fragment = column(relation, platform, np.ones(2000))
        layout = Layout("t", relation, [fragment])
        with pytest.raises(ExecutionError):
            device_count_where(layout, "v", lambda v: np.array([True]), ctx)


class TestCoGaDBCountWhere:
    def test_routed_count(self):
        from repro.engines import CoGaDBEngine
        from repro.hardware import Platform
        from repro.workload import generate_items, item_schema

        platform = Platform.paper_testbed()
        engine = CoGaDBEngine(platform)
        engine.create("item", item_schema())
        columns = generate_items(3000)
        engine.load("item", columns)
        ctx = ExecutionContext(platform)
        expected = int(np.sum(columns["i_price"] > 50.0))
        # Host-routed (unplaced)...
        assert engine.count_where("item", "i_price", lambda v: v > 50.0, ctx) == expected
        # ...and device-routed once placed (HyPE's call either way).
        engine.place_columns("item", ("i_price",), ctx)
        assert engine.count_where("item", "i_price", lambda v: v > 50.0, ctx) == expected
