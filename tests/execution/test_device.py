"""Device execution tests: transfer accounting, panel 3 vs 4 semantics."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.execution.context import ExecutionContext
from repro.execution.device import (
    device_sum_column,
    is_device_resident,
    transfer_fragment,
)
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def relation():
    return Relation("prices", Schema.of(("price", FLOAT64)), 1000)


def host_column(relation, platform, values):
    fragment = Fragment(
        Region.full(relation), relation.schema, None, platform.host_memory
    )
    fragment.append_columns({"price": values})
    return fragment


class TestTransfer:
    def test_transfer_charges_pcie(self, relation, platform, ctx):
        values = np.ones(1000)
        fragment = host_column(relation, platform, values)
        clone = transfer_fragment(fragment, platform.device_memory, ctx)
        assert is_device_resident(clone)
        assert ctx.counters.bytes_transferred == fragment.nbytes
        assert ctx.cycles > 0

    def test_transfer_to_same_space_rejected(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(1000))
        with pytest.raises(PlacementError):
            transfer_fragment(fragment, platform.host_memory, ctx)


class TestDeviceSum:
    def test_value_correct(self, relation, platform, ctx):
        values = np.arange(1000, dtype=np.float64)
        fragment = host_column(relation, platform, values)
        layout = Layout("c", relation, [fragment])
        total = device_sum_column(layout, "price", ctx)
        assert total == pytest.approx(float(np.sum(values)))

    def test_resident_skips_transfer(self, relation, platform):
        values = np.arange(1000, dtype=np.float64)
        host_fragment = host_column(relation, platform, values)
        staged = ExecutionContext(platform)
        resident_ctx = ExecutionContext(platform)
        device_fragment = host_fragment.copy_to(platform.device_memory)
        device_sum_column(Layout("h", relation, [host_fragment]), "price", staged)
        device_sum_column(Layout("d", relation, [device_fragment]), "price", resident_ctx)
        assert resident_ctx.cycles < staged.cycles
        # Only the scalar result crosses the bus for the resident case.
        assert resident_ctx.counters.bytes_transferred == 8

    def test_charge_transfer_false_reproduces_panel4_accounting(
        self, relation, platform
    ):
        values = np.arange(1000, dtype=np.float64)
        fragment = host_column(relation, platform, values)
        layout = Layout("h", relation, [fragment])
        included = ExecutionContext(platform)
        excluded = ExecutionContext(platform)
        total_inc = device_sum_column(layout, "price", included, charge_transfer=True)
        total_exc = device_sum_column(layout, "price", excluded, charge_transfer=False)
        assert total_inc == total_exc  # data plane identical
        assert excluded.cycles < included.cycles

    def test_kernel_launches_counted(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(1000))
        device_sum_column(Layout("c", relation, [fragment]), "price", ctx)
        assert ctx.counters.kernel_launches == 2


class TestMemoryPressure:
    """Robust staging under device-memory pressure (Bress et al. 2016)."""

    def test_small_device_stages_in_chunks(self, relation):
        from repro.hardware import Platform

        # Free device memory holds only a quarter of the column.
        platform = Platform.paper_testbed(device_capacity=2000)
        values = np.arange(1000, dtype=np.float64)
        fragment = host_column(relation, platform, values)
        layout = Layout("c", relation, [fragment])
        ctx = ExecutionContext(platform)
        total = device_sum_column(layout, "price", ctx)
        assert total == pytest.approx(float(np.sum(values)))
        # 8000 B through a 2000 B bounce buffer: 4 chunks, 8 launches.
        assert ctx.counters.kernel_launches == 8
        # The bounce buffer was released.
        assert platform.device_memory.used == 0

    def test_exhausted_device_raises_capacity(self, relation):
        from repro.errors import CapacityError
        from repro.hardware import Platform

        platform = Platform.paper_testbed(device_capacity=8)
        platform.device_memory.allocate(8, "hog")
        fragment = host_column(relation, platform, np.ones(1000))
        layout = Layout("c", relation, [fragment])
        with pytest.raises(CapacityError):
            device_sum_column(layout, "price", ExecutionContext(platform))

    def test_cogadb_falls_back_to_host(self):
        from repro.engines import CoGaDBEngine
        from repro.hardware import Platform
        from repro.workload import generate_items, item_schema

        platform = Platform.paper_testbed(device_capacity=8)
        platform.device_memory.allocate(8, "hog")
        engine = CoGaDBEngine(platform)
        engine.create("item", item_schema())
        columns = generate_items(200)
        engine.load("item", columns)
        # Force HyPE toward the GPU so the capacity error path fires.
        engine.scheduler.cpu_calibration = 1e9
        ctx = ExecutionContext(platform)
        total = engine.sum("item", "i_price", ctx)
        assert total == pytest.approx(float(np.sum(columns["i_price"])))
        assert engine.scheduler.decisions[-1] == "cpu-fallback"
