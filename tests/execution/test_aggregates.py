"""aggregate_column tests: named reducers over layouts."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.execution import ExecutionContext, aggregate_column, sum_column
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64
from repro.model.relation import Relation, RowRange
from repro.model.schema import Schema


@pytest.fixture
def layout(platform):
    """A chunked column (two fragments) so combine logic is exercised."""
    relation = Relation("t", Schema.of(("v", FLOAT64)), 100)
    fragments = []
    values = np.arange(100, dtype=np.float64)
    for rows in (RowRange(0, 60), RowRange(60, 100)):
        fragment = Fragment(
            Region(rows, ("v",)), relation.schema, None, platform.host_memory
        )
        fragment.append_columns({"v": values[rows.start : rows.stop]})
        fragments.append(fragment)
    return Layout("t", relation, fragments)


class TestReducers:
    def test_sum_matches_sum_column(self, layout, ctx):
        assert aggregate_column(layout, "v", "sum", ctx) == pytest.approx(
            sum_column(layout, "v", ctx.fork())
        )

    def test_min_max(self, layout, ctx):
        assert aggregate_column(layout, "v", "min", ctx) == 0.0
        assert aggregate_column(layout, "v", "max", ctx) == 99.0

    def test_mean_weights_fragments(self, layout, ctx):
        assert aggregate_column(layout, "v", "mean", ctx) == pytest.approx(49.5)

    def test_count(self, layout, ctx):
        assert aggregate_column(layout, "v", "count", ctx) == 100

    def test_unknown_op_rejected(self, layout, ctx):
        with pytest.raises(ExecutionError):
            aggregate_column(layout, "v", "median", ctx)

    def test_empty_relation_identities(self, platform, ctx):
        relation = Relation("e", Schema.of(("v", FLOAT64)), 0)
        fragment = Fragment(
            Region(relation.rows, ("v",)), relation.schema, None,
            platform.host_memory,
        )
        layout = Layout("e", relation, [fragment], validate=False)
        assert aggregate_column(layout, "v", "sum", ctx) == 0.0
        assert aggregate_column(layout, "v", "count", ctx) == 0
        assert aggregate_column(layout, "v", "min", ctx) is None

    def test_cost_identical_across_ops(self, layout, platform):
        """Same scan, different combine: costs must match sum's."""
        costs = {}
        for op in ("sum", "min", "max", "mean", "count"):
            ctx = ExecutionContext(platform)
            aggregate_column(layout, "v", op, ctx)
            costs[op] = ctx.cycles
        assert len(set(costs.values())) == 1
