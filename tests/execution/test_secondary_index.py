"""Secondary (non-unique) index tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.execution import ExecutionContext, SecondaryIndex
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import INT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def layout(platform):
    relation = Relation("t", Schema.of(("grp", INT64)), 40)
    fragment = Fragment(Region.full(relation), relation.schema, None, platform.host_memory)
    fragment.append_columns({"grp": np.arange(40) % 4})
    return Layout("t", relation, [fragment])


class TestSecondaryIndex:
    def test_build_and_lookup(self, layout, ctx):
        index = SecondaryIndex.build(layout, "grp", ctx)
        assert index.lookup(2) == tuple(range(2, 40, 4))
        assert index.lookup(99) == ()
        assert index.entries == 40
        assert len(index) == 4
        assert ctx.cycles > 0

    def test_positions_sorted(self):
        index = SecondaryIndex("k")
        for position in (9, 3, 7, 1):
            index.insert("x", position)
        assert index.lookup("x") == (1, 3, 7, 9)

    def test_duplicate_pair_rejected(self):
        index = SecondaryIndex("k")
        index.insert("x", 5)
        with pytest.raises(ExecutionError):
            index.insert("x", 5)

    def test_remove(self):
        index = SecondaryIndex("k")
        index.insert("x", 1)
        index.insert("x", 2)
        index.remove("x", 1)
        assert index.lookup("x") == (2,)
        index.remove("x", 2)
        assert len(index) == 0
        with pytest.raises(ExecutionError):
            index.remove("x", 2)

    def test_lookup_charges_probe(self, layout, platform):
        index = SecondaryIndex.build(layout, "grp")
        ctx = ExecutionContext(platform)
        index.lookup(1, ctx)
        assert ctx.cycles > 0


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 100)), max_size=60))
@settings(max_examples=40)
def test_secondary_index_matches_dict_oracle(pairs):
    index = SecondaryIndex("k")
    oracle: dict[int, set[int]] = {}
    for key, position in pairs:
        if position in oracle.get(key, set()):
            continue
        index.insert(key, position)
        oracle.setdefault(key, set()).add(position)
    for key, positions in oracle.items():
        assert index.lookup(key) == tuple(sorted(positions))
    assert index.entries == sum(len(v) for v in oracle.values())
