"""Hash index and Q1 point-query tests."""

import pytest

from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.index import HashIndex, point_query
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def layout(platform):
    relation = Relation("t", Schema.of(("pk", INT64), ("v", FLOAT64)), 50)
    fragment = Fragment.from_rows(
        Region.full(relation), relation.schema, LinearizationKind.NSM,
        platform.host_memory, [(i * 3, float(i)) for i in range(50)],
    )
    return Layout("t", relation, [fragment])


class TestHashIndex:
    def test_build_and_lookup(self, layout, ctx):
        index = HashIndex.build(layout, "pk", ctx)
        assert len(index) == 50
        assert index.lookup(9) == 3
        assert index.lookup(10) is None
        assert ctx.cycles > 0

    def test_duplicate_key_rejected(self):
        index = HashIndex("pk")
        index.insert(1, 0)
        with pytest.raises(ExecutionError):
            index.insert(1, 5)

    def test_delete_and_move(self):
        index = HashIndex("pk")
        index.insert(1, 0)
        index.move(1, 9)
        assert index.lookup(1) == 9
        index.delete(1)
        assert 1 not in index
        with pytest.raises(ExecutionError):
            index.delete(1)
        with pytest.raises(ExecutionError):
            index.move(1, 2)

    def test_probe_charges_cycles(self, layout, platform):
        index = HashIndex.build(layout, "pk")
        ctx = ExecutionContext(platform)
        index.lookup(9, ctx)
        assert ctx.cycles > 0


class TestPointQuery:
    def test_q1_semantics(self, layout, ctx):
        """Q1: SELECT * FROM R WHERE pk = c materializes all fields."""
        index = HashIndex.build(layout, "pk")
        assert point_query(layout, index, 9, ctx) == (9, 3.0)

    def test_missing_key_returns_none(self, layout, ctx):
        index = HashIndex.build(layout, "pk")
        assert point_query(layout, index, 10, ctx) is None

    def test_point_query_cheaper_than_scan(self, layout, platform):
        """The paper's premise: the pk index avoids scanning."""
        from repro.execution.operators import filter_scan

        index = HashIndex.build(layout, "pk")
        indexed = ExecutionContext(platform)
        scanned = ExecutionContext(platform)
        point_query(layout, index, 9, indexed)
        filter_scan(layout, "pk", lambda v: v == 9, scanned)
        assert indexed.cycles < scanned.cycles
