"""Non-key selection with and without secondary indexes."""

import numpy as np
import pytest

from repro.engines import HyriseEngine, RowStoreEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import item_schema

ROWS = 500


@pytest.fixture
def engine(small_items):
    platform = Platform.paper_testbed()
    engine = RowStoreEngine(platform)
    engine.create("item", item_schema())
    engine.load("item", small_items)
    return engine, platform


class TestSelectEquals:
    def test_scan_fallback_correct(self, engine, small_items):
        rowstore, platform = engine
        ctx = ExecutionContext(platform)
        key = int(small_items["i_im_id"][3])
        rows = rowstore.select_equals("item", "i_im_id", key, ctx)
        expected = int(np.sum(small_items["i_im_id"] == key))
        assert len(rows) == expected
        assert all(row[1] == key for row in rows)

    def test_indexed_path_same_answer(self, engine, small_items):
        rowstore, platform = engine
        ctx = ExecutionContext(platform)
        key = int(small_items["i_im_id"][3])
        scanned = rowstore.select_equals("item", "i_im_id", key, ctx)
        rowstore.create_index("item", "i_im_id", ctx)
        indexed = rowstore.select_equals("item", "i_im_id", key, ctx)
        assert indexed == scanned

    def test_index_beats_scan(self, engine, small_items):
        rowstore, platform = engine
        key = int(small_items["i_im_id"][3])
        scan_ctx = ExecutionContext(platform)
        rowstore.select_equals("item", "i_im_id", key, scan_ctx)
        rowstore.create_index("item", "i_im_id", ExecutionContext(platform))
        index_ctx = ExecutionContext(platform)
        rowstore.select_equals("item", "i_im_id", key, index_ctx)
        assert index_ctx.cycles < scan_ctx.cycles

    def test_string_selection(self, engine, small_items):
        rowstore, platform = engine
        ctx = ExecutionContext(platform)
        key = small_items["i_name"][0].decode()
        rows = rowstore.select_equals("item", "i_name", key, ctx)
        assert rows and all(row[2] == key for row in rows)

    def test_missing_value_empty(self, engine):
        rowstore, platform = engine
        ctx = ExecutionContext(platform)
        assert rowstore.select_equals("item", "i_im_id", -1, ctx) == []

    def test_index_maintained_on_update(self, engine, small_items):
        rowstore, platform = engine
        ctx = ExecutionContext(platform)
        rowstore.create_index("item", "i_im_id", ctx)
        old_key = int(small_items["i_im_id"][7])
        rowstore.update("item", 7, "i_im_id", 99_999, ctx)
        hits = rowstore.select_equals("item", "i_im_id", 99_999, ctx)
        assert [row[0] for row in hits] == [7]
        stale = rowstore.select_equals("item", "i_im_id", old_key, ctx)
        assert 7 not in [row[0] for row in stale]

    def test_phantom_relation_rejected(self):
        platform = Platform.paper_testbed()
        engine = RowStoreEngine(platform)
        engine.create("item", item_schema())
        engine.load_phantom("item", 100)
        with pytest.raises(EngineError):
            engine.create_index("item", "i_im_id", ExecutionContext(platform))

    def test_works_on_columnar_engine_too(self, small_items):
        platform = Platform.paper_testbed()
        engine = HyriseEngine(platform)
        engine.create("item", item_schema())
        engine.load("item", small_items)
        ctx = ExecutionContext(platform)
        engine.create_index("item", "i_im_id", ctx)
        key = int(small_items["i_im_id"][11])
        rows = engine.select_equals("item", "i_im_id", key, ctx)
        assert all(row[1] == key for row in rows)
