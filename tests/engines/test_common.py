"""Cross-engine contract tests: every engine, one behaviour matrix.

Each surveyed engine (plus the reference design) must answer the same
queries with the same correct values, keep replicas coherent under
updates, refuse misuse consistently, and expose a capability record
consistent with its live mechanisms.
"""

import numpy as np
import pytest

from repro.core.classification import check_capability_consistency
from repro.core.reference_engine import ReferenceEngine
from repro.engines import (
    CoGaDBEngine,
    ES2Engine,
    FracturedMirrorsEngine,
    GpuTxEngine,
    H2OEngine,
    HyperEngine,
    HyriseEngine,
    LStoreEngine,
    PaxEngine,
    PelotonEngine,
)
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema

ROWS = 400

ENGINE_FACTORIES = {
    "PAX": lambda p: PaxEngine(p, buffer_pool_pages=64),
    "Frac. Mirrors": FracturedMirrorsEngine,
    "HYRISE": HyriseEngine,
    "ES2": lambda p: ES2Engine(p, partition_rows=128),
    "GPUTx": GpuTxEngine,
    "H2O": lambda p: H2OEngine(p, hot_columns=("i_price",)),
    "HyPer": lambda p: HyperEngine(p, chunk_rows=128),
    "CoGaDB": CoGaDBEngine,
    "L-Store": LStoreEngine,
    "Peloton": lambda p: PelotonEngine(p, tile_group_rows=128),
    "Reference": lambda p: ReferenceEngine(p, delta_tile_rows=128),
}


@pytest.fixture(scope="module")
def columns():
    return generate_items(ROWS)


@pytest.fixture(params=sorted(ENGINE_FACTORIES))
def loaded(request, columns):
    platform = Platform.paper_testbed()
    engine = ENGINE_FACTORIES[request.param](platform)
    engine.create("item", item_schema())
    engine.load("item", columns)
    return engine, platform, columns


class TestQueryContract:
    def test_sum_matches_numpy(self, loaded):
        engine, platform, columns = loaded
        ctx = ExecutionContext(platform)
        total = engine.sum("item", "i_price", ctx)
        assert total == pytest.approx(float(np.sum(columns["i_price"])))
        assert ctx.cycles > 0

    def test_materialize_returns_full_rows(self, loaded):
        engine, platform, columns = loaded
        ctx = ExecutionContext(platform)
        rows = engine.materialize("item", [0, 123, ROWS - 1], ctx)
        assert len(rows) == 3
        for row, position in zip(rows, (0, 123, ROWS - 1)):
            assert row[0] == int(columns["i_id"][position])
            assert row[4] == pytest.approx(float(columns["i_price"][position]))

    def test_sum_at_positions(self, loaded):
        engine, platform, columns = loaded
        ctx = ExecutionContext(platform)
        positions = [3, 77, 200]
        expected = float(np.sum(columns["i_price"][positions]))
        assert engine.sum_at("item", "i_price", positions, ctx) == pytest.approx(expected)

    def test_update_visible_everywhere(self, loaded):
        engine, platform, columns = loaded
        ctx = ExecutionContext(platform)
        before = float(np.sum(columns["i_price"]))
        old = float(columns["i_price"][42])
        engine.update("item", 42, "i_price", 500.0, ctx)
        assert engine.sum("item", "i_price", ctx) == pytest.approx(before - old + 500.0)
        row = engine.materialize("item", [42], ctx)[0]
        assert row[4] == pytest.approx(500.0)

    def test_point_query_by_primary_key(self, loaded):
        engine, platform, columns = loaded
        ctx = ExecutionContext(platform)
        row = engine.point_query("item", 123, ctx)
        assert row is not None and row[0] == 123
        assert engine.point_query("item", 10**9, ctx) is None


class TestLifecycle:
    def test_unknown_relation_rejected(self, loaded):
        engine, platform, __ = loaded
        with pytest.raises(EngineError):
            engine.sum("ghost", "x", ExecutionContext(platform))

    def test_double_create_rejected(self, loaded):
        engine, __, __ = loaded
        with pytest.raises(EngineError):
            engine.create("item", item_schema())

    def test_double_load_rejected(self, loaded, columns):
        engine, __, __ = loaded
        with pytest.raises(EngineError):
            engine.load("item", columns)

    def test_trace_records_accesses(self, loaded):
        engine, platform, __ = loaded
        ctx = ExecutionContext(platform)
        before = len(engine.managed("item").trace)
        engine.sum("item", "i_price", ctx)
        engine.update("item", 0, "i_price", 1.0, ctx)
        assert len(engine.managed("item").trace) >= before + 2


class TestClassificationSurface:
    def test_capabilities_consistent_with_mechanisms(self, loaded):
        engine, __, __ = loaded
        assert check_capability_consistency(engine, "item") == []

    def test_layouts_cover_relation(self, loaded):
        engine, __, __ = loaded
        for layout in engine.layouts("item"):
            layout.validate()

    def test_fragment_population_nonempty(self, loaded):
        engine, __, __ = loaded
        assert engine.fragment_population("item")

    def test_static_engines_refuse_reorganize(self, loaded):
        engine, platform, __ = loaded
        ctx = ExecutionContext(platform)
        if engine.is_responsive:
            engine.reorganize("item", ctx)  # must not raise
        else:
            with pytest.raises(EngineError):
                engine.reorganize("item", ctx)


class TestPhantomLoads:
    def test_phantom_load_costs_match_geometry(self, loaded):
        """A phantom load of the same engine prices sums identically to
        the materialized instance (cost plane is payload-independent)."""
        engine, platform, columns = loaded
        if engine.name == "ES2":
            pytest.skip("ES2 writes real payloads to the DFS on load")
        fresh_platform = Platform.paper_testbed()
        phantom = ENGINE_FACTORIES[engine.name](fresh_platform)
        phantom.create("item", item_schema())
        phantom.load_phantom("item", ROWS)
        real_ctx = ExecutionContext(platform)
        phantom_ctx = ExecutionContext(fresh_platform)
        engine.sum("item", "i_price", real_ctx)
        phantom.sum("item", "i_price", phantom_ctx)
        assert phantom_ctx.cycles == pytest.approx(real_ctx.cycles, rel=1e-6)


class TestPrimaryKeyImmutability:
    def test_pk_updates_rejected(self, loaded):
        """The hash index is keyed on the first attribute; mutating it
        would silently desynchronize point queries — so it is refused."""
        engine, platform, __ = loaded
        ctx = ExecutionContext(platform)
        with pytest.raises(EngineError):
            engine.update("item", 3, "i_id", 999_999, ctx)
        # The index still resolves correctly afterwards.
        assert engine.point_query("item", 3, ctx)[0] == 3


class TestUnknownAttributeContract:
    def test_sum_on_unknown_attribute_raises_cleanly(self, loaded):
        from repro.errors import ReproError

        engine, platform, __ = loaded
        with pytest.raises(ReproError):
            engine.sum("item", "no_such_column", ExecutionContext(platform))

    def test_update_on_unknown_attribute_raises_cleanly(self, loaded):
        from repro.errors import ReproError

        engine, platform, __ = loaded
        with pytest.raises(ReproError):
            engine.update("item", 0, "no_such_column", 1.0, ExecutionContext(platform))
