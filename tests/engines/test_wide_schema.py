"""Cross-engine checks on the WIDE (21-attribute customer) schema.

Most engine tests use the 5-attribute item table; arity assumptions
hide there.  This file loads the paper's 96-byte/21-field customer
table into every engine and exercises the full contract.
"""

import numpy as np
import pytest

from repro.core.reference_engine import ReferenceEngine
from repro.engines import (
    CoGaDBEngine,
    ES2Engine,
    FracturedMirrorsEngine,
    GpuTxEngine,
    H2OEngine,
    HyperEngine,
    HyriseEngine,
    LStoreEngine,
    PaxEngine,
    PelotonEngine,
)
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import customer_schema, generate_customers

ROWS = 300

FACTORIES = {
    "PAX": lambda p: PaxEngine(p, buffer_pool_pages=32),
    "Frac. Mirrors": FracturedMirrorsEngine,
    "HYRISE": HyriseEngine,
    "ES2": lambda p: ES2Engine(p, partition_rows=100),
    "GPUTx": GpuTxEngine,
    "H2O": lambda p: H2OEngine(p, hot_columns=("c_balance",)),
    "HyPer": lambda p: HyperEngine(p, chunk_rows=100),
    "CoGaDB": CoGaDBEngine,
    "L-Store": lambda p: LStoreEngine(p, tail_capacity=64),
    "Peloton": lambda p: PelotonEngine(p, tile_group_rows=100),
    "Reference": lambda p: ReferenceEngine(p, delta_tile_rows=100),
}


@pytest.fixture(scope="module")
def columns():
    return generate_customers(ROWS)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_customer_contract(name, columns):
    platform = Platform.paper_testbed()
    engine = FACTORIES[name](platform)
    engine.create("customer", customer_schema())
    engine.load("customer", columns)
    ctx = ExecutionContext(platform)

    expected = float(np.sum(columns["c_credit_lim"]))
    assert engine.sum("customer", "c_credit_lim", ctx) == pytest.approx(expected)

    row = engine.materialize("customer", [7], ctx)[0]
    assert len(row) == 21
    assert row[0] == 7
    assert row[3] == columns["c_first"][7].decode()

    engine.update("customer", 7, "c_credit_lim", 1.0, ctx)
    assert engine.sum("customer", "c_credit_lim", ctx) == pytest.approx(
        expected - float(columns["c_credit_lim"][7]) + 1.0
    )
    assert engine.point_query("customer", 7, ctx)[14] == pytest.approx(1.0)
    for layout in engine.layouts("customer"):
        layout.validate()


def test_hyrise_affinity_on_wide_schema(columns):
    """21 attributes, two co-access clusters -> containers follow."""
    platform = Platform.paper_testbed()
    engine = HyriseEngine(platform, affinity_threshold=0.5)
    engine.create("customer", customer_schema())
    engine.load("customer", columns)
    ctx = ExecutionContext(platform)
    identity = ("c_first", "c_last", "c_city")
    money = ("c_credit_lim",)
    from repro.execution.access import AccessKind

    for __ in range(20):
        engine.record_access("customer", AccessKind.READ, identity, 2)
        engine.sum("customer", "c_credit_lim", ctx)
    engine.reorganize("customer", ctx)
    layout = engine.layouts("customer")[0]
    identity_fragment = layout.fragment_for(0, "c_first")
    assert set(identity) <= set(identity_fragment.region.attributes)
    money_fragment = layout.fragment_for(0, "c_credit_lim")
    assert money_fragment.region.attributes == money
