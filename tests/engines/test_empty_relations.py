"""Empty-relation contract: zero rows is a state, not an error."""

import pytest

from repro.core.reference_engine import ReferenceEngine
from repro.engines import (
    CoGaDBEngine,
    ES2Engine,
    FracturedMirrorsEngine,
    GpuTxEngine,
    H2OEngine,
    HyperEngine,
    HyriseEngine,
    LStoreEngine,
    PaxEngine,
    PelotonEngine,
)
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema

FACTORIES = {
    "PAX": PaxEngine,
    "Frac. Mirrors": FracturedMirrorsEngine,
    "HYRISE": HyriseEngine,
    "ES2": ES2Engine,
    "GPUTx": GpuTxEngine,
    "H2O": lambda p: H2OEngine(p, hot_columns=("i_price",)),
    "HyPer": HyperEngine,
    "CoGaDB": CoGaDBEngine,
    "L-Store": LStoreEngine,
    "Peloton": PelotonEngine,
    "Reference": ReferenceEngine,
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_empty_relation_contract(name):
    platform = Platform.paper_testbed()
    engine = FACTORIES[name](platform)
    engine.create("item", item_schema())
    engine.load("item", generate_items(0))
    ctx = ExecutionContext(platform)

    assert engine.sum("item", "i_price", ctx) == 0.0
    assert engine.materialize("item", [], ctx) == []
    assert engine.sum_at("item", "i_price", [], ctx) == 0.0
    with pytest.raises(EngineError):
        engine.point_query("item", 0, ctx)  # no index on empty relations


def test_hyper_grows_from_empty():
    """An empty relation is the natural start of an insert-only life."""
    platform = Platform.paper_testbed()
    engine = HyperEngine(platform, chunk_rows=4)
    engine.create("item", item_schema())
    engine.load("item", generate_items(0))
    ctx = ExecutionContext(platform)
    for i in range(10):
        engine.insert("item", (i, 1, "AA", "B", 2.0), ctx)
    assert engine.sum("item", "i_price", ctx) == pytest.approx(20.0)
    assert engine.materialize("item", [7], ctx)[0][0] == 7
    engine.layouts("item")[0].validate()
