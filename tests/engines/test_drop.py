"""Relation lifecycle: drop() frees everything, everywhere."""

import pytest

from repro.core.reference_engine import ReferenceEngine
from repro.engines import (
    CoGaDBEngine,
    ES2Engine,
    FracturedMirrorsEngine,
    GpuTxEngine,
    HyperEngine,
    HyriseEngine,
    LStoreEngine,
    PaxEngine,
    PelotonEngine,
)
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema

FACTORIES = {
    "PAX": lambda p: PaxEngine(p, buffer_pool_pages=16),
    "Frac. Mirrors": FracturedMirrorsEngine,
    "HYRISE": HyriseEngine,
    "ES2": lambda p: ES2Engine(p, partition_rows=128),
    "GPUTx": GpuTxEngine,
    "HyPer": lambda p: HyperEngine(p, chunk_rows=128),
    "CoGaDB": CoGaDBEngine,
    "L-Store": lambda p: LStoreEngine(p, tail_capacity=16),
    "Peloton": lambda p: PelotonEngine(p, tile_group_rows=128),
    "Reference": lambda p: ReferenceEngine(p, delta_tile_rows=128),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_drop_frees_all_simulated_memory(name):
    platform = Platform.paper_testbed()
    engine = FACTORIES[name](platform)
    spaces = [platform.host_memory, platform.device_memory, platform.disk]
    if name == "ES2":
        spaces = [node.memory for node in engine.cluster.nodes] + [
            node.disk for node in engine.cluster.nodes
        ]
    if name == "Frac. Mirrors":
        spaces = list(engine.disks) + [platform.host_memory]
    baseline = [space.used for space in spaces]

    engine.create("item", item_schema())
    engine.load("item", generate_items(300))
    ctx = ExecutionContext(platform)
    engine.sum("item", "i_price", ctx)
    engine.update("item", 3, "i_price", 1.0, ctx)  # creates L-Store tails
    if name == "CoGaDB":
        engine.place_columns("item", ("i_price",), ctx)

    engine.drop("item")
    assert [space.used for space in spaces] == baseline, name
    with pytest.raises(EngineError):
        engine.sum("item", "i_price", ctx)
    # The name is reusable after the drop.
    engine.create("item", item_schema())
    engine.load("item", generate_items(50))
    assert engine.relation("item").row_count == 50
