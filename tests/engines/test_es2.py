"""ES2 tests: delegation, distribution, DFS backing, re-adaption."""

import pytest

from repro.distributed.cluster import Cluster
from repro.engines.es2 import ES2Engine
from repro.execution import ExecutionContext
from repro.workload import item_schema


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(ES2Engine, partition_rows=128)


class TestDistribution:
    def test_partitions_spread_over_nodes(self, engine):
        es2, __ = engine
        spaces = {f.space.name for f in es2.layouts("item")[0].fragments}
        assert len(spaces) >= 2

    def test_delegation_owns_every_row(self, engine):
        es2, __ = engine
        policy = es2.delegation_policy("item")
        owners = {policy.owner_of(position, "i_id") for position in (0, 200, 499)}
        assert all(owner.startswith("node") for owner in owners)

    def test_replica_layout_on_shifted_nodes(self, engine):
        es2, __ = engine
        primary, replica = es2.layouts("item")
        primary_spaces = [f.space.name for f in primary.fragments]
        replica_spaces = [f.space.name for f in replica.fragments]
        assert primary_spaces != replica_spaces

    def test_pax_formatted_pages_in_dfs(self, engine):
        es2, __ = engine
        primary = es2.layouts("item")[0]
        for fragment in primary.fragments:
            dfs_file = es2.dfs.file(fragment.label)
            assert dfs_file.size == len(fragment.serialize())

    def test_remote_reads_cost_network(self, engine):
        es2, platform = engine
        ctx = ExecutionContext(platform)
        es2.sum("item", "i_price", ctx)
        assert "es2-network" in ctx.breakdown.parts


class TestReAdaption:
    def test_regroups_by_affinity(self, engine):
        es2, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(30):
            es2.sum("item", "i_price", ctx)
        assert es2.reorganize("item", ctx)
        primary = es2.layouts("item")[0]
        price_fragment = primary.fragment_for(0, "i_price")
        assert price_fragment.region.attributes == ("i_price",)

    def test_reorganize_preserves_values(self, engine, small_items):
        import numpy as np

        es2, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(30):
            es2.sum("item", "i_price", ctx)
        expected = float(np.sum(small_items["i_price"]))
        es2.reorganize("item", ctx)
        assert es2.sum("item", "i_price", ctx) == pytest.approx(expected)
        assert es2.materialize("item", [7], ctx)[0][0] == 7

    def test_reorganize_rewrites_dfs(self, engine):
        es2, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(30):
            es2.sum("item", "i_price", ctx)
        old_paths = set(es2.dfs.paths())
        es2.reorganize("item", ctx)
        assert set(es2.dfs.paths()) != old_paths

    def test_noop_when_grouping_unchanged(self, engine):
        es2, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(30):
            es2.sum("item", "i_price", ctx)
        assert es2.reorganize("item", ctx)
        assert not es2.reorganize("item", ctx)


class TestConfiguration:
    def test_custom_cluster(self, platform, small_items):
        es2 = ES2Engine(platform, cluster=Cluster(node_count=6), partition_rows=64)
        es2.create("item", item_schema())
        es2.load("item", small_items)
        spaces = {f.space.name for f in es2.layouts("item")[0].fragments}
        assert len(spaces) == 6

    def test_replication_capped_by_cluster(self, platform):
        es2 = ES2Engine(platform, cluster=Cluster(node_count=2), dfs_replication=5)
        assert es2.dfs.replication == 2


class TestDistributedSecondaryIndexes:
    def test_fanout_lookup(self, engine, small_items):
        import numpy as np

        es2, platform = engine
        ctx = ExecutionContext(platform)
        es2.create_secondary_index("item", "i_im_id", ctx)
        key = int(small_items["i_im_id"][7])
        expected = tuple(np.flatnonzero(small_items["i_im_id"] == key))
        got = es2.lookup_secondary("item", "i_im_id", key, ctx)
        assert got == expected

    def test_remote_shards_cost_network(self, engine, small_items):
        es2, platform = engine
        ctx = ExecutionContext(platform)
        es2.create_secondary_index("item", "i_im_id", ctx)
        lookup_ctx = ExecutionContext(platform)
        key = int(small_items["i_im_id"][0])
        es2.lookup_secondary("item", "i_im_id", key, lookup_ctx)
        assert "es2-network" in lookup_ctx.breakdown.parts

    def test_lookup_without_index_rejected(self, engine):
        from repro.errors import EngineError

        es2, platform = engine
        with pytest.raises(EngineError):
            es2.lookup_secondary("item", "i_name", "X", ExecutionContext(platform))

    def test_index_feeds_materialization(self, engine, small_items):
        """The paper's pipeline: secondary lookup -> sorted position
        list -> record materialization."""
        es2, platform = engine
        ctx = ExecutionContext(platform)
        es2.create_secondary_index("item", "i_im_id", ctx)
        key = int(small_items["i_im_id"][3])
        positions = es2.lookup_secondary("item", "i_im_id", key, ctx)
        rows = es2.materialize("item", list(positions), ctx)
        assert all(row[1] == key for row in rows)


class TestElasticity:
    def test_scale_out_spreads_partitions(self, loaded_item_engine_factory):
        # 500 rows / 48-row partitions = 11 partitions: enough to cover
        # the grown cluster.
        es2, platform = loaded_item_engine_factory(ES2Engine, partition_rows=48)
        ctx = ExecutionContext(platform)
        before = {f.space.name for f in es2.layouts("item")[0].fragments}
        migrated = es2.scale_out("item", added_nodes=4, ctx=ctx)
        after = {f.space.name for f in es2.layouts("item")[0].fragments}
        assert len(es2.cluster) == 8
        assert len(after) > len(before)
        assert migrated > 0
        assert "es2-migration" in ctx.breakdown.parts

    def test_values_survive_scale_out(self, engine, small_items):
        import numpy as np

        es2, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        es2.scale_out("item", added_nodes=2, ctx=ctx)
        assert es2.sum("item", "i_price", ctx) == pytest.approx(expected)
        assert es2.materialize("item", [123], ctx)[0][0] == 123
        for layout in es2.layouts("item"):
            layout.validate()

    def test_old_node_memory_released(self, engine):
        es2, platform = engine
        ctx = ExecutionContext(platform)
        payload_before = sum(node.memory.used for node in es2.cluster.nodes)
        es2.scale_out("item", added_nodes=4, ctx=ctx)
        payload_after = sum(node.memory.used for node in es2.cluster.nodes)
        assert payload_after == payload_before  # moved, not duplicated

    def test_secondary_indexes_invalidated(self, engine, small_items):
        es2, platform = engine
        ctx = ExecutionContext(platform)
        es2.create_secondary_index("item", "i_im_id", ctx)
        es2.scale_out("item", added_nodes=1, ctx=ctx)
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            es2.lookup_secondary("item", "i_im_id", 1, ctx)
        # Rebuild works against the new partitioning.
        es2.create_secondary_index("item", "i_im_id", ctx)
        key = int(small_items["i_im_id"][7])
        assert 7 in es2.lookup_secondary("item", "i_im_id", key, ctx)

    def test_invalid_scale_rejected(self, engine):
        from repro.errors import EngineError

        es2, platform = engine
        with pytest.raises(EngineError):
            es2.scale_out("item", added_nodes=0, ctx=ExecutionContext(platform))
