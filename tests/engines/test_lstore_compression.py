"""L-Store with compressed base pages (the paper's 'read-only (and
compressed) base page part')."""

import numpy as np
import pytest

from repro.engines.lstore import LStoreEngine
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import item_schema


@pytest.fixture
def compressible_columns():
    """Item columns engineered to compress well (low-cardinality ints,
    constant-ish strings, clustered prices)."""
    rows = 800
    rng = np.random.default_rng(5)
    return {
        "i_id": np.arange(rows, dtype="<i8"),  # FOR-friendly
        "i_im_id": rng.integers(0, 4, rows, dtype="<i4"),  # dict-friendly
        "i_name": np.full(rows, b"WIDGET", dtype="S6"),  # RLE-friendly
        "i_data": np.full(rows, b"XY", dtype="S2"),
        "i_price": rng.integers(1, 100, rows).astype("<f8"),
    }


@pytest.fixture
def engine(compressible_columns):
    platform = Platform.paper_testbed()
    engine = LStoreEngine(platform, tail_capacity=64, compress_base=True)
    engine.create("item", item_schema())
    engine.load("item", compressible_columns)
    return engine, platform


class TestCompressedBase:
    def test_base_pages_compressed_after_load(self, engine):
        lstore, __ = engine
        compressed = [
            fragment.is_compressed
            for fragment in lstore.layouts("item")[0].fragments
        ]
        assert all(compressed)

    def test_memory_footprint_shrinks(self, engine, compressible_columns):
        lstore, platform = engine
        raw = 800 * 28
        assert platform.host_memory.used < raw / 2

    def test_reads_and_scans_correct(self, engine, compressible_columns):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(compressible_columns["i_price"]))
        assert lstore.sum("item", "i_price", ctx) == pytest.approx(expected)
        row = lstore.materialize("item", [17], ctx)[0]
        assert row[0] == 17 and row[2] == "WIDGET"

    def test_updates_flow_to_tails(self, engine, compressible_columns):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(compressible_columns["i_price"]))
        old = float(compressible_columns["i_price"][5])
        lstore.update("item", 5, "i_price", 0.5, ctx)
        assert lstore.read_field("item", 5, "i_price", ctx) == 0.5
        assert lstore.sum("item", "i_price", ctx) == pytest.approx(
            expected - old + 0.5
        )
        # The compressed base page itself was never touched.
        base = lstore.layouts("item")[0].fragment_for(5, "i_price")
        assert base.is_compressed

    def test_merge_recompresses(self, engine):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        lstore.update("item", 5, "i_price", 0.5, ctx)
        assert lstore.reorganize("item", ctx)
        base = lstore.layouts("item")[0].fragment_for(5, "i_price")
        assert base.is_compressed
        assert lstore.read_field("item", 5, "i_price", ctx) == 0.5

    def test_compressed_scans_cheaper_at_scale(self):
        """Compression pays once scans are memory-bound: the smaller
        encoded stream beats the raw one despite decode compute."""
        rows = 200_000
        rng = np.random.default_rng(5)
        columns = {
            "i_id": np.arange(rows, dtype="<i8"),
            "i_im_id": rng.integers(0, 4, rows, dtype="<i4"),
            "i_name": np.full(rows, b"WIDGET", dtype="S6"),
            "i_data": np.full(rows, b"XY", dtype="S2"),
            "i_price": rng.integers(1, 100, rows).astype("<f8"),
        }
        costs = {}
        for compress in (False, True):
            platform = Platform.paper_testbed()
            engine = LStoreEngine(platform, compress_base=compress)
            engine.create("item", item_schema())
            engine.load("item", columns)
            ctx = ExecutionContext(platform)
            engine.sum("item", "i_im_id", ctx)
            costs[compress] = ctx.cycles
        assert costs[True] < costs[False]
