"""HyPer tests: partition/chunk/vector hierarchy, appends, compaction."""

import numpy as np
import pytest

from repro.engines.hyper import HyperEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.workload import generate_items, item_schema


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(HyperEngine, chunk_rows=128)


class TestHierarchy:
    def test_everything_is_a_vector(self, engine):
        hyper, __ = engine
        for vector in hyper.fragment_population("item"):
            assert vector.region.is_column

    def test_chunk_count(self, engine):
        hyper, __ = engine
        layout = hyper.layouts("item")[0]
        chunks = {f.region.rows.start for f in layout.fragments}
        assert len(chunks) == 4  # 500 rows / 128 per chunk

    def test_vectors_per_chunk_equal_arity(self, engine):
        hyper, __ = engine
        layout = hyper.layouts("item")[0]
        first_chunk = [f for f in layout.fragments if f.region.rows.start == 0]
        assert len(first_chunk) == 5

    def test_custom_partitions(self, platform, small_items):
        hyper = HyperEngine(
            platform,
            partitions=[("i_id", "i_im_id"), ("i_name", "i_data", "i_price")],
            chunk_rows=128,
        )
        hyper.create("item", item_schema())
        hyper.load("item", small_items)
        layout = hyper.layouts("item")[0]
        layout.validate()
        assert layout.combines_partitionings

    def test_bad_partitions_rejected(self, platform, small_items):
        hyper = HyperEngine(platform, partitions=[("i_id",)])
        hyper.create("item", item_schema())
        with pytest.raises(EngineError):
            hyper.load("item", small_items)


class TestAppends:
    def test_insert_into_tail(self, engine):
        hyper, platform = engine
        ctx = ExecutionContext(platform)
        position = hyper.insert("item", (500, 9, "ZZ", "Q", 5.0), ctx)
        assert position == 500
        assert hyper.relation("item").row_count == 501
        assert hyper.materialize("item", [500], ctx)[0][0] == 500

    def test_insert_opens_new_chunks(self, engine):
        hyper, platform = engine
        ctx = ExecutionContext(platform)
        layout = hyper.layouts("item")[0]
        before = len(layout)
        for i in range(130):  # crosses one chunk boundary
            hyper.insert("item", (500 + i, 1, "AA", "B", 1.0), ctx)
        assert len(layout) > before
        layout.validate()

    def test_inserted_rows_sum(self, engine, small_items):
        hyper, platform = engine
        ctx = ExecutionContext(platform)
        for i in range(10):
            hyper.insert("item", (500 + i, 1, "AA", "B", 2.0), ctx)
        expected = float(np.sum(small_items["i_price"])) + 20.0
        assert hyper.sum("item", "i_price", ctx) == pytest.approx(expected)

    def test_insert_updates_pk_index(self, engine):
        hyper, platform = engine
        ctx = ExecutionContext(platform)
        hyper.insert("item", (777000, 1, "AA", "B", 1.0), ctx)
        row = hyper.point_query("item", 777000, ctx)
        assert row is not None and row[0] == 777000

    def test_wrong_arity_rejected(self, engine):
        hyper, platform = engine
        with pytest.raises(EngineError):
            hyper.insert("item", (1, 2), ExecutionContext(platform))


class TestCompaction:
    def test_cold_chunks_merge(self, engine):
        hyper, platform = engine
        ctx = ExecutionContext(platform)
        layout = hyper.layouts("item")[0]
        before = len(layout)
        assert hyper.reorganize("item", ctx)
        assert len(layout) < before
        layout.validate()

    def test_values_survive_compaction(self, engine, small_items):
        hyper, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        hyper.reorganize("item", ctx)
        assert hyper.sum("item", "i_price", ctx) == pytest.approx(expected)
        assert hyper.materialize("item", [63, 300], ctx)[0][0] == 63

    def test_compaction_frees_memory_overhead(self, engine):
        hyper, platform = engine
        ctx = ExecutionContext(platform)
        used_before = platform.host_memory.used
        hyper.reorganize("item", ctx)
        assert platform.host_memory.used == used_before  # same payload

    def test_nothing_to_compact_returns_false(self, platform, small_items):
        hyper = HyperEngine(platform, chunk_rows=1000)  # single chunk
        hyper.create("item", item_schema())
        hyper.load("item", small_items)
        assert not hyper.reorganize("item", ExecutionContext(platform))


class TestFrozenCompression:
    """Funke et al.: compaction compresses the cold (frozen) data."""

    @pytest.fixture
    def compressible_engine(self):
        from repro.hardware import Platform
        from repro.workload import item_schema

        platform = Platform.paper_testbed()
        engine = HyperEngine(platform, chunk_rows=100, compress_frozen=True)
        engine.create("item", item_schema())
        rng = np.random.default_rng(3)
        rows = 500
        columns = {
            "i_id": np.arange(rows, dtype="<i8"),
            "i_im_id": rng.integers(0, 8, rows, dtype="<i4"),
            "i_name": np.full(rows, b"WIDGET", dtype="S6"),
            "i_data": np.full(rows, b"XY", dtype="S2"),
            "i_price": rng.integers(1, 50, rows).astype("<f8"),
        }
        engine.load("item", columns)
        return engine, platform, columns

    def test_frozen_chunks_are_compressed(self, compressible_engine):
        engine, platform, __ = compressible_engine
        ctx = ExecutionContext(platform)
        assert engine.reorganize("item", ctx)
        layout = engine.layouts("item")[0]
        frozen = [f for f in layout.fragments if "frozen" in f.label]
        assert frozen
        assert any(f.is_compressed for f in frozen)
        # The hot tail chunk stays raw (write path open).
        tail = layout.fragments_for_attribute("i_price")[-1]
        assert not tail.is_compressed

    def test_values_survive_frozen_compression(self, compressible_engine):
        engine, platform, columns = compressible_engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(columns["i_price"]))
        engine.reorganize("item", ctx)
        assert engine.sum("item", "i_price", ctx) == pytest.approx(expected)
        assert engine.materialize("item", [50], ctx)[0][0] == 50

    def test_memory_shrinks(self, compressible_engine):
        engine, platform, __ = compressible_engine
        used = platform.host_memory.used
        engine.reorganize("item", ExecutionContext(platform))
        assert platform.host_memory.used < used


class TestFrozenReadOnly:
    def test_update_of_frozen_row_rejected(self):
        """Frozen+compressed chunks are read-only; the real system sends
        such updates to versioned deltas (documented simplification)."""
        from repro.errors import StorageError
        from repro.hardware import Platform
        from repro.workload import generate_items, item_schema

        platform = Platform.paper_testbed()
        engine = HyperEngine(platform, chunk_rows=100, compress_frozen=True)
        engine.create("item", item_schema())
        rows = 500
        columns = generate_items(rows)
        columns["i_im_id"] = (np.arange(rows) % 4).astype("<i4")  # compressible
        engine.load("item", columns)
        ctx = ExecutionContext(platform)
        engine.reorganize("item", ctx)
        frozen = [
            f
            for f in engine.layouts("item")[0].fragments
            if f.is_compressed and f.region.attributes != ("i_id",)
        ]
        assert frozen
        position = frozen[0].region.rows.start
        attribute = frozen[0].region.attributes[0]
        with pytest.raises(StorageError):
            engine.update("item", position, attribute, 1, ctx)
        # Rows in the hot tail stay writable.
        engine.update("item", rows - 1, "i_price", 1.0, ctx)
