"""GPUTx tests: bulk amortization, transaction kinds, residency."""

import numpy as np
import pytest

from repro.engines.gputx import GpuTxEngine, Transaction, TxKind
from repro.errors import EngineError, TransactionError
from repro.execution import ExecutionContext
from repro.hardware.memory import MemoryKind


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(GpuTxEngine)


class TestResidency:
    def test_relations_live_on_device(self, engine):
        gputx, platform = engine
        for fragment in gputx.fragment_population("item"):
            assert fragment.space.kind is MemoryKind.DEVICE

    def test_result_pool_in_host(self, engine):
        gputx, platform = engine
        assert gputx.result_pool.space is platform.host_memory


class TestBulkExecution:
    def test_read_transactions(self, engine, small_items):
        gputx, platform = engine
        ctx = ExecutionContext(platform)
        results = gputx.execute_bulk(
            "item",
            [Transaction(TxKind.READ, 5, "i_price"), Transaction(TxKind.READ, 9, "i_id")],
            ctx,
        )
        assert results[0] == pytest.approx(float(small_items["i_price"][5]))
        assert results[1] == 9

    def test_update_and_increment(self, engine):
        gputx, platform = engine
        ctx = ExecutionContext(platform)
        gputx.execute_bulk(
            "item",
            [
                Transaction(TxKind.UPDATE, 0, "i_price", 10.0),
                Transaction(TxKind.INCREMENT, 0, "i_price", 2.5),
            ],
            ctx,
        )
        (value,) = gputx.execute_bulk(
            "item", [Transaction(TxKind.READ, 0, "i_price")], ctx
        )
        assert value == pytest.approx(12.5)

    def test_one_kernel_per_bulk(self, engine):
        gputx, platform = engine
        ctx = ExecutionContext(platform)
        batch = [Transaction(TxKind.READ, i, "i_price") for i in range(64)]
        gputx.execute_bulk("item", batch, ctx)
        assert ctx.counters.kernel_launches == 1

    def test_bulk_amortizes_launch_cost(self, engine):
        """He & Yu's point: K-at-a-time beats one-at-a-time."""
        gputx, platform = engine
        batch = [Transaction(TxKind.READ, i, "i_price") for i in range(256)]
        bulk_ctx = ExecutionContext(platform)
        serial_ctx = ExecutionContext(platform)
        gputx.execute_bulk("item", batch, bulk_ctx)
        for transaction in batch:
            gputx.execute_bulk("item", [transaction], serial_ctx)
        assert bulk_ctx.cycles * 10 < serial_ctx.cycles

    def test_empty_bulk_is_free(self, engine):
        gputx, platform = engine
        ctx = ExecutionContext(platform)
        assert gputx.execute_bulk("item", [], ctx) == []
        assert ctx.cycles == 0

    def test_out_of_range_position(self, engine):
        gputx, platform = engine
        with pytest.raises(TransactionError):
            gputx.execute_bulk(
                "item", [Transaction(TxKind.READ, 10**6, "i_price")],
                ExecutionContext(platform),
            )

    def test_write_needs_value(self):
        with pytest.raises(TransactionError):
            Transaction(TxKind.UPDATE, 0, "i_price")

    def test_result_pool_overflow(self, platform, small_items):
        from repro.workload import item_schema

        gputx = GpuTxEngine(platform, result_pool_bytes=64)
        gputx.create("item", item_schema())
        gputx.load("item", small_items)
        batch = [Transaction(TxKind.READ, i, "i_price") for i in range(100)]
        with pytest.raises(EngineError):
            gputx.execute_bulk("item", batch, ExecutionContext(platform))


class TestDeviceReads:
    def test_sum_runs_on_device(self, engine, small_items):
        gputx, platform = engine
        ctx = ExecutionContext(platform)
        total = gputx.sum("item", "i_price", ctx)
        assert total == pytest.approx(float(np.sum(small_items["i_price"])))
        assert ctx.counters.kernel_launches == 2
        # Device-resident: no column-sized PCIe traffic.
        assert ctx.counters.bytes_transferred < 100

    def test_materialize_via_result_pool(self, engine, small_items):
        gputx, platform = engine
        ctx = ExecutionContext(platform)
        rows = gputx.materialize("item", [3, 4], ctx)
        assert rows[0][0] == 3
        assert ctx.counters.bytes_transferred > 0


class TestConflictWaves:
    """K-set semantics: conflicting transactions serialize into waves."""

    def test_conflict_free_batch_is_one_wave(self):
        batch = [Transaction(TxKind.UPDATE, i, "i_price", 1.0) for i in range(50)]
        assert len(GpuTxEngine.plan_waves(batch)) == 1

    def test_reads_never_conflict(self):
        batch = [Transaction(TxKind.READ, 5, "i_price") for __ in range(50)]
        assert len(GpuTxEngine.plan_waves(batch)) == 1

    def test_same_cell_writes_serialize(self):
        batch = [Transaction(TxKind.INCREMENT, 5, "i_price", 1.0) for __ in range(4)]
        waves = GpuTxEngine.plan_waves(batch)
        assert len(waves) == 4
        assert [wave[0] for wave in waves] == [0, 1, 2, 3]  # program order

    def test_read_write_same_cell_conflicts(self):
        batch = [
            Transaction(TxKind.READ, 5, "i_price"),
            Transaction(TxKind.UPDATE, 5, "i_price", 1.0),
        ]
        assert len(GpuTxEngine.plan_waves(batch)) == 2

    def test_distinct_attributes_same_row_are_independent(self):
        batch = [
            Transaction(TxKind.UPDATE, 5, "i_price", 1.0),
            Transaction(TxKind.UPDATE, 5, "i_im_id", 7),
        ]
        assert len(GpuTxEngine.plan_waves(batch)) == 1

    def test_conflicting_increments_apply_in_order(self, engine):
        gputx, platform = engine
        ctx = ExecutionContext(platform)
        gputx.execute_bulk(
            "item",
            [Transaction(TxKind.UPDATE, 7, "i_price", 10.0)]
            + [Transaction(TxKind.INCREMENT, 7, "i_price", 1.0)] * 5,
            ctx,
        )
        (value,) = gputx.execute_bulk(
            "item", [Transaction(TxKind.READ, 7, "i_price")], ctx
        )
        assert value == pytest.approx(15.0)

    def test_waves_cost_extra_launches(self, engine):
        gputx, platform = engine
        serial = ExecutionContext(platform)
        parallel = ExecutionContext(platform)
        conflicting = [
            Transaction(TxKind.INCREMENT, 0, "i_price", 1.0) for __ in range(16)
        ]
        independent = [
            Transaction(TxKind.INCREMENT, i, "i_price", 1.0) for i in range(16)
        ]
        gputx.execute_bulk("item", conflicting, serial)
        gputx.execute_bulk("item", independent, parallel)
        assert serial.counters.kernel_launches == 16
        assert parallel.counters.kernel_launches == 1
        assert serial.cycles > parallel.cycles
