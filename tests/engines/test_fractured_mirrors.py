"""Fractured Mirrors tests: mirror routing, striping, coherence."""

import pytest

from repro.engines.fractured_mirrors import FracturedMirrorsEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.layout.linearization import LinearizationKind


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(FracturedMirrorsEngine)


class TestMirrors:
    def test_two_layouts_one_per_format(self, engine):
        mirrors, __ = engine
        kinds = {
            layout.fragments[0].linearization for layout in mirrors.layouts("item")
        }
        assert kinds == {LinearizationKind.NSM, LinearizationKind.DSM}

    def test_mirrors_on_distinct_spindles(self, engine):
        mirrors, __ = engine
        spaces = {
            layout.fragments[0].space.name for layout in mirrors.layouts("item")
        }
        assert len(spaces) == 2

    def test_needs_two_disks(self, platform):
        with pytest.raises(EngineError):
            FracturedMirrorsEngine(platform, disk_count=1)


class TestRouting:
    def test_sum_uses_dsm_mirror(self, engine, small_items):
        """Attribute-centric work must be cheaper than on the NSM mirror."""
        mirrors, platform = engine
        from repro.execution.operators import sum_column

        routed = ExecutionContext(platform)
        forced_nsm = ExecutionContext(platform)
        mirrors.sum("item", "i_price", routed)
        sum_column(
            mirrors._mirror("item", LinearizationKind.NSM), "i_price", forced_nsm
        )
        assert routed.cycles <= forced_nsm.cycles

    def test_materialize_uses_nsm_mirror(self, engine):
        mirrors, platform = engine
        from repro.execution.operators import materialize_rows

        routed = ExecutionContext(platform)
        forced_dsm = ExecutionContext(platform)
        positions = [1, 100, 400]
        mirrors.materialize("item", positions, routed)
        materialize_rows(
            mirrors._mirror("item", LinearizationKind.DSM), positions, forced_dsm
        )
        assert routed.cycles <= forced_dsm.cycles

    def test_update_keeps_mirrors_coherent(self, engine, small_items):
        mirrors, platform = engine
        ctx = ExecutionContext(platform)
        mirrors.update("item", 7, "i_price", 77.0, ctx)
        nsm = mirrors._mirror("item", LinearizationKind.NSM).fragments[0]
        dsm = mirrors._mirror("item", LinearizationKind.DSM).fragments[0]
        assert nsm.read_field(7, "i_price") == 77.0
        assert dsm.read_field(7, "i_price") == 77.0
        assert ctx.counters.bytes_written == 16  # one write per mirror
