"""Generic baseline engines: the taxonomy's unreached corners, reached."""

import numpy as np
import pytest

from repro.core.classification import classify
from repro.core.taxonomy import LayoutHandling
from repro.engines import (
    ColumnStoreEngine,
    EmulatedMultiLayoutEngine,
    NsmEmulatedEngine,
    RowStoreEngine,
)
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.layout.properties import LinearizationProperty
from repro.model.datatypes import FLOAT64
from repro.model.schema import Schema
from repro.workload import generate_items, item_schema

ROWS = 200


@pytest.fixture(scope="module")
def columns():
    return generate_items(ROWS)


def build(engine_cls, columns):
    platform = Platform.paper_testbed()
    engine = engine_cls(platform)
    engine.create("item", item_schema())
    engine.load("item", columns)
    return engine, platform


class TestBaselines:
    @pytest.mark.parametrize(
        "engine_cls", [RowStoreEngine, ColumnStoreEngine, NsmEmulatedEngine]
    )
    def test_query_contract(self, engine_cls, columns):
        engine, platform = build(engine_cls, columns)
        ctx = ExecutionContext(platform)
        assert engine.sum("item", "i_price", ctx) == pytest.approx(
            float(np.sum(columns["i_price"]))
        )
        assert engine.materialize("item", [7], ctx)[0][0] == 7
        engine.update("item", 7, "i_price", 1.0, ctx)
        assert engine.materialize("item", [7], ctx)[0][4] == 1.0

    def test_row_store_classification(self, columns):
        engine, __ = build(RowStoreEngine, columns)
        classification = classify(engine, "item")
        assert classification.linearization is LinearizationProperty.FAT_NSM_FIXED

    def test_column_store_classification(self, columns):
        engine, __ = build(ColumnStoreEngine, columns)
        classification = classify(engine, "item")
        assert classification.linearization is LinearizationProperty.THIN_DSM_EMULATED

    def test_nsm_emulated_classification(self, columns):
        engine, __ = build(NsmEmulatedEngine, columns)
        classification = classify(engine, "item")
        assert classification.linearization is LinearizationProperty.THIN_NSM_EMULATED

    def test_single_attribute_relation_is_direct(self):
        platform = Platform.paper_testbed()
        engine = ColumnStoreEngine(platform)
        engine.create("narrow", Schema.of(("v", FLOAT64)))
        engine.load("narrow", {"v": np.arange(10, dtype=np.float64)})
        classification = classify(engine, "narrow")
        assert classification.linearization is LinearizationProperty.DIRECT

    def test_nsm_emulated_row_cap(self):
        platform = Platform.paper_testbed()
        engine = NsmEmulatedEngine(platform)
        engine.create("item", item_schema())
        with pytest.raises(EngineError):
            engine.load_phantom("item", NsmEmulatedEngine.MAX_ROWS + 1)

    def test_nsm_emulated_record_bytes(self, columns):
        """Each per-record fragment serializes as one NSM record."""
        from repro.layout.linearization import nsm_serialize

        engine, __ = build(NsmEmulatedEngine, columns)
        fragment = engine.layouts("item")[0].fragments[3]
        row = fragment.read_row(0)
        assert fragment.serialize() == nsm_serialize(item_schema(), [row])


class TestEmulatedMultiLayout:
    def test_classified_as_emulated_multi(self, columns):
        engine, __ = build(EmulatedMultiLayoutEngine, columns)
        classification = classify(engine, "item")
        assert classification.layout_handling is LayoutHandling.MULTI_EMULATED

    def test_reads_route_by_shape(self, columns):
        engine, platform = build(EmulatedMultiLayoutEngine, columns)
        scan_ctx = ExecutionContext(platform)
        point_ctx = ExecutionContext(platform)
        engine.sum("item", "i_price", scan_ctx)
        engine.materialize("item", [3], point_ctx)
        # The scan must be priced as a columnar stream, far below the
        # NSM replica's strided cost for the same work.
        from repro.execution.operators import sum_column

        nsm_ctx = ExecutionContext(platform)
        sum_column(engine.row_replica.layouts("item")[0], "i_price", nsm_ctx)
        assert scan_ctx.cycles < nsm_ctx.cycles

    def test_writes_replicate_to_both(self, columns):
        engine, platform = build(EmulatedMultiLayoutEngine, columns)
        ctx = ExecutionContext(platform)
        engine.update("item", 5, "i_price", 9.0, ctx)
        row_value = engine.row_replica.materialize("item", [5], ctx)[0][4]
        column_value = engine.column_replica.materialize("item", [5], ctx)[0][4]
        assert row_value == column_value == 9.0

    def test_replication_doubles_memory(self, columns):
        platform = Platform.paper_testbed()
        engine = EmulatedMultiLayoutEngine(platform)
        engine.create("item", item_schema())
        engine.load("item", columns)
        assert platform.host_memory.used == 2 * ROWS * 28

    def test_sum_matches_oracle(self, columns):
        engine, platform = build(EmulatedMultiLayoutEngine, columns)
        ctx = ExecutionContext(platform)
        assert engine.sum("item", "i_price", ctx) == pytest.approx(
            float(np.sum(columns["i_price"]))
        )

    def test_point_query(self, columns):
        engine, platform = build(EmulatedMultiLayoutEngine, columns)
        ctx = ExecutionContext(platform)
        assert engine.point_query("item", 9, ctx)[0] == 9


class TestEmulatedMultiLifecycle:
    def test_drop_frees_both_replicas(self, columns):
        platform = Platform.paper_testbed()
        engine = EmulatedMultiLayoutEngine(platform)
        engine.create("item", item_schema())
        engine.load("item", columns)
        assert platform.host_memory.used == 2 * ROWS * 28
        engine.drop("item")
        assert platform.host_memory.used == 0
        with pytest.raises(EngineError):
            engine.sum("item", "i_price", ExecutionContext(platform))
        # Inner replicas forgot the relation too: the name is reusable.
        engine.create("item", item_schema())
        engine.load("item", columns)
        assert engine.relation("item").row_count == ROWS
