"""HYRISE tests: containers, affinity-driven re-adaptation."""

import pytest

from repro.engines.hyrise import HyriseEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.layout.linearization import LinearizationKind
from repro.workload import item_schema


class TestContainers:
    def test_default_is_single_nsm_container(self, loaded_item_engine_factory):
        engine, __ = loaded_item_engine_factory(HyriseEngine)
        layout = engine.layouts("item")[0]
        assert len(layout) == 1
        assert layout.fragments[0].linearization is LinearizationKind.NSM

    def test_custom_containers(self, loaded_item_engine_factory):
        engine, __ = loaded_item_engine_factory(
            HyriseEngine,
            initial_containers=[
                (("i_id", "i_im_id"), LinearizationKind.DSM),
                (("i_name", "i_data"), LinearizationKind.NSM),
                (("i_price",), LinearizationKind.DIRECT),
            ],
        )
        layout = engine.layouts("item")[0]
        assert len(layout) == 3
        assert layout.is_sub_relation_layout

    def test_bad_containers_rejected(self, platform, small_items):
        engine = HyriseEngine(
            platform, initial_containers=[(("i_id",), LinearizationKind.DIRECT)]
        )
        engine.create("item", item_schema())
        with pytest.raises(EngineError):
            engine.load("item", small_items)


class TestAdaptation:
    def run_scans(self, engine, platform, attribute, count=30):
        ctx = ExecutionContext(platform)
        for __ in range(count):
            engine.sum("item", attribute, ctx)
        return ctx

    def test_scan_workload_splits_hot_column(self, loaded_item_engine_factory):
        engine, platform = loaded_item_engine_factory(HyriseEngine)
        self.run_scans(engine, platform, "i_price")
        assert engine.reorganize("item", ExecutionContext(platform))
        layout = engine.layouts("item")[0]
        price_fragment = layout.fragment_for(0, "i_price")
        assert price_fragment.region.attributes == ("i_price",)

    def test_point_workload_keeps_wide_nsm(self, loaded_item_engine_factory):
        engine, platform = loaded_item_engine_factory(HyriseEngine)
        ctx = ExecutionContext(platform)
        for position in range(0, 300, 10):
            engine.materialize("item", [position], ctx)
        engine.reorganize("item", ExecutionContext(platform))
        layout = engine.layouts("item")[0]
        wide = layout.fragment_for(0, "i_id")
        assert wide.region.arity == 5
        assert wide.linearization is LinearizationKind.NSM

    def test_reorganize_preserves_values(self, loaded_item_engine_factory, small_items):
        engine, platform = loaded_item_engine_factory(HyriseEngine)
        self.run_scans(engine, platform, "i_price")
        ctx = ExecutionContext(platform)
        before = engine.sum("item", "i_price", ctx)
        engine.reorganize("item", ctx)
        assert engine.sum("item", "i_price", ctx) == pytest.approx(before)
        row = engine.materialize("item", [3], ctx)[0]
        assert row[0] == 3

    def test_reorganize_idempotent(self, loaded_item_engine_factory):
        engine, platform = loaded_item_engine_factory(HyriseEngine)
        self.run_scans(engine, platform, "i_price")
        ctx = ExecutionContext(platform)
        assert engine.reorganize("item", ctx)
        assert not engine.reorganize("item", ctx)

    def test_scan_faster_after_adaptation(self, loaded_item_engine_factory):
        """The point of being responsive: the workload gets cheaper."""
        engine, platform = loaded_item_engine_factory(HyriseEngine)
        before = self.run_scans(engine, platform, "i_price", count=1)
        engine.reorganize("item", ExecutionContext(platform))
        after = self.run_scans(engine, platform, "i_price", count=1)
        assert after.cycles < before.cycles


class TestWorkloadDrift:
    def test_adapts_back_when_workload_shifts(self, loaded_item_engine_factory):
        """The trace is a sliding window: after the workload drifts from
        scans to point queries, re-adaptation must follow."""
        engine, platform = loaded_item_engine_factory(HyriseEngine)
        ctx = ExecutionContext(platform)
        # Phase 1: scans -> column split.
        for __ in range(30):
            engine.sum("item", "i_price", ctx)
        engine.reorganize("item", ctx)
        assert engine.layouts("item")[0].fragment_for(0, "i_price").region.is_column
        # Phase 2: heavy point traffic dominates the window.
        engine.managed("item").trace.clear()
        for position in range(0, 300, 3):
            engine.materialize("item", [position], ctx)
        engine.reorganize("item", ctx)
        wide = engine.layouts("item")[0].fragment_for(0, "i_price")
        assert wide.region.arity == 5
        assert wide.linearization is LinearizationKind.NSM


class TestFormatChoice:
    def test_scan_heavy_coaccessed_group_becomes_dsm(self, loaded_item_engine_factory):
        """A multi-attribute cluster under attribute-centric traffic is
        kept together but re-formatted DSM (the variable-format power
        that distinguishes HYRISE from H2O)."""
        from repro.execution.access import AccessKind

        engine, platform = loaded_item_engine_factory(HyriseEngine)
        ctx = ExecutionContext(platform)
        for __ in range(30):
            # Two columns always scanned together, attribute-centric.
            engine.record_access(
                "item", AccessKind.READ, ("i_id", "i_price"), 500
            )
        specs = engine.propose_containers("item")
        joint = next(s for s in specs if "i_price" in s[0])
        assert set(joint[0]) == {"i_id", "i_price"}
        assert joint[1] is LinearizationKind.DSM
        engine.reorganize("item", ctx)
        fragment = engine.layouts("item")[0].fragment_for(0, "i_price")
        assert fragment.linearization is LinearizationKind.DSM
        assert fragment.region.is_fat
