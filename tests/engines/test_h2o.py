"""H2O tests: pool evaluation, lazy adaptation, NSM-only fat fragments."""

import pytest

from repro.engines.h2o import H2OEngine
from repro.execution import ExecutionContext
from repro.layout.linearization import LinearizationKind


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(H2OEngine, hot_columns=("i_price",))


class TestInitialLayout:
    def test_hot_columns_are_thin(self, engine):
        h2o, __ = engine
        layout = h2o.layouts("item")[0]
        price = layout.fragment_for(0, "i_price")
        assert price.region.attributes == ("i_price",)
        assert price.linearization is LinearizationKind.DIRECT

    def test_grouped_columns_are_nsm(self, engine):
        h2o, __ = engine
        layout = h2o.layouts("item")[0]
        group = layout.fragment_for(0, "i_id")
        assert group.linearization is LinearizationKind.NSM
        assert group.region.arity == 4

    def test_fat_fragments_never_dsm(self, engine):
        """H2O's signature restriction: DSM exists only as emulation."""
        h2o, __ = engine
        for fragment in h2o.fragment_population("item"):
            if fragment.region.is_fat:
                assert fragment.linearization is LinearizationKind.NSM


class TestPoolEvaluation:
    def test_scan_workload_wins_columns(self, engine):
        h2o, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(40):
            h2o.sum("item", "i_im_id", ctx)
        proposal = h2o.evaluate_pool("item")
        owner = next(g for g in proposal.groups if "i_im_id" in g.attributes)
        assert (
            owner.linearization is LinearizationKind.DIRECT
            or len(owner.attributes) == 1
        )

    def test_point_workload_wins_nsm_group(self, engine):
        h2o, platform = engine
        ctx = ExecutionContext(platform)
        for position in range(0, 400, 7):
            h2o.materialize("item", [position], ctx)
        proposal = h2o.evaluate_pool("item")
        widest = max(len(g.attributes) for g in proposal.groups)
        assert widest == 5  # one wide NSM group

    def test_reorganize_applies_winner(self, engine):
        h2o, platform = engine
        ctx = ExecutionContext(platform)
        for position in range(0, 400, 7):
            h2o.materialize("item", [position], ctx)
        assert h2o.reorganize("item", ctx)
        layout = h2o.layouts("item")[0]
        assert len(layout) == 1  # back to one wide NSM fragment

    def test_reorganize_lazy_noop(self, engine):
        h2o, platform = engine
        ctx = ExecutionContext(platform)
        for position in range(0, 400, 7):
            h2o.materialize("item", [position], ctx)
        h2o.reorganize("item", ctx)
        assert not h2o.reorganize("item", ctx)

    def test_values_survive_reorganization(self, engine, small_items):
        import numpy as np

        h2o, platform = engine
        ctx = ExecutionContext(platform)
        for position in range(0, 400, 7):
            h2o.materialize("item", [position], ctx)
        h2o.reorganize("item", ctx)
        assert h2o.sum("item", "i_price", ctx) == pytest.approx(
            float(np.sum(small_items["i_price"]))
        )
