"""PAX-specific tests: page geometry, minipages, buffer pool."""

import pytest

from repro.engines.pax import BufferPool, PaxEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.layout.linearization import LinearizationKind, dsm_serialize
from repro.model.datatypes import INT64
from repro.model.schema import Schema
from repro.workload import generate_items, item_schema


@pytest.fixture
def engine(loaded_item_engine_factory):
    engine, platform = loaded_item_engine_factory(PaxEngine, buffer_pool_pages=4)
    return engine, platform


class TestPageGeometry:
    def test_rows_per_page_from_page_size(self, engine):
        pax, __ = engine
        layout = pax.layouts("item")[0]
        rows_per_page = 8192 // 28
        assert layout.fragments[0].capacity == rows_per_page

    def test_pages_are_dsm_fixed(self, engine):
        pax, __ = engine
        for page in pax.layouts("item")[0].fragments:
            if page.region.is_fat:
                assert page.linearization is LinearizationKind.DSM

    def test_minipage_bytes_pinned(self, platform):
        """A page's payload is the DSM serialization of its rows."""
        pax = PaxEngine(platform, page_size=256)
        schema = item_schema()
        pax.create("item", schema)
        columns = generate_items(20)
        pax.load("item", columns)
        page = pax.layouts("item")[0].fragments[0]
        rows = [page.read_row(i) for i in range(page.filled)]
        assert page.serialize() == dsm_serialize(schema, rows)

    def test_record_wider_than_page_rejected(self, platform):
        pax = PaxEngine(platform, page_size=4)
        pax.create("t", Schema.of(("x", INT64)))
        with pytest.raises(EngineError):
            pax.load_phantom("t", 10)

    def test_pages_live_on_disk(self, engine):
        pax, platform = engine
        for page in pax.layouts("item")[0].fragments:
            assert page.space is platform.disk


class TestBufferPool:
    def test_cold_read_charges_disk(self, engine):
        pax, platform = engine
        ctx = ExecutionContext(platform)
        pax.sum("item", "i_price", ctx)
        assert pax.buffer_pool.misses > 0
        assert any("disk-read" in label for label in ctx.breakdown.parts)

    def test_hot_pages_are_free(self, platform):
        pax = PaxEngine(platform, buffer_pool_pages=64)
        pax.create("item", item_schema())
        pax.load("item", generate_items(300))  # ~2 pages, fits the pool
        cold = ExecutionContext(platform)
        warm = ExecutionContext(platform)
        pax.sum("item", "i_price", cold)
        pax.sum("item", "i_price", warm)
        assert warm.cycles < cold.cycles
        assert pax.buffer_pool.hits > 0

    def test_lru_eviction_when_pool_too_small(self, platform):
        pax = PaxEngine(platform, buffer_pool_pages=1)
        pax.create("item", item_schema())
        pax.load("item", generate_items(600))  # > 2 pages, 1 frame
        ctx = ExecutionContext(platform)
        pax.sum("item", "i_price", ctx)
        pax.sum("item", "i_price", ctx)
        assert pax.buffer_pool.misses >= 4  # every page refaults
        assert pax.buffer_pool.resident_pages == 1

    def test_point_queries_pin_only_their_page(self, engine):
        pax, platform = engine
        ctx = ExecutionContext(platform)
        pax.materialize("item", [0], ctx)
        assert pax.buffer_pool.misses == 1

    def test_invalid_pool(self, platform):
        with pytest.raises(EngineError):
            BufferPool(platform.host_memory, 0, 8192)


class TestDirtyPages:
    def test_update_marks_page_dirty(self, engine):
        pax, platform = engine
        ctx = ExecutionContext(platform)
        pax.update("item", 3, "i_price", 1.0, ctx)
        assert pax.buffer_pool.dirty_pages == 1

    def test_evicting_dirty_page_writes_back(self, platform):
        pax = PaxEngine(platform, buffer_pool_pages=1)
        pax.create("item", item_schema())
        pax.load("item", generate_items(600))  # > 2 pages, 1 frame
        ctx = ExecutionContext(platform)
        pax.update("item", 0, "i_price", 1.0, ctx)     # page 0 dirty
        pax.update("item", 500, "i_price", 1.0, ctx)   # evicts page 0
        assert pax.buffer_pool.write_backs == 1
        assert any(label.startswith("disk-write") for label in ctx.breakdown.parts)

    def test_clean_evictions_are_free(self, platform):
        pax = PaxEngine(platform, buffer_pool_pages=1)
        pax.create("item", item_schema())
        pax.load("item", generate_items(600))
        ctx = ExecutionContext(platform)
        pax.sum("item", "i_price", ctx)  # read-only scan evicts clean pages
        assert pax.buffer_pool.write_backs == 0

    def test_flush_writes_all_dirty(self, engine):
        pax, platform = engine
        ctx = ExecutionContext(platform)
        pax.update("item", 3, "i_price", 1.0, ctx)
        pax.update("item", 400, "i_price", 1.0, ctx)
        flushed = pax.buffer_pool.flush(ctx)
        assert flushed == 2
        assert pax.buffer_pool.dirty_pages == 0
        assert ctx.counters.bytes_written >= 2 * 8192

    def test_redundant_flush_noop(self, engine):
        pax, platform = engine
        ctx = ExecutionContext(platform)
        assert pax.buffer_pool.flush(ctx) == 0
