"""L-Store tests: lineage, page dictionary, historic queries, merge."""

import numpy as np
import pytest

from repro.engines.lstore import LStoreEngine, PageDictionary
from repro.errors import TransactionError
from repro.execution import ExecutionContext


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(LStoreEngine, tail_capacity=8)


class TestLineage:
    def test_update_appends_tail_not_in_place(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        original = float(small_items["i_price"][5])
        lstore.update("item", 5, "i_price", 50.0, ctx)
        base = lstore.layouts("item")[0].fragment_for(5, "i_price")
        # The base page still holds the stale value (read-only part).
        assert base.read_field(5, "i_price") == pytest.approx(original)
        # But reads resolve to the tail through the dictionary.
        assert lstore.read_field("item", 5, "i_price", ctx) == 50.0

    def test_dictionary_hides_base_vs_tail(self, engine):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        policy = lstore.delegation_policy("item")
        assert policy.owner_of(5, "i_price") == "base"
        lstore.update("item", 5, "i_price", 50.0, ctx)
        assert policy.owner_of(5, "i_price") == "tail"

    def test_tail_overflow_opens_new_fragment(self, engine):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        for i in range(20):  # > tail_capacity of 8
            lstore.update("item", i, "i_price", float(i), ctx)
        tails = lstore._tails["item"]["i_price"]
        assert len(tails) == 3
        assert lstore.read_field("item", 19, "i_price", ctx) == 19.0

    def test_out_of_range_update(self, engine):
        lstore, platform = engine
        with pytest.raises(TransactionError):
            lstore.update("item", 10**6, "i_price", 1.0, ExecutionContext(platform))

    def test_tail_dereference_costs_extra(self, engine):
        """The paper: tail dereferencing 'might cause additional cache
        misses in direct comparison to records formatted using plain NSM'."""
        lstore, platform = engine
        ctx_base = ExecutionContext(platform)
        ctx_tail = ExecutionContext(platform)
        lstore.read_field("item", 7, "i_price", ctx_base)
        lstore.update("item", 8, "i_price", 1.0, ExecutionContext(platform))
        lstore.read_field("item", 8, "i_price", ctx_tail)
        assert ctx_tail.cycles > ctx_base.cycles


class TestHistory:
    def test_full_lineage(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        original = float(small_items["i_price"][3])
        lstore.update("item", 3, "i_price", 10.0, ctx)
        lstore.update("item", 3, "i_price", 20.0, ctx)
        history = lstore.read_history("item", 3, "i_price", ctx)
        assert history[0] == pytest.approx(original)
        assert history[1:] == [10.0, 20.0]

    def test_history_of_untouched_cell(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        history = lstore.read_history("item", 3, "i_price", ctx)
        assert len(history) == 1


class TestScansWithTails:
    def test_sum_patches_updates(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        old = float(small_items["i_price"][9])
        lstore.update("item", 9, "i_price", 0.0, ctx)
        assert lstore.sum("item", "i_price", ctx) == pytest.approx(expected - old)

    def test_repeated_updates_use_latest(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        old = float(small_items["i_price"][9])
        for value in (1.0, 2.0, 3.0):
            lstore.update("item", 9, "i_price", value, ctx)
        assert lstore.sum("item", "i_price", ctx) == pytest.approx(expected - old + 3.0)


class TestMerge:
    def test_merge_moves_tails_into_base(self, engine):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        lstore.update("item", 5, "i_price", 50.0, ctx)
        assert lstore.reorganize("item", ctx)
        base = lstore.layouts("item")[0].fragment_for(5, "i_price")
        assert base.read_field(5, "i_price") == 50.0
        assert lstore.delegation_policy("item").updated_cells() == 0
        assert lstore._tails["item"]["i_price"] == []

    def test_merge_without_updates_is_noop(self, engine):
        lstore, platform = engine
        assert not lstore.reorganize("item", ExecutionContext(platform))

    def test_values_consistent_after_merge(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        old = float(small_items["i_price"][2])
        lstore.update("item", 2, "i_price", 7.0, ctx)
        lstore.reorganize("item", ctx)
        assert lstore.sum("item", "i_price", ctx) == pytest.approx(expected - old + 7.0)
        assert lstore.read_field("item", 2, "i_price", ctx) == 7.0

    def test_reads_cheaper_after_merge(self, engine):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        lstore.update("item", 8, "i_price", 1.0, ctx)
        before = ExecutionContext(platform)
        lstore.read_field("item", 8, "i_price", before)
        lstore.reorganize("item", ctx)
        after = ExecutionContext(platform)
        lstore.read_field("item", 8, "i_price", after)
        assert after.cycles < before.cycles


class TestPageDictionary:
    def test_lineage_order(self):
        directory = PageDictionary()
        directory.record_update(1, "a", 0)
        directory.record_update(1, "a", 5)
        assert directory.lineage(1, "a") == [0, 5]
        assert directory.resolve(1, "a") == 5

    def test_clear(self):
        directory = PageDictionary()
        directory.record_update(1, "a", 0)
        directory.clear()
        assert directory.resolve(1, "a") is None
        assert directory.updated_cells() == 0

    def test_versions_snapshot_is_copy(self):
        directory = PageDictionary()
        directory.record_update(1, "a", 0)
        snapshot = directory.versions()
        snapshot[(1, "a")].append(99)
        assert directory.lineage(1, "a") == [0]


class TestSumAtResolvesLineage:
    """Regression: sum_at must see tail versions, not stale base values
    (caught by the oracle property test)."""

    def test_sum_at_after_update(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        lstore.update("item", 0, "i_price", 0.0, ctx)
        got = lstore.sum_at("item", "i_price", [0], ctx)
        assert got == pytest.approx(0.0)

    def test_sum_at_mixes_base_and_tail(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        lstore.update("item", 3, "i_price", 10.0, ctx)
        expected = 10.0 + float(small_items["i_price"][4])
        assert lstore.sum_at("item", "i_price", [3, 4], ctx) == pytest.approx(expected)


class TestPointQueryResolvesLineage:
    """Regression: point_query must route through L-Store's dictionary
    (found by the wide-schema contract test)."""

    def test_point_query_after_update(self, engine, small_items):
        lstore, platform = engine
        ctx = ExecutionContext(platform)
        lstore.update("item", 5, "i_price", 123.0, ctx)
        row = lstore.point_query("item", 5, ctx)
        assert row[4] == pytest.approx(123.0)
