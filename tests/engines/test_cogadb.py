"""CoGaDB tests: all-or-nothing placement, HyPE routing, calibration."""

import numpy as np
import pytest

from repro.engines.cogadb import CoGaDBEngine, HypeScheduler
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import item_schema


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(CoGaDBEngine)


class TestPlacement:
    def test_place_column_replicates(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        (report,) = cogadb.place_columns("item", ("i_price",), ctx)
        assert report.placed
        assert platform.device_memory.used == 500 * 8
        # Host copy still present (replication, not migration).
        host_layout = cogadb.layouts("item")[1]
        assert all(f.space is platform.host_memory for f in host_layout.fragments)

    def test_all_or_nothing_fallback(self, small_items):
        platform = Platform.paper_testbed(device_capacity=100)
        cogadb = CoGaDBEngine(platform)
        cogadb.create("item", item_schema())
        cogadb.load("item", small_items)
        ctx = ExecutionContext(platform)
        (report,) = cogadb.place_columns("item", ("i_price",), ctx)
        assert not report.placed
        assert "fallback" in report.reason
        assert platform.device_memory.used == 0
        assert ctx.counters.bytes_transferred == 0

    def test_double_placement_noop(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        cogadb.place_columns("item", ("i_price",), ctx)
        (report,) = cogadb.place_columns("item", ("i_price",), ctx)
        assert not report.placed

    def test_unknown_column_rejected(self, engine):
        cogadb, platform = engine
        with pytest.raises(EngineError):
            cogadb.place_columns("item", ("ghost",), ExecutionContext(platform))


class TestHype:
    def test_prediction_prefers_gpu_when_resident(self, platform):
        scheduler = HypeScheduler(platform)
        assert scheduler.choose_sum_device(5_000_000, 8, on_device=True) == "gpu"

    def test_prediction_prefers_cpu_when_transfer_needed(self, platform):
        scheduler = HypeScheduler(platform)
        assert scheduler.choose_sum_device(5_000_000, 8, on_device=False) == "cpu"

    def test_prediction_prefers_cpu_for_tiny_inputs(self, platform):
        scheduler = HypeScheduler(platform)
        assert scheduler.choose_sum_device(100, 8, on_device=True) == "cpu"

    def test_calibration_learns_ratio(self, platform):
        scheduler = HypeScheduler(platform)
        for __ in range(40):
            scheduler.observe("cpu", raw_predicted=100.0, observed=200.0)
        assert scheduler.cpu_calibration == pytest.approx(2.0, rel=0.05)

    def test_calibration_flips_decision(self, platform):
        scheduler = HypeScheduler(platform)
        count = 2_000_000
        baseline = scheduler.choose_sum_device(count, 8, on_device=True)
        assert baseline == "gpu"
        # The GPU turns out 100x slower than modeled; HyPE adapts.
        raw = scheduler.raw_predict_sum(count, 8, True)[1]
        for __ in range(60):
            scheduler.observe("gpu", raw, raw * 100)
        assert scheduler.choose_sum_device(count, 8, on_device=True) == "cpu"

    def test_bad_observations_rejected(self, platform):
        scheduler = HypeScheduler(platform)
        with pytest.raises(EngineError):
            scheduler.observe("cpu", 0.0, 10.0)
        with pytest.raises(EngineError):
            scheduler.observe("tpu", 1.0, 1.0)


class TestRoutedQueries:
    def test_sum_correct_via_either_device(self, engine, small_items):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        assert cogadb.sum("item", "i_price", ctx) == pytest.approx(expected)
        cogadb.place_columns("item", ("i_price",), ctx)
        assert cogadb.sum("item", "i_price", ctx) == pytest.approx(expected)

    def test_decisions_recorded(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        cogadb.sum("item", "i_price", ctx)
        assert cogadb.scheduler.decisions

    def test_update_keeps_replica_coherent(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        cogadb.place_columns("item", ("i_price",), ctx)
        cogadb.update("item", 3, "i_price", 42.0, ctx)
        mixed = cogadb.layouts("item")[0]
        replica = mixed.fragments_for_attribute("i_price")[0]
        assert replica.space is platform.device_memory
        assert replica.read_field(3, "i_price") == 42.0


class TestPipelineRouting:
    """HyPE over the fused-operator feature set (repro.fusion.costs)."""

    ROWS = 200_000

    @staticmethod
    def _loaded(platform):
        from repro.workload import generate_items

        engine = CoGaDBEngine(platform)
        engine.create("item", item_schema())
        columns = generate_items(TestPipelineRouting.ROWS)
        engine.load("item", columns)
        return engine, columns

    @staticmethod
    def _pipeline(threshold=5_000, hint=0.5):
        from repro import Pipeline

        return (
            Pipeline.scan("i_im_id")
            .filter(lambda values, t=threshold: values < t,
                    selectivity_hint=hint)
            .aggregate("sum", on="i_price")
        )

    def test_result_is_byte_identical_to_numpy(self, platform):
        engine, columns = self._loaded(platform)
        ctx = ExecutionContext(platform)
        got = engine.run_pipeline("item", self._pipeline(), ctx)
        mask = columns["i_im_id"] < 5_000
        assert got == float(np.sum(columns["i_price"][mask]))

    def test_route_flips_with_placement(self, platform):
        engine, __ = self._loaded(platform)
        ctx = ExecutionContext(platform)
        engine.run_pipeline("item", self._pipeline(), ctx)
        assert engine.scheduler.decisions[-1] == "fused-cpu"
        engine.place_columns("item", ("i_im_id", "i_price"), ctx)
        engine.run_pipeline("item", self._pipeline(), ExecutionContext(platform))
        assert engine.scheduler.decisions[-1] == "fused-gpu"

    def test_low_selectivity_routes_unfused(self, platform):
        # The crossover: at ~2% selectivity the unfused host chain's few
        # random point reads undercut the fused extra sequential scan.
        engine, columns = self._loaded(platform)
        ctx = ExecutionContext(platform)
        got = engine.run_pipeline(
            "item", self._pipeline(threshold=200, hint=0.02), ctx
        )
        assert engine.scheduler.decisions[-1] == "unfused-cpu"
        mask = columns["i_im_id"] < 200
        assert got == pytest.approx(float(np.sum(columns["i_price"][mask])))

    def test_prediction_accuracy_fused_host(self, platform):
        # The fused-operator features must *predict* what the executor
        # then charges: raw prediction within 10% of the observation,
        # so the EMA calibration stays near 1 instead of papering over
        # a drifting model.
        engine, __ = self._loaded(platform)
        ctx = ExecutionContext(platform)
        engine.run_pipeline("item", self._pipeline(), ctx)
        from repro import compile_pipeline

        plan = compile_pipeline(self._pipeline())
        host_layout = engine.layouts("item")[1]
        raw = engine.scheduler.raw_predict_pipeline(plan, host_layout)
        assert raw["fused-cpu"] == pytest.approx(ctx.cycles, rel=0.10)
        assert 0.9 <= engine.scheduler.cpu_calibration <= 1.1

    def test_prediction_accuracy_fused_device_warm(self, platform):
        engine, __ = self._loaded(platform)
        setup = ExecutionContext(platform)
        engine.place_columns("item", ("i_im_id", "i_price"), setup)
        engine.run_pipeline("item", self._pipeline(), ExecutionContext(platform))
        warm = ExecutionContext(platform)
        engine.run_pipeline("item", self._pipeline(), warm)
        assert engine.scheduler.decisions[-1] == "fused-gpu"
        from repro import compile_pipeline

        plan = compile_pipeline(self._pipeline())
        # Predict over the engine's single-fragment device view: the
        # mixed layout also holds the host fallback copies, which would
        # (correctly) predict a transfer the placed route never pays.
        from repro.layout.layout import Layout

        mixed = engine.layouts("item")[0]
        view = Layout(
            "view", mixed.relation,
            [mixed.fragments_for_attribute(a)[0] for a in plan.attributes],
            allow_overlap=True, validate=False,
        )
        raw = engine.scheduler.raw_predict_pipeline(plan, view)
        assert raw["fused-gpu"] == pytest.approx(warm.cycles, rel=0.10)
        assert 0.9 <= engine.scheduler.gpu_calibration <= 1.1

    def test_gpu_fault_falls_back_to_fused_host(self, platform):
        from repro.faults.injector import SITE_KERNEL_LAUNCH, FaultInjector

        engine, columns = self._loaded(platform)
        setup = ExecutionContext(platform)
        engine.place_columns("item", ("i_im_id", "i_price"), setup)
        injector = FaultInjector(seed=13).arm(SITE_KERNEL_LAUNCH, 1.0)
        injector.install(platform)
        ctx = ExecutionContext(platform)
        got = engine.run_pipeline("item", self._pipeline(), ctx)
        mask = columns["i_im_id"] < 5_000
        assert got == float(np.sum(columns["i_price"][mask]))
        assert engine.scheduler.decisions[-2] == "fused-gpu"
        assert engine.scheduler.decisions[-1] == "cpu-fallback"
        assert injector.report.fallen_back >= 1
        assert injector.report.unaccounted == 0

    def test_empty_relation_returns_identity(self, platform):
        engine = CoGaDBEngine(platform)
        engine.create("item", item_schema())
        ctx = ExecutionContext(platform)
        assert engine.run_pipeline("item", self._pipeline(), ctx) == 0.0
        assert ctx.cycles == 0.0
