"""CoGaDB tests: all-or-nothing placement, HyPE routing, calibration."""

import numpy as np
import pytest

from repro.engines.cogadb import CoGaDBEngine, HypeScheduler
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import item_schema


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(CoGaDBEngine)


class TestPlacement:
    def test_place_column_replicates(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        (report,) = cogadb.place_columns("item", ("i_price",), ctx)
        assert report.placed
        assert platform.device_memory.used == 500 * 8
        # Host copy still present (replication, not migration).
        host_layout = cogadb.layouts("item")[1]
        assert all(f.space is platform.host_memory for f in host_layout.fragments)

    def test_all_or_nothing_fallback(self, small_items):
        platform = Platform.paper_testbed(device_capacity=100)
        cogadb = CoGaDBEngine(platform)
        cogadb.create("item", item_schema())
        cogadb.load("item", small_items)
        ctx = ExecutionContext(platform)
        (report,) = cogadb.place_columns("item", ("i_price",), ctx)
        assert not report.placed
        assert "fallback" in report.reason
        assert platform.device_memory.used == 0
        assert ctx.counters.bytes_transferred == 0

    def test_double_placement_noop(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        cogadb.place_columns("item", ("i_price",), ctx)
        (report,) = cogadb.place_columns("item", ("i_price",), ctx)
        assert not report.placed

    def test_unknown_column_rejected(self, engine):
        cogadb, platform = engine
        with pytest.raises(EngineError):
            cogadb.place_columns("item", ("ghost",), ExecutionContext(platform))


class TestHype:
    def test_prediction_prefers_gpu_when_resident(self, platform):
        scheduler = HypeScheduler(platform)
        assert scheduler.choose_sum_device(5_000_000, 8, on_device=True) == "gpu"

    def test_prediction_prefers_cpu_when_transfer_needed(self, platform):
        scheduler = HypeScheduler(platform)
        assert scheduler.choose_sum_device(5_000_000, 8, on_device=False) == "cpu"

    def test_prediction_prefers_cpu_for_tiny_inputs(self, platform):
        scheduler = HypeScheduler(platform)
        assert scheduler.choose_sum_device(100, 8, on_device=True) == "cpu"

    def test_calibration_learns_ratio(self, platform):
        scheduler = HypeScheduler(platform)
        for __ in range(40):
            scheduler.observe("cpu", raw_predicted=100.0, observed=200.0)
        assert scheduler.cpu_calibration == pytest.approx(2.0, rel=0.05)

    def test_calibration_flips_decision(self, platform):
        scheduler = HypeScheduler(platform)
        count = 2_000_000
        baseline = scheduler.choose_sum_device(count, 8, on_device=True)
        assert baseline == "gpu"
        # The GPU turns out 100x slower than modeled; HyPE adapts.
        raw = scheduler.raw_predict_sum(count, 8, True)[1]
        for __ in range(60):
            scheduler.observe("gpu", raw, raw * 100)
        assert scheduler.choose_sum_device(count, 8, on_device=True) == "cpu"

    def test_bad_observations_rejected(self, platform):
        scheduler = HypeScheduler(platform)
        with pytest.raises(EngineError):
            scheduler.observe("cpu", 0.0, 10.0)
        with pytest.raises(EngineError):
            scheduler.observe("tpu", 1.0, 1.0)


class TestRoutedQueries:
    def test_sum_correct_via_either_device(self, engine, small_items):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        assert cogadb.sum("item", "i_price", ctx) == pytest.approx(expected)
        cogadb.place_columns("item", ("i_price",), ctx)
        assert cogadb.sum("item", "i_price", ctx) == pytest.approx(expected)

    def test_decisions_recorded(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        cogadb.sum("item", "i_price", ctx)
        assert cogadb.scheduler.decisions

    def test_update_keeps_replica_coherent(self, engine):
        cogadb, platform = engine
        ctx = ExecutionContext(platform)
        cogadb.place_columns("item", ("i_price",), ctx)
        cogadb.update("item", 3, "i_price", 42.0, ctx)
        mixed = cogadb.layouts("item")[0]
        replica = mixed.fragments_for_attribute("i_price")[0]
        assert replica.space is platform.device_memory
        assert replica.read_field(3, "i_price") == 42.0
