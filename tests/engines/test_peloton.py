"""Peloton tests: tiles, layout transparency, FSM adaptation."""

import numpy as np
import pytest

from repro.engines.peloton import PelotonEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.layout.linearization import LinearizationKind
from repro.workload import item_schema


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(PelotonEngine, tile_group_rows=128)


class TestTiles:
    def test_tile_groups_are_horizontal(self, engine):
        peloton, __ = engine
        physical = peloton.layouts("item")[0]
        starts = sorted({f.region.rows.start for f in physical.fragments})
        assert starts == [0, 128, 256, 384]

    def test_new_groups_start_nsm(self, engine):
        peloton, __ = engine
        for tile in peloton.layouts("item")[0].fragments:
            assert tile.linearization is LinearizationKind.NSM

    def test_vertical_tile_specs(self, loaded_item_engine_factory):
        engine, __ = loaded_item_engine_factory(
            PelotonEngine,
            tile_group_rows=128,
            tile_specs=[
                (("i_id", "i_im_id"), LinearizationKind.NSM),
                (("i_name", "i_data", "i_price"), LinearizationKind.DSM),
            ],
        )
        physical = engine.layouts("item")[0]
        assert physical.combines_partitionings
        kinds = {t.linearization for t in physical.fragments}
        assert kinds == {LinearizationKind.NSM, LinearizationKind.DSM}

    def test_bad_specs_rejected(self, platform, small_items):
        engine = PelotonEngine(
            platform, tile_specs=[(("i_id",), LinearizationKind.NSM)]
        )
        engine.create("item", item_schema())
        with pytest.raises(EngineError):
            engine.load("item", small_items)


class TestLayoutTransparency:
    def test_logical_tiles_reference_physical(self, engine):
        peloton, __ = engine
        catalog = peloton.delegation_policy("item")
        for tile in catalog.tiles():
            physical = catalog.physical_for(tile)
            assert set(tile.attributes) <= set(physical.region.attributes)

    def test_owner_of_resolves(self, engine):
        peloton, __ = engine
        catalog = peloton.delegation_policy("item")
        assert "g1" in catalog.owner_of(200, "i_price")

    def test_owner_of_unknown_cell(self, engine):
        peloton, __ = engine
        with pytest.raises(EngineError):
            peloton.delegation_policy("item").owner_of(10**6, "i_price")


class TestInsert:
    def test_insert_appends(self, engine):
        peloton, platform = engine
        ctx = ExecutionContext(platform)
        position = peloton.insert("item", (500, 1, "AA", "B", 3.0), ctx)
        assert position == 500
        assert peloton.materialize("item", [500], ctx)[0][4] == 3.0

    def test_insert_opens_tile_group(self, engine):
        peloton, platform = engine
        ctx = ExecutionContext(platform)
        physical = peloton.layouts("item")[0]
        before = len(physical)
        for i in range(130):
            peloton.insert("item", (500 + i, 1, "AA", "B", 1.0), ctx)
        assert len(physical) > before
        physical.validate()


class TestFSMAdaptation:
    def test_analytical_workload_reformats_cold_groups_to_dsm(self, engine):
        peloton, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(20):
            peloton.sum("item", "i_price", ctx)
        assert peloton.reorganize("item", ctx)
        physical = peloton.layouts("item")[0]
        tiles = sorted(physical.fragments, key=lambda f: f.region.rows.start)
        assert all(t.linearization is LinearizationKind.DSM for t in tiles[:-1])
        # The hot tail group stays write-optimized.
        assert tiles[-1].linearization is LinearizationKind.NSM

    def test_transactional_workload_keeps_nsm(self, engine):
        peloton, platform = engine
        ctx = ExecutionContext(platform)
        for position in range(0, 400, 5):
            peloton.materialize("item", [position], ctx)
        assert not peloton.reorganize("item", ctx)  # already NSM everywhere

    def test_values_survive_reformat(self, engine, small_items):
        peloton, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(20):
            peloton.sum("item", "i_price", ctx)
        expected = float(np.sum(small_items["i_price"]))
        peloton.reorganize("item", ctx)
        assert peloton.sum("item", "i_price", ctx) == pytest.approx(expected)
        assert peloton.materialize("item", [10, 300], ctx)[1][0] == 300

    def test_scans_cheaper_after_reformat(self, engine):
        peloton, platform = engine
        warm = ExecutionContext(platform)
        for __ in range(20):
            peloton.sum("item", "i_price", warm)
        before = ExecutionContext(platform)
        peloton.sum("item", "i_price", before)
        peloton.reorganize("item", ExecutionContext(platform))
        after = ExecutionContext(platform)
        peloton.sum("item", "i_price", after)
        assert after.cycles < before.cycles

    def test_catalog_rebound_after_reformat(self, engine):
        peloton, platform = engine
        ctx = ExecutionContext(platform)
        for __ in range(20):
            peloton.sum("item", "i_price", ctx)
        peloton.reorganize("item", ctx)
        catalog = peloton.delegation_policy("item")
        owner = catalog.owner_of(0, "i_price")
        assert "dsm" in owner


class TestHotGroupsParameter:
    def test_multiple_hot_groups_stay_nsm(self, loaded_item_engine_factory):
        engine, platform = loaded_item_engine_factory(
            PelotonEngine, tile_group_rows=128, hot_groups=2
        )
        ctx = ExecutionContext(platform)
        for __ in range(20):
            engine.sum("item", "i_price", ctx)
        engine.reorganize("item", ctx)
        tiles = sorted(
            engine.layouts("item")[0].fragments,
            key=lambda f: f.region.rows.start,
        )
        assert [t.linearization for t in tiles] == [
            LinearizationKind.DSM,
            LinearizationKind.DSM,
            LinearizationKind.NSM,
            LinearizationKind.NSM,
        ]
