"""Lint: fragment-payload PCIe charges must route through the scheduler.

``InterconnectModel.transfer_cost`` remains the primitive the scheduler
prices with, but no module outside ``repro/staging/`` may call it
directly for fragment payloads — a direct call would bypass coalescing,
the staging cache's hit accounting, and the ``pcie_bytes`` /
``transfers`` tallies.  (``cluster.network`` in the distributed layer
is a different link with its own model and is not matched here.)
"""

import re
from pathlib import Path

import repro

PATTERN = re.compile(r"\binterconnect\.transfer_cost\s*\(")

#: Modules allowed to touch the primitive: the scheduler itself (and
#: its benchmark CLI, which reconstructs the legacy charge sequence for
#: the byte-identity check) and the model's own definition site.
ALLOWED = ("repro/staging/", "repro/hardware/interconnect.py")


def test_no_direct_transfer_cost_calls_outside_staging():
    src_root = Path(repro.__file__).resolve().parent
    offenders = []
    for path in sorted(src_root.rglob("*.py")):
        relative = path.relative_to(src_root.parent).as_posix()
        if any(relative.startswith(allowed) for allowed in ALLOWED):
            continue
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if PATTERN.search(line):
                offenders.append(f"{relative}:{number}: {line.strip()}")
    assert not offenders, (
        "fragment transfers must go through repro.staging.TransferScheduler; "
        "direct interconnect.transfer_cost calls found:\n" + "\n".join(offenders)
    )
