"""TransferScheduler properties: coalescing, overlap bounds, byte-identity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.device import device_sum_column
from repro.hardware import Platform
from repro.hardware.event import PerfCounters
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64
from repro.model.relation import Relation
from repro.model.schema import Schema

SIZES = st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=8)
CHUNK_PAIRS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
)


class TestCoalescing:
    @given(sizes=SIZES)
    def test_burst_equals_one_transfer_of_the_sum(self, sizes):
        # The coalescing identity, compared exactly: a burst charges the
        # same float the historical single transfer of the summed
        # payload charged.
        platform = Platform.paper_testbed()
        scheduler = platform.staging.scheduler
        assert scheduler.burst(sizes) == platform.interconnect.transfer_cost(
            sum(sizes)
        )

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=10**8), min_size=2, max_size=8
        )
    )
    def test_burst_of_n_pays_one_latency(self, sizes):
        # N coalesced transfers: N bandwidth terms, ONE link latency —
        # versus N latencies for N separate transfers.
        platform = Platform.paper_testbed()
        interconnect = platform.interconnect
        scheduler = platform.staging.scheduler
        burst = scheduler.burst(sizes)
        latency_cycles = interconnect.latency_s * interconnect.host_frequency_hz
        bandwidth_cycles = (
            sum(sizes) / interconnect.bandwidth * interconnect.host_frequency_hz
        )
        assert burst == pytest.approx(latency_cycles + bandwidth_cycles)
        singles = sum(interconnect.transfer_cost(size) for size in sizes)
        assert burst == pytest.approx(
            singles - (len(sizes) - 1) * latency_cycles
        )

    def test_accounted_transfer_is_dropin_for_legacy_call(self):
        platform = Platform.paper_testbed()
        legacy, staged = PerfCounters(), PerfCounters()
        expected = platform.interconnect.transfer_cost(4096, legacy)
        actual = platform.staging.scheduler.transfer(4096, staged)
        assert actual == expected
        assert staged.cycles == legacy.cycles
        assert staged.bytes_transferred == legacy.bytes_transferred == 4096
        assert staged.pcie_bytes == 4096
        assert staged.transfers == 1

    def test_zero_byte_burst_charges_nothing(self):
        platform = Platform.paper_testbed()
        counters = PerfCounters()
        assert platform.staging.scheduler.burst((0, 0), counters) == 0.0
        assert counters.cycles == 0.0
        assert counters.transfers == 0

    def test_negative_size_rejected(self):
        platform = Platform.paper_testbed()
        with pytest.raises(ExecutionError):
            platform.staging.scheduler.burst((8, -1))


class TestPipeline:
    @given(pairs=CHUNK_PAIRS)
    def test_pipelined_total_is_bounded(self, pairs):
        # Double buffering can hide transfer behind compute but never
        # beat either stream running alone, and never lose to serial.
        platform = Platform.paper_testbed()
        transfers = [pair[0] for pair in pairs]
        computes = [pair[1] for pair in pairs]
        total, savings = platform.staging.scheduler.pipeline_cost(
            transfers, computes
        )
        lower = max(sum(transfers), sum(computes))
        serial = sum(transfers) + sum(computes)
        assert total >= lower or total == pytest.approx(lower)
        assert total <= serial or total == pytest.approx(serial)
        assert savings == pytest.approx(serial - total)

    def test_single_chunk_cannot_overlap(self):
        platform = Platform.paper_testbed()
        total, savings = platform.staging.scheduler.pipeline_cost([10.0], [4.0])
        assert total == 14.0
        assert savings == 0.0

    def test_empty_pipeline(self):
        platform = Platform.paper_testbed()
        assert platform.staging.scheduler.pipeline_cost([], []) == (0.0, 0.0)

    def test_mismatched_chunk_lists_rejected(self):
        platform = Platform.paper_testbed()
        with pytest.raises(ExecutionError):
            platform.staging.scheduler.pipeline_cost([1.0, 2.0], [1.0])


class TestColdByteIdentity:
    def test_cold_device_sum_matches_legacy_charge_sequence(self):
        # A cold staging cache must reproduce the pre-cache costs float
        # for float: one column transfer, the two-pass reduction, one
        # result copy — compared with ==, not a tolerance.
        platform = Platform.paper_testbed()
        rows = 10_000
        relation = Relation("prices", Schema.of(("price", FLOAT64)), rows)
        fragment = Fragment(
            Region.full(relation), relation.schema, None, platform.host_memory
        )
        fragment.append_columns({"price": np.arange(rows, dtype=np.float64)})
        ctx = ExecutionContext(platform)
        device_sum_column(
            Layout("c", relation, [fragment]), "price", ctx, charge_transfer=True
        )
        legacy = PerfCounters()
        platform.interconnect.transfer_cost(rows * 8, legacy)
        platform.gpu.reduction_cost(rows, 8, legacy)
        platform.interconnect.transfer_cost(8, legacy)
        assert ctx.counters.cycles == legacy.cycles
        assert ctx.counters.bytes_transferred == legacy.bytes_transferred


class TestOverlappedStaging:
    def test_chunked_staging_overlaps_when_enabled(self):
        rows = 1000
        relation = Relation("prices", Schema.of(("price", FLOAT64)), rows)

        def run(overlap):
            # Free device memory holds a quarter of the column: 4 chunks.
            platform = Platform.paper_testbed(device_capacity=2000)
            platform.staging.overlap = overlap
            fragment = Fragment(
                Region.full(relation), relation.schema, None, platform.host_memory
            )
            fragment.append_columns({"price": np.arange(rows, dtype=np.float64)})
            ctx = ExecutionContext(platform)
            total = device_sum_column(
                Layout("c", relation, [fragment]), "price", ctx
            )
            assert total == pytest.approx(float(np.sum(np.arange(rows))))
            return ctx

        serial = run(False)
        overlapped = run(True)
        assert serial.counters.overlapped_cycles == 0.0
        assert overlapped.counters.overlapped_cycles > 0.0
        # Same traffic either way; the pipeline only reshapes the time.
        assert (
            overlapped.counters.pcie_bytes
            == serial.counters.pcie_bytes
            == rows * 8 + 8
        )
        assert overlapped.counters.kernel_launches == serial.counters.kernel_launches
