"""Stale-read regressions: every write path must invalidate staged replicas.

One test per trigger the staging layer hooks:

* ``update_field`` — a point write to a staged column;
* ``reorganize_layout`` — a layout swap frees the source fragments;
* ``RecoveryManager.recover`` — replicas staged before the crash carry
  pre-crash state (loser writes included) and must not survive it.

Each test would return a *wrong answer* (or leak device memory held by
replicas of dead fragments) if the corresponding hook were removed.
"""

import numpy as np
import pytest

from repro.adapt.advisor import GroupProposal, LayoutProposal
from repro.adapt.reorganizer import reorganize_layout
from repro.execution.context import ExecutionContext
from repro.execution.device import device_sum_column
from repro.execution.operators import update_field
from repro.hardware import Platform
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64
from repro.model.relation import Relation
from repro.model.schema import Schema
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.manager import RecoveryManager
from repro.recovery.wal import WriteAheadLog
from repro.workload.tpcc import generate_items, item_schema

ROWS = 200


@pytest.fixture
def relation():
    return Relation("prices", Schema.of(("price", FLOAT64)), ROWS)


def price_store(relation, platform):
    fragment = Fragment(
        Region.full(relation), relation.schema, None, platform.host_memory
    )
    fragment.append_columns({"price": np.arange(ROWS, dtype=np.float64)})
    return Layout("c", relation, [fragment])


class TestUpdateFieldTrigger:
    def test_device_sum_sees_the_write(self, relation, platform, ctx):
        store = price_store(relation, platform)
        before = device_sum_column(store, "price", ctx)
        assert before == pytest.approx(float(np.sum(np.arange(ROWS))))
        update_field(store, 7, "price", 10_000.0, ctx)
        after = device_sum_column(store, "price", ctx)
        # A stale replica would reproduce the pre-write sum exactly.
        assert after == pytest.approx(before - 7.0 + 10_000.0)

    def test_write_drops_only_the_touched_replica(self, relation, platform, ctx):
        store = price_store(relation, platform)
        other_relation = Relation("costs", Schema.of(("price", FLOAT64)), ROWS)
        other = price_store(other_relation, platform)
        device_sum_column(store, "price", ctx)
        device_sum_column(other, "price", ctx)
        assert len(platform.staging.cache) == 2
        update_field(store, 0, "price", 1.0, ctx)
        assert len(platform.staging.cache) == 1
        warm = ExecutionContext(platform)
        device_sum_column(other, "price", warm)
        assert warm.counters.staging_hits == 1


class TestReorganizerTrigger:
    def test_layout_swap_drops_replicas_of_freed_fragments(self, platform, ctx):
        columns = generate_items(ROWS)
        schema = item_schema()
        relation = Relation("item", schema, ROWS)
        fragments = []
        for name in schema.names:
            fragment = Fragment(
                Region(relation.rows, (name,)), schema, None, platform.host_memory
            )
            fragment.append_columns({name: columns[name]})
            fragments.append(fragment)
        layout = Layout("item", relation, fragments)
        expected = float(np.sum(columns["i_price"]))
        assert device_sum_column(layout, "i_price", ctx) == pytest.approx(expected)
        assert len(platform.staging.cache) == 1

        proposal = LayoutProposal(
            (GroupProposal(schema.names, LinearizationKind.NSM),), 0.0
        )
        reorganize_layout(layout, proposal, platform.host_memory, ctx)
        # Replicas of the freed fragments are gone; no device leak.
        assert len(platform.staging.cache) == 0
        assert platform.device_memory.used == 0
        assert device_sum_column(layout, "i_price", ctx) == pytest.approx(expected)


class TestRecoveryTrigger:
    def test_recovery_purges_pre_crash_replicas(self, platform):
        from repro.engines.h2o import H2OEngine

        def build_engine():
            engine = H2OEngine(platform)
            engine.create("item", item_schema())
            return engine

        columns = generate_items(ROWS)
        engine = build_engine()
        engine.load("item", {n: c.copy() for n, c in columns.items()})
        wal = WriteAheadLog(platform, group_commit=1)
        store = CheckpointStore(platform)
        ctx = ExecutionContext(platform)
        store.take(engine, "item", wal, ctx)

        # A committed write, then a loser whose COMMIT never lands.
        wal.log_begin(1, ctx)
        before = engine.sum_at("item", "i_price", [3], ctx)
        wal.log_update(1, "item", "i_price", 3, before, 101.0, ctx)
        engine.update("item", 3, "i_price", 101.0, ctx)
        wal.log_commit(1, ctx)
        wal.log_begin(2, ctx)
        before = engine.sum_at("item", "i_price", [7], ctx)
        wal.log_update(2, "item", "i_price", 7, before, -1.0, ctx)
        engine.update("item", 7, "i_price", -1.0, ctx)
        wal.flush(ctx)

        # Stage a replica off the pre-crash layout: it now carries the
        # loser's write, which recovery is about to roll back.
        layout = engine.layouts("item")[0]
        device_sum_column(layout, "i_price", ctx)
        assert len(platform.staging.cache) >= 1
        invalidations = platform.staging.cache.invalidations
        wal.crash()

        recovered, _ = RecoveryManager(wal, store).recover(
            build_engine, "item", ExecutionContext(platform)
        )
        assert platform.staging.cache.invalidations > invalidations
        assert len(platform.staging.cache) == 0
        # All replica device memory went with them.
        assert platform.staging.cache.resident_bytes == 0
        probe = ExecutionContext(platform)
        expected = float(np.sum(columns["i_price"])) - float(
            columns["i_price"][3]
        ) + 101.0
        total = device_sum_column(
            recovered.layouts("item")[0], "i_price", probe
        )
        assert total == pytest.approx(expected)
