"""StagingCache unit tests: LRU policy, freshness, device-memory hygiene."""

import numpy as np
import pytest

from repro.execution.context import ExecutionContext
from repro.execution.device import device_sum_column
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def relation():
    return Relation("prices", Schema.of(("price", FLOAT64)), 100)


def host_column(relation, platform, values, label="col"):
    fragment = Fragment(
        Region.full(relation), relation.schema, None, platform.host_memory,
        label=label,
    )
    fragment.append_columns({"price": values})
    return fragment


def stage(platform, fragment, ctx):
    """Stage one fragment's column through the manager; return the entry."""
    entries = platform.staging.acquire([fragment], "price", 8, ctx)
    assert entries is not None and len(entries) == 1
    return entries[0]


class TestLookup:
    def test_miss_then_hit(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(100))
        staging = platform.staging
        assert staging.lookup(fragment, "price", ctx.counters) is None
        stage(platform, fragment, ctx)
        entry = staging.lookup(fragment, "price", ctx.counters)
        assert entry is not None
        assert entry.source is fragment
        assert ctx.counters.staging_misses == 1
        assert ctx.counters.staging_hits == 1

    def test_peek_is_stat_free(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(100))
        stage(platform, fragment, ctx)
        cache = platform.staging.cache
        hits, misses = cache.hits, cache.misses
        assert platform.staging.is_staged(fragment, "price")
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_stale_version_dropped_and_freed(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(100))
        stage(platform, fragment, ctx)
        used = platform.device_memory.used
        fragment.update_field(0, "price", 5.0)  # bumps fragment.version
        assert platform.staging.lookup(fragment, "price", ctx.counters) is None
        assert platform.device_memory.used == used - 800

    def test_insert_replaces_existing_entry(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(100))
        stage(platform, fragment, ctx)
        fragment.update_field(0, "price", 5.0)
        stage(platform, fragment, ctx)  # re-stage after the write
        cache = platform.staging.cache
        assert len(cache) == 1
        assert cache.resident_bytes == 800
        entry = cache.peek(fragment, "price")
        assert entry is not None and entry.values[0] == 5.0


class TestEviction:
    def test_lru_order(self, relation, platform, ctx):
        fragments = [
            host_column(relation, platform, np.full(100, i), label=f"c{i}")
            for i in range(3)
        ]
        for fragment in fragments:
            stage(platform, fragment, ctx)
        cache = platform.staging.cache
        # Touch c0 so c1 becomes the LRU entry.
        assert platform.staging.lookup(fragments[0], "price", ctx.counters)
        evicted = cache.evict_lru()
        assert evicted.source is fragments[1]
        assert cache.peek(fragments[0], "price") is not None
        assert cache.peek(fragments[2], "price") is not None

    def test_capacity_pressure_evicts_lru(self, relation, platform, ctx):
        platform.staging.capacity_bytes = 1600  # room for two columns
        fragments = [
            host_column(relation, platform, np.full(100, i), label=f"c{i}")
            for i in range(3)
        ]
        for fragment in fragments:
            stage(platform, fragment, ctx)
        cache = platform.staging.cache
        assert len(cache) == 2
        assert cache.resident_bytes == 1600
        assert cache.peek(fragments[0], "price") is None  # the LRU victim
        assert platform.device_memory.used == 1600

    def test_acquire_gives_up_on_oversized_column(self, relation, platform, ctx):
        from repro.hardware import Platform

        platform = Platform.paper_testbed(device_capacity=100)
        ctx = ExecutionContext(platform)
        fragment = host_column(relation, platform, np.ones(100))
        assert platform.staging.acquire([fragment], "price", 8, ctx) is None
        assert len(platform.staging.cache) == 0
        assert platform.device_memory.used == 0


class TestInvalidation:
    def test_invalidate_fragment_frees_device_memory(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(100))
        other = host_column(relation, platform, np.ones(100), label="other")
        stage(platform, fragment, ctx)
        stage(platform, other, ctx)
        dropped = platform.staging.invalidate_fragment(fragment)
        assert dropped == 1
        cache = platform.staging.cache
        assert cache.peek(fragment, "price") is None
        assert cache.peek(other, "price") is not None
        assert platform.device_memory.used == 800

    def test_invalidate_all(self, relation, platform, ctx):
        for i in range(2):
            stage(platform, host_column(relation, platform, np.ones(100)), ctx)
        assert platform.staging.invalidate_all() == 2
        assert len(platform.staging.cache) == 0
        assert platform.device_memory.used == 0

    def test_stats_snapshot(self, relation, platform, ctx):
        fragment = host_column(relation, platform, np.ones(100))
        stage(platform, fragment, ctx)
        platform.staging.lookup(fragment, "price", ctx.counters)
        stats = platform.staging.stats()
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        assert stats["resident_bytes"] == 800


class TestFreshPlatformColdCache:
    def test_replace_makes_a_fresh_manager(self):
        import dataclasses

        from repro.hardware import Platform

        platform = Platform.paper_testbed()
        clone = dataclasses.replace(platform)
        assert clone.staging is not platform.staging

    def test_warm_queries_skip_pcie(self, relation, platform):
        values = np.arange(100, dtype=np.float64)
        fragment = host_column(relation, platform, values)
        layout = Layout("c", relation, [fragment])
        cold = ExecutionContext(platform)
        warm = ExecutionContext(platform)
        device_sum_column(layout, "price", cold)
        total = device_sum_column(layout, "price", warm)
        assert total == pytest.approx(float(np.sum(values)))
        assert warm.counters.staging_hits == 1
        # Only the scalar result crosses the link on the warm query.
        assert warm.counters.pcie_bytes == 8
        assert warm.cycles < cold.cycles
