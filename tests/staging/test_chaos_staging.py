"""Chaos regressions for the staging layer: faults must not corrupt state.

Pins the scheduler's fault ordering (cycles per attempt, bytes only
after survival), the acquire path's reservation rollback, and the
OOM-eviction recovery — with the resilience report balancing in every
scenario.
"""

import numpy as np
import pytest

from repro.errors import DeviceError, TransferError
from repro.execution.context import ExecutionContext
from repro.execution.device import device_sum_column
from repro.faults.injector import (
    SITE_DEVICE_ALLOC,
    SITE_PCIE_TRANSFER,
    FaultInjector,
)
from repro.faults.policy import RetryPolicy
from repro.hardware import Platform
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64
from repro.model.relation import Relation
from repro.model.schema import Schema

ROWS = 500


@pytest.fixture
def relation():
    return Relation("prices", Schema.of(("price", FLOAT64)), ROWS)


def price_store(relation, platform, label="col"):
    fragment = Fragment(
        Region.full(relation), relation.schema, None, platform.host_memory,
        label=label,
    )
    fragment.append_columns({"price": np.arange(ROWS, dtype=np.float64)})
    return Layout(label, relation, [fragment])


class TestTransferFaults:
    def test_retried_burst_never_double_counts_bytes(self, relation):
        platform = Platform.paper_testbed()
        injector = FaultInjector(seed=3).arm(
            SITE_PCIE_TRANSFER, 1.0, max_faults=1
        )
        injector.install(platform)
        store = price_store(relation, platform)
        ctx = ExecutionContext(platform)
        ctx.retry = RetryPolicy(max_attempts=4, report=injector.report)

        total = device_sum_column(store, "price", ctx)
        assert total == pytest.approx(float(np.sum(np.arange(ROWS))))
        # The staged payload crossed once, the result scalar once — the
        # failed first attempt burned cycles but moved no counted bytes.
        assert ctx.counters.pcie_bytes == ROWS * 8 + 8
        assert ctx.counters.bytes_transferred == ROWS * 8 + 8
        assert ctx.counters.transfers == 2
        assert ctx.counters.fault_retries == 1
        # A clean run of the same query is strictly cheaper: the retry's
        # wasted wire time and backoff are real cycles.
        clean = ExecutionContext(Platform.paper_testbed())
        device_sum_column(
            price_store(relation, clean.platform), "price", clean
        )
        assert ctx.cycles > clean.cycles
        # Residency is intact and the accounting balances.
        assert len(platform.staging.cache) == 1
        assert platform.staging.cache.resident_bytes == ROWS * 8
        report = injector.report
        assert report.injected == 1
        assert report.injected == (
            report.retried
            + report.fallen_back
            + report.recovered
            + report.surfaced
        )

    def test_surfaced_burst_leaves_residency_uncorrupted(self, relation):
        platform = Platform.paper_testbed()
        FaultInjector(seed=5).arm(SITE_PCIE_TRANSFER, 1.0).install(platform)
        store = price_store(relation, platform)
        ctx = ExecutionContext(platform)  # no retry policy: first fault surfaces
        with pytest.raises(TransferError):
            device_sum_column(store, "price", ctx)
        # The reserved replica slots were rolled back: no leaked device
        # memory, no half-staged entries, no phantom byte counts.
        assert platform.device_memory.used == 0
        assert len(platform.staging.cache) == 0
        assert ctx.counters.pcie_bytes == 0
        assert ctx.counters.transfers == 0
        assert ctx.counters.bytes_transferred == 0
        assert ctx.counters.cycles > 0  # the wire time was still burned


class TestDeviceOomFaults:
    def test_oom_evicts_lru_replica_and_recovers(self, relation):
        platform = Platform.paper_testbed()
        injector = FaultInjector(seed=1)
        injector.install(platform)
        other_relation = Relation("costs", Schema.of(("price", FLOAT64)), ROWS)
        first = price_store(relation, platform, label="first")
        second = price_store(other_relation, platform, label="second")
        warmup = ExecutionContext(platform)
        device_sum_column(first, "price", warmup)
        assert len(platform.staging.cache) == 1

        injector.arm(SITE_DEVICE_ALLOC, 1.0, max_faults=1)
        ctx = ExecutionContext(platform)
        total = device_sum_column(second, "price", ctx)
        assert total == pytest.approx(float(np.sum(np.arange(ROWS))))
        # The injected OOM was absorbed by discarding the LRU replica.
        assert ctx.counters.fault_recoveries == 1
        report = injector.report
        assert report.injected == 1 == report.recovered
        assert report.injected == (
            report.retried
            + report.fallen_back
            + report.recovered
            + report.surfaced
        )
        cache = platform.staging.cache
        assert len(cache) == 1
        assert cache.peek(first.fragments[0], "price") is None
        assert cache.peek(second.fragments[0], "price") is not None

    def test_oom_with_cold_cache_surfaces(self, relation):
        platform = Platform.paper_testbed()
        FaultInjector(seed=2).arm(SITE_DEVICE_ALLOC, 1.0).install(platform)
        store = price_store(relation, platform)
        with pytest.raises(DeviceError):
            device_sum_column(store, "price", ExecutionContext(platform))
        assert platform.device_memory.used == 0
        assert len(platform.staging.cache) == 0
