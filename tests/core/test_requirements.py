"""E8: the requirements gap — no surveyed engine passes, Reference does."""

import pytest

from repro.core.classification import classify
from repro.core.requirements import (
    REFERENCE_REQUIREMENTS,
    check_requirements,
    satisfies_all,
)
from repro.core.survey import run_survey


@pytest.fixture(scope="module")
def survey():
    return run_survey(row_count=600)


def test_six_requirements_defined():
    numbers = [requirement.number for requirement in REFERENCE_REQUIREMENTS]
    assert numbers == [1, 2, 3, 4, 5, 6]


def test_no_surveyed_engine_satisfies_all(survey):
    """The paper's 'resolute: not yet'."""
    for result in survey:
        assert not satisfies_all(result.derived), (
            f"{result.engine} unexpectedly satisfies all six requirements"
        )


def test_every_requirement_is_satisfiable_by_someone(survey):
    """Each requirement individually is met by at least one engine —
    the gap is the *conjunction*, exactly the paper's argument that the
    two research lines have complementary pieces."""
    for requirement in REFERENCE_REQUIREMENTS:
        holders = [
            result.engine
            for result in survey
            if requirement.check(result.derived)
        ]
        assert holders, f"requirement {requirement.number} held by nobody"


def test_reference_engine_satisfies_all():
    from repro.core.reference_engine import ReferenceEngine
    from repro.execution import ExecutionContext
    from repro.hardware import Platform
    from repro.workload import generate_items, item_schema

    platform = Platform.paper_testbed()
    engine = ReferenceEngine(platform, delta_tile_rows=64)
    engine.create("item", item_schema())
    engine.load("item", generate_items(600))
    ctx = ExecutionContext(platform)
    for i in range(5):
        engine.insert("item", (600 + i, 1, "AA", "B", 1.0), ctx)
    classification = classify(engine, "item")
    verdicts = check_requirements(classification)
    assert all(verdicts.values()), verdicts


def test_peloton_is_the_closest_surviving_engine(survey):
    """Peloton misses only the GPU-side requirement (3) — the paper's
    narrative that HTAP research lacks exactly the device dimension."""
    peloton = next(r for r in survey if r.engine == "Peloton")
    verdicts = check_requirements(peloton.derived)
    assert verdicts == {1: True, 2: True, 3: False, 4: True, 5: True, 6: True}


def test_gpu_engines_miss_the_htap_side(survey):
    """Conversely, the GPU systems miss the HTAP storage machinery."""
    for name in ("GPUTx", "CoGaDB"):
        result = next(r for r in survey if r.engine == name)
        verdicts = check_requirements(result.derived)
        assert not verdicts[1]  # no strong flexibility
        assert not verdicts[2]  # not responsive
