"""Figure 1's continuous optimization loop."""

import pytest

from repro.core import ContinuousOptimizer
from repro.engines import HyriseEngine, PaxEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema


@pytest.fixture
def hyrise():
    platform = Platform.paper_testbed()
    engine = HyriseEngine(platform)
    engine.create("item", item_schema())
    engine.load("item", generate_items(400))
    return engine, platform


class TestContinuousOptimizer:
    def test_fires_after_period(self, hyrise):
        engine, platform = hyrise
        optimizer = ContinuousOptimizer(engine, "item", period=10)
        ctx = ExecutionContext(platform)
        changed = []
        for __ in range(25):
            engine.sum("item", "i_price", ctx)
            changed.append(optimizer.tick(ctx))
        # Fired at query 10 (re-cut to columns) and evaluated again at
        # 20 (already optimal -> no change).
        assert changed[9] is True
        assert optimizer.reorganizations == 1
        layout = engine.layouts("item")[0]
        assert layout.fragment_for(0, "i_price").region.is_column

    def test_idle_ticks_are_free(self, hyrise):
        engine, platform = hyrise
        optimizer = ContinuousOptimizer(engine, "item", period=100)
        ctx = ExecutionContext(platform)
        engine.sum("item", "i_price", ctx)
        cycles_before = ctx.cycles
        assert not optimizer.tick(ctx)
        assert ctx.cycles == cycles_before

    def test_follows_workload_drift(self, hyrise):
        engine, platform = hyrise
        optimizer = ContinuousOptimizer(engine, "item", period=20)
        ctx = ExecutionContext(platform)
        for __ in range(20):
            engine.sum("item", "i_price", ctx)
        assert optimizer.tick(ctx)
        engine.managed("item").trace.clear()
        for position in range(0, 200, 5):
            engine.materialize("item", [position], ctx)
        assert optimizer.tick(ctx)  # back to the wide NSM container
        assert optimizer.reorganizations == 2
        wide = engine.layouts("item")[0].fragment_for(0, "i_price")
        assert wide.region.arity == 5

    def test_static_engine_rejected(self):
        platform = Platform.paper_testbed()
        engine = PaxEngine(platform)
        engine.create("item", item_schema())
        engine.load("item", generate_items(100))
        with pytest.raises(EngineError):
            ContinuousOptimizer(engine, "item")

    def test_invalid_period(self, hyrise):
        engine, __ = hyrise
        with pytest.raises(EngineError):
            ContinuousOptimizer(engine, "item", period=0)
