"""E5: the survey's derived classifications must equal the paper's Table 1.

This is the reproduction's central theorem: ten mini-engines built from
mechanisms, classified by derivation, agreeing cell-for-cell with the
published table.
"""

import pytest

from repro.core.classification import check_capability_consistency
from repro.core.survey import PAPER_TABLE_1, build_reference_instances, run_survey


@pytest.fixture(scope="module")
def survey():
    return run_survey(row_count=600)


def test_all_ten_engines_surveyed(survey):
    assert {result.engine for result in survey} == set(PAPER_TABLE_1)


def test_every_row_matches_paper(survey):
    failures = [
        f"{result.engine}: {'; '.join(result.mismatches)}"
        for result in survey
        if not result.matches
    ]
    assert not failures, "\n".join(failures)


def test_paper_ordering_by_date(survey):
    years = [result.derived.year for result in survey]
    assert years == sorted(years)  # Table 1 is ordered by date


def test_capability_consistency_of_instances():
    for engine, relation_name in build_reference_instances(row_count=600):
        assert check_capability_consistency(engine, relation_name) == []


@pytest.mark.parametrize("engine_name", sorted(PAPER_TABLE_1))
def test_row_cells_render(survey, engine_name):
    result = next(r for r in survey if r.engine == engine_name)
    row = result.derived.row()
    assert row[0] == engine_name
    assert all(isinstance(cell, str) and cell for cell in row)
