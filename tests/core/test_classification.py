"""Per-axis classification derivation unit tests."""

import pytest

from repro.core.classification import (
    derive_flexibility,
    derive_layout_handling,
    derive_location,
    derive_processors,
    derive_scheme,
)
from repro.core.taxonomy import (
    FragmentScheme,
    LayoutFlexibility,
    LayoutHandling,
    LocationLocality,
    LocationTarget,
    ProcessorSupport,
)
from repro.engines.base import (
    EngineCapabilities,
    FragmentationChoice,
    MultiLayoutSupport,
    WorkloadSupport,
)
from repro.errors import ClassificationError, EngineError
from repro.layout.linearization import LinearizationKind
from repro.layout.partitioning import PartitioningOrder


def caps(**overrides):
    defaults = dict(
        fragmentation_choice=FragmentationChoice.VERTICAL,
        constrained_order=None,
        fat_formats=frozenset({LinearizationKind.NSM}),
        per_fragment_choice=False,
        multi_layout=MultiLayoutSupport.SINGLE,
        workload=WorkloadSupport.HTAP,
    )
    defaults.update(overrides)
    return EngineCapabilities(**defaults)


class TestHandling:
    def test_single(self):
        assert derive_layout_handling(1, caps()) is LayoutHandling.SINGLE

    def test_builtin_multi(self):
        assert (
            derive_layout_handling(2, caps(multi_layout=MultiLayoutSupport.BUILT_IN))
            is LayoutHandling.MULTI_BUILT_IN
        )

    def test_emulated_multi(self):
        assert (
            derive_layout_handling(3, caps(multi_layout=MultiLayoutSupport.EMULATED))
            is LayoutHandling.MULTI_EMULATED
        )

    def test_zero_layouts_rejected(self):
        with pytest.raises(ClassificationError):
            derive_layout_handling(0, caps())


class TestFlexibility:
    def test_none_is_inflexible(self):
        assert (
            derive_flexibility(caps(fragmentation_choice=FragmentationChoice.NONE))
            is LayoutFlexibility.INFLEXIBLE
        )

    def test_one_technique_is_weak(self):
        for choice in (FragmentationChoice.VERTICAL, FragmentationChoice.HORIZONTAL):
            assert (
                derive_flexibility(caps(fragmentation_choice=choice))
                is LayoutFlexibility.WEAK
            )

    def test_both_with_order_is_constrained_strong(self):
        capability = caps(
            fragmentation_choice=FragmentationChoice.BOTH,
            constrained_order=PartitioningOrder.VERTICAL_THEN_HORIZONTAL,
        )
        assert derive_flexibility(capability) is LayoutFlexibility.STRONG_CONSTRAINED

    def test_both_without_order_is_unconstrained(self):
        capability = caps(fragmentation_choice=FragmentationChoice.BOTH)
        assert derive_flexibility(capability) is LayoutFlexibility.STRONG_UNCONSTRAINED

    def test_order_on_weak_engine_rejected(self):
        with pytest.raises(EngineError):
            caps(constrained_order=PartitioningOrder.VERTICAL_THEN_HORIZONTAL)


class TestProcessors:
    def test_cpu_only(self):
        assert derive_processors(caps()) is ProcessorSupport.CPU

    def test_gpu_only(self):
        capability = caps(host_execution=False, device_execution=True)
        assert derive_processors(capability) is ProcessorSupport.GPU

    def test_both(self):
        capability = caps(device_execution=True)
        assert derive_processors(capability) is ProcessorSupport.CPU_GPU

    def test_nowhere_rejected(self):
        with pytest.raises(EngineError):
            caps(host_execution=False, device_execution=False)


class TestLocationAndScheme:
    """Location/scheme derivations against live engines (richer cases
    are covered by the full survey test)."""

    def test_host_centralized(self, loaded_item_engine_factory):
        from repro.engines import HyriseEngine

        engine, __ = loaded_item_engine_factory(HyriseEngine)
        target, locality, label = derive_location(engine, "item")
        assert target is LocationTarget.HOST_MEMORY_ONLY
        assert locality is LocationLocality.CENTRALIZED
        assert label == "Host + Host centr."

    def test_device_only(self, loaded_item_engine_factory):
        from repro.engines import GpuTxEngine

        engine, __ = loaded_item_engine_factory(GpuTxEngine)
        target, __, label = derive_location(engine, "item")
        assert target is LocationTarget.DEVICE_MEMORY_ONLY
        assert label == "Dev. + Dev. centr."

    def test_delegation_beats_replication(self, loaded_item_engine_factory):
        from repro.engines import ES2Engine

        engine, __ = loaded_item_engine_factory(ES2Engine, partition_rows=128)
        # ES2 has replica layouts AND a delegation policy; delegation wins.
        assert derive_scheme(engine, "item") is FragmentScheme.DELEGATION

    def test_replication_detected_from_copies(self, loaded_item_engine_factory):
        from repro.engines import FracturedMirrorsEngine

        engine, __ = loaded_item_engine_factory(FracturedMirrorsEngine)
        assert derive_scheme(engine, "item") is FragmentScheme.REPLICATION

    def test_no_scheme_for_single_layout(self, loaded_item_engine_factory):
        from repro.engines import HyriseEngine

        engine, __ = loaded_item_engine_factory(HyriseEngine)
        assert derive_scheme(engine, "item") is FragmentScheme.NONE

    def test_shared_fragments_are_not_replication(self, loaded_item_engine_factory):
        """Peloton's logical layout shares physical tiles: views, not
        copies — scheme must not degrade to replication (it is
        delegation via the logical-tile catalog anyway)."""
        from repro.engines import PelotonEngine

        engine, __ = loaded_item_engine_factory(PelotonEngine, tile_group_rows=128)
        assert derive_scheme(engine, "item") is FragmentScheme.DELEGATION
