"""Taxonomy tree tests (Figure 4)."""

from repro.core.taxonomy import (
    TAXONOMY_TREE,
    FragmentScheme,
    LayoutAdaptability,
    LayoutFlexibility,
    LayoutHandling,
    LocationLocality,
    LocationTarget,
    ProcessorSupport,
)
from repro.layout.properties import LinearizationProperty


class TestTreeStructure:
    def test_six_classification_axes(self):
        names = [child.name for child in TAXONOMY_TREE.children]
        assert names == [
            "Layout Handling",
            "Layout Flexibility",
            "Layout Adaptability",
            "Data Location",
            "Fragment Linearization",
            "Fragment Scheme",
        ]

    def test_layout_handling_leaves(self):
        node = TAXONOMY_TREE.find("Layout Handling")
        values = {leaf.leaf_value for leaf in node.leaves()}
        assert values == set(LayoutHandling)

    def test_flexibility_hierarchy(self):
        flexible = TAXONOMY_TREE.find("Flexible")
        assert flexible is not None
        strong = flexible.find("Strong")
        assert {leaf.leaf_value for leaf in strong.leaves()} == {
            LayoutFlexibility.STRONG_CONSTRAINED,
            LayoutFlexibility.STRONG_UNCONSTRAINED,
        }

    def test_adaptability_leaves(self):
        node = TAXONOMY_TREE.find("Layout Adaptability")
        assert {leaf.leaf_value for leaf in node.leaves()} == set(LayoutAdaptability)

    def test_linearization_covers_all_properties_but_mixed_hybrids(self):
        node = TAXONOMY_TREE.find("Fragment Linearization")
        values = {leaf.leaf_value for leaf in node.leaves()}
        # Every LinearizationProperty except the NSM+DSM-fixed pair label
        # (which Figure 4 folds under fixed leaves) must appear.
        missing = set(LinearizationProperty) - values
        assert missing == {LinearizationProperty.FAT_NSM_PLUS_DSM_FIXED}

    def test_scheme_leaves(self):
        node = TAXONOMY_TREE.find("Fragment Scheme")
        assert {leaf.leaf_value for leaf in node.leaves()} == {
            FragmentScheme.REPLICATION,
            FragmentScheme.DELEGATION,
        }

    def test_render_contains_all_nodes(self):
        rendered = TAXONOMY_TREE.render()
        for __, node in TAXONOMY_TREE.walk():
            assert node.name in rendered

    def test_find_missing(self):
        assert TAXONOMY_TREE.find("Quantum Layout") is None


class TestEnumSemantics:
    def test_handling_is_multi(self):
        assert LayoutHandling.MULTI_BUILT_IN.is_multi
        assert not LayoutHandling.SINGLE.is_multi

    def test_flexibility_predicates(self):
        assert not LayoutFlexibility.INFLEXIBLE.is_flexible
        assert LayoutFlexibility.WEAK.is_flexible
        assert LayoutFlexibility.STRONG_CONSTRAINED.is_strong
        assert not LayoutFlexibility.WEAK.is_strong

    def test_table_label_drops_order_suffix(self):
        assert LayoutFlexibility.STRONG_CONSTRAINED.table_label == "strong flex."
        assert LayoutFlexibility.STRONG_UNCONSTRAINED.table_label == "strong flex."
        assert LayoutFlexibility.WEAK.table_label == "weak flex."

    def test_processor_includes_gpu(self):
        assert ProcessorSupport.GPU.includes_gpu
        assert ProcessorSupport.CPU_GPU.includes_gpu
        assert not ProcessorSupport.CPU.includes_gpu

    def test_location_enums_exist(self):
        assert LocationTarget.MIXED.value == "mixed"
        assert LocationLocality.DISTRIBUTED.value == "distr."
