"""Reference engine tests: the Section IV-C design, end to end."""

import numpy as np
import pytest

from repro.core.reference_engine import ReferenceEngine, RegionDelegation
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.hardware.memory import MemoryKind
from repro.workload import item_schema


@pytest.fixture
def engine(loaded_item_engine_factory):
    return loaded_item_engine_factory(ReferenceEngine, delta_tile_rows=64)


class TestDeltaMain:
    def test_load_builds_main_columns(self, engine):
        reference, __ = engine
        unified = reference.layouts("item")[0]
        assert all(f.region.is_column for f in unified.fragments)

    def test_inserts_go_to_nsm_delta(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        reference.insert("item", (500, 1, "AA", "B", 1.0), ctx)
        unified = reference.layouts("item")[0]
        delta = unified.fragment_for(500, "i_price")
        assert delta.region.arity == 5  # the whole record in one tile
        assert not delta.region.is_column

    def test_delegation_routes_rows(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        reference.insert("item", (500, 1, "AA", "B", 1.0), ctx)
        policy = reference.delegation_policy("item")
        assert policy.owner_of(0, "i_price") == "main"
        assert policy.owner_of(500, "i_price") == "delta"

    def test_no_redundancy_between_delta_and_main(self, engine):
        """Delegation means a row lives in exactly one region."""
        reference, platform = engine
        ctx = ExecutionContext(platform)
        reference.insert("item", (500, 1, "AA", "B", 1.0), ctx)
        unified = reference.layouts("item")[0]
        owners = [
            fragment
            for fragment in unified.fragments
            if fragment.region.contains(500, "i_price")
        ]
        assert len(owners) == 1


class TestDevicePlacement:
    def test_auto_place_puts_numeric_columns_on_device(self, engine):
        reference, platform = engine
        assert reference.placed_columns("item")
        assert platform.device_memory.used > 0

    def test_sum_uses_device_replica(self, engine, small_items):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        total = reference.sum("item", "i_price", ctx)
        assert total == pytest.approx(float(np.sum(small_items["i_price"])))
        assert ctx.counters.kernel_launches > 0

    def test_auto_place_disabled(self, small_items):
        platform = Platform.paper_testbed()
        reference = ReferenceEngine(platform, auto_place=False)
        reference.create("item", item_schema())
        reference.load("item", small_items)
        assert reference.placed_columns("item") == []

    def test_capacity_fallback(self, small_items):
        platform = Platform.paper_testbed(device_capacity=100)
        reference = ReferenceEngine(platform)
        reference.create("item", item_schema())
        reference.load("item", small_items)
        assert reference.placed_columns("item") == []
        ctx = ExecutionContext(platform)
        # Queries still work from the host.
        assert reference.sum("item", "i_price", ctx) > 0

    def test_update_keeps_device_replica_coherent(self, engine, small_items):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        expected = float(np.sum(small_items["i_price"]))
        old = float(small_items["i_price"][3])
        reference.update("item", 3, "i_price", 42.0, ctx)
        assert reference.sum("item", "i_price", ctx) == pytest.approx(
            expected - old + 42.0
        )


class TestResponsiveness:
    def test_merge_absorbs_delta(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        for i in range(10):
            reference.insert("item", (500 + i, 1, "AA", "B", 1.0), ctx)
        assert reference.reorganize("item", ctx)
        policy = reference.delegation_policy("item")
        assert policy.owner_of(505, "i_price") == "main"
        unified = reference.layouts("item")[0]
        assert all(f.region.is_column for f in unified.fragments)

    def test_values_survive_merge(self, engine, small_items):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        for i in range(10):
            reference.insert("item", (500 + i, 1, "AA", "B", 2.0), ctx)
        expected = float(np.sum(small_items["i_price"])) + 20.0
        reference.reorganize("item", ctx)
        assert reference.sum("item", "i_price", ctx) == pytest.approx(expected)
        assert reference.materialize("item", [505], ctx)[0][0] == 505

    def test_merge_replaces_device_replicas(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        for i in range(5):
            reference.insert("item", (500 + i, 1, "AA", "B", 1.0), ctx)
        reference.reorganize("item", ctx)
        placed = reference.placed_columns("item")
        assert placed  # re-placed after the merge
        accelerated = reference.layouts("item")[1]
        replica = accelerated.fragments_for_attribute(placed[0])[0]
        assert replica.space.kind is MemoryKind.DEVICE
        assert replica.capacity == 505

    def test_empty_delta_merge_still_replaces_placements(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        assert not reference.reorganize("item", ctx)  # nothing to do


class TestRegionDelegation:
    def test_describe(self):
        policy = RegionDelegation(100)
        assert "100" in policy.describe()
        assert policy.owner_of(99, "x") == "main"
        assert policy.owner_of(100, "x") == "delta"


class TestUnconstrainedVariant:
    def test_unconstrained_classification(self, small_items):
        from repro.core.classification import classify
        from repro.core.taxonomy import LayoutFlexibility
        from repro.workload import item_schema

        platform = Platform.paper_testbed()
        engine = ReferenceEngine(platform, constrained=False, delta_tile_rows=64)
        engine.create("item", item_schema())
        engine.load("item", small_items)
        ctx = ExecutionContext(platform)
        engine.insert("item", (500, 1, "AA", "B", 1.0), ctx)
        classification = classify(engine, "item")
        assert classification.flexibility is LayoutFlexibility.STRONG_UNCONSTRAINED
        # Still satisfies all six requirements ("at least constrained").
        from repro.core.requirements import satisfies_all

        assert satisfies_all(classification)
