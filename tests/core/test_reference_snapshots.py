"""Reference engine + snapshot isolation: challenge b.iii end to end."""

import pytest

from repro.core.reference_engine import ReferenceEngine
from repro.errors import EngineError
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema

ROWS = 2000


@pytest.fixture
def engine():
    platform = Platform.paper_testbed()
    engine = ReferenceEngine(platform, delta_tile_rows=256, auto_place=False)
    engine.create("item", item_schema())
    engine.load("item", generate_items(ROWS))
    return engine, platform


class TestAnalyticSnapshots:
    def test_snapshot_isolates_from_updates(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        before = reference.sum("item", "i_price", ctx)
        snapshot = reference.analytic_snapshot("item", ctx)
        for position in range(0, 50):
            reference.update("item", position, "i_price", 0.0, ctx)
        # The long-running analytic view is unchanged; live data moved.
        assert snapshot.sum("i_price", ctx.fork()) == pytest.approx(before)
        assert reference.sum("item", "i_price", ctx.fork()) < before
        snapshot.release()

    def test_writers_pay_cow_only_under_live_snapshots(self, engine):
        reference, platform = engine
        setup = ExecutionContext(platform)
        snapshot = reference.analytic_snapshot("item", setup)
        guarded = ExecutionContext(platform)
        reference.update("item", 0, "i_price", 1.0, guarded)
        assert "cow-fault" in guarded.breakdown.parts
        snapshot.release()
        free = ExecutionContext(platform)
        reference.update("item", 1, "i_price", 1.0, free)
        assert "cow-fault" not in free.breakdown.parts
        assert free.cycles < guarded.cycles

    def test_reorganize_refused_under_live_snapshot(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        reference.insert("item", (ROWS, 1, "AA", "B", 1.0), ctx)
        snapshot = reference.analytic_snapshot("item", ctx)
        with pytest.raises(EngineError):
            reference.reorganize("item", ctx)
        snapshot.release()
        assert reference.reorganize("item", ctx)

    def test_point_reads_from_snapshot(self, engine):
        reference, platform = engine
        ctx = ExecutionContext(platform)
        original = reference.materialize("item", [9], ctx)[0][4]
        snapshot = reference.analytic_snapshot("item", ctx)
        reference.update("item", 9, "i_price", -5.0, ctx)
        assert snapshot.read_field(9, "i_price") == pytest.approx(original)
        snapshot.release()
