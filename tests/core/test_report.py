"""Report rendering tests."""

import pytest

from repro.core.report import (
    render_requirements_matrix,
    render_survey_table,
    render_table,
    render_taxonomy,
)
from repro.core.survey import run_survey


@pytest.fixture(scope="module")
def survey():
    return run_survey(row_count=300)


class TestRenderTable:
    def test_alignment(self):
        text = render_table([("a", "bb"), ("ccc", "d")], ("H1", "H2"))
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all equal width
        assert "H1" in lines[0] and "---" in lines[1]


class TestSurveyTable:
    def test_contains_every_engine(self, survey):
        text = render_survey_table(survey)
        for result in survey:
            assert result.engine in text

    def test_match_markers(self, survey):
        text = render_survey_table(survey)
        assert text.count("==") >= 10


class TestTaxonomyRender:
    def test_axes_present(self):
        text = render_taxonomy()
        for axis in (
            "Layout Handling",
            "Layout Flexibility",
            "Fragment Linearization",
            "Fragment Scheme",
        ):
            assert axis in text

    def test_indentation_reflects_depth(self):
        text = render_taxonomy()
        assert "\n  Layout Handling" in text
        assert "\n    Single Layout" in text


class TestRequirementsMatrix:
    def test_matrix_shape(self, survey):
        text = render_requirements_matrix([r.derived for r in survey])
        assert "R1" in text and "R6" in text and "all six" in text
        assert "Requirements:" in text

    def test_not_yet(self, survey):
        """The rendered verdict column shows the paper's answer."""
        text = render_requirements_matrix([r.derived for r in survey])
        verdict_lines = [
            line for line in text.splitlines() if line.strip().endswith(("yes", "no"))
        ]
        assert not any("YES" in line for line in verdict_lines)
