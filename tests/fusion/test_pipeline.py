"""Builder/compiler validation: the fusable grammar is enforced eagerly."""

import pytest

from repro.errors import ExecutionError, FusionError, UnsupportedPipelineError
from repro.fusion import FusedPipeline, Pipeline, compile_pipeline


def probe(values):
    return values < 500


class TestBuilder:
    def test_full_chain_compiles(self):
        plan = compile_pipeline(
            Pipeline.scan("key")
            .filter(probe, selectivity_hint=0.25)
            .project(lambda v: v * 2, cycles_per_value=1.5, name="double")
            .aggregate("sum", on="price")
        )
        assert isinstance(plan, FusedPipeline)
        assert plan.scan_attribute == "key"
        assert plan.filter.selectivity_hint == 0.25
        assert plan.projects[0].name == "double"
        assert plan.op == "sum"
        assert plan.aggregate_attribute == "price"
        assert plan.describe() == "scan(key)|filter|double|sum(price)"

    def test_aggregate_defaults_to_scan_attribute(self):
        plan = compile_pipeline(Pipeline.scan("price").aggregate("mean"))
        assert plan.aggregate_attribute == "price"

    def test_attributes_deduplicate(self):
        # A filterless plan never reads the scan column; a same-column
        # filtered plan reads it once.
        filterless = compile_pipeline(Pipeline.scan("key").aggregate("sum", on="price"))
        assert filterless.attributes == ("price",)
        same = compile_pipeline(Pipeline.scan("key").filter(probe).aggregate("sum"))
        assert same.attributes == ("key",)
        two = compile_pipeline(
            Pipeline.scan("key").filter(probe).aggregate("sum", on="price")
        )
        assert two.attributes == ("key", "price")

    def test_compile_is_idempotent(self):
        plan = compile_pipeline(Pipeline.scan("key").aggregate("sum"))
        assert compile_pipeline(plan) is plan


class TestValidation:
    def test_missing_aggregate_rejected(self):
        with pytest.raises(UnsupportedPipelineError):
            compile_pipeline(Pipeline.scan("key").filter(probe))

    def test_second_filter_rejected(self):
        with pytest.raises(UnsupportedPipelineError):
            Pipeline.scan("key").filter(probe).filter(probe)

    def test_project_without_filter_rejected(self):
        with pytest.raises(UnsupportedPipelineError):
            Pipeline.scan("key").project(lambda v: v)

    def test_stage_after_aggregate_rejected(self):
        done = Pipeline.scan("key").aggregate("sum")
        with pytest.raises(UnsupportedPipelineError):
            done.filter(probe)
        with pytest.raises(UnsupportedPipelineError):
            done.aggregate("sum")

    def test_bad_selectivity_hint_rejected(self):
        with pytest.raises(FusionError):
            Pipeline.scan("key").filter(probe, selectivity_hint=1.5)

    def test_non_callable_predicate_rejected(self):
        with pytest.raises(FusionError):
            Pipeline.scan("key").filter("key < 500")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ExecutionError):
            compile_pipeline(Pipeline.scan("key").aggregate("median"))

    def test_empty_scan_attribute_rejected(self):
        with pytest.raises(FusionError):
            Pipeline.scan("")

    def test_error_hierarchy(self):
        # Callers catching ExecutionError keep working; callers can
        # narrow to the compile-time classes.
        assert issubclass(FusionError, ExecutionError)
        assert issubclass(UnsupportedPipelineError, FusionError)


class TestPackageRoot:
    def test_root_exports(self):
        import repro

        for name in (
            "Pipeline",
            "FusedPipeline",
            "compile_pipeline",
            "FusionError",
            "UnsupportedPipelineError",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
