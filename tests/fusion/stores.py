"""Store builders shared by the fusion tests (importable helpers).

One relation shape, real payloads, three layout families: NSM (one fat
row-major fragment), DSM (one thin fragment per attribute) and PAX
(attribute groups cut into horizontal chunks).  Fragments are always
materialized so byte-identity assertions compare actual floats.
"""

from __future__ import annotations

import numpy as np

from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.partitioning import (
    PartitioningOrder,
    composite_partition,
    one_region_per_attribute,
)
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema

ROWS = 2_048


def fusion_relation(rows: int = ROWS) -> Relation:
    return Relation(
        "t", Schema.of(("key", INT64), ("price", FLOAT64)), rows
    )


def fusion_columns(rows: int = ROWS, seed: int = 29) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "key": rng.integers(0, 1_000, rows).astype(np.int64),
        "price": rng.uniform(1.0, 100.0, rows),
    }


def nsm_store(platform, relation, columns) -> Layout:
    rows = list(zip(columns["key"].tolist(), columns["price"].tolist()))
    fragment = Fragment.from_rows(
        Region.full(relation), relation.schema, LinearizationKind.NSM,
        platform.host_memory, rows,
    )
    return Layout("nsm", relation, [fragment])


def dsm_store(platform, relation, columns) -> Layout:
    fragments = []
    for region in one_region_per_attribute(relation):
        attribute = region.attributes[0]
        fragment = Fragment(
            region, relation.schema, None, platform.host_memory,
            label=f"dsm/{attribute}",
        )
        fragment.append_columns({attribute: columns[attribute]})
        fragments.append(fragment)
    return Layout("dsm", relation, fragments)


def pax_store(platform, relation, columns, chunk_rows: int = 512) -> Layout:
    regions = composite_partition(
        relation,
        [(name,) for name in relation.schema.names],
        chunk_rows,
        PartitioningOrder.VERTICAL_THEN_HORIZONTAL,
    )
    fragments = []
    for region in regions:
        attribute = region.attributes[0]
        start, stop = region.rows.start, region.rows.stop
        fragment = Fragment(
            region, relation.schema, None, platform.host_memory,
            label=f"pax/{attribute}@{start}",
        )
        fragment.append_columns({attribute: columns[attribute][start:stop]})
        fragments.append(fragment)
    return Layout("pax", relation, fragments)


STORE_BUILDERS = {"nsm": nsm_store, "dsm": dsm_store, "pax": pax_store}
