"""Fusion-test fixtures over the shared store builders."""

from __future__ import annotations

import numpy as np
import pytest

from tests.fusion.stores import STORE_BUILDERS, fusion_columns, fusion_relation


@pytest.fixture
def relation() :
    return fusion_relation()


@pytest.fixture
def columns() :
    return fusion_columns()


@pytest.fixture
def store_builder(request):
    """Indirect fixture: parametrize with a STORE_BUILDERS key."""
    return STORE_BUILDERS[request.param]
