"""Fused host execution: byte-identity, zero-size contract, the win."""

import numpy as np
import pytest

from repro.errors import FusionError
from repro.execution.context import ExecutionContext
from repro.execution.bulk import BulkPipeline
from repro.fusion import Pipeline, compile_pipeline
from repro.fusion.host import run_fused_host, vector_pass
from repro.fusion.oracle import run_unfused_host
from repro.hardware import Platform
from repro.obs import LAYER_FUSED, tracing

from tests.fusion.stores import (
    STORE_BUILDERS,
    dsm_store,
    fusion_relation,
)

OPS = ("sum", "min", "max", "mean", "count")


def probe(values):
    return values < 400


def filtered_plan(op):
    return compile_pipeline(
        Pipeline.scan("key").filter(probe).aggregate(op, on="price")
    )


@pytest.mark.parametrize("store_builder", sorted(STORE_BUILDERS), indirect=True)
@pytest.mark.parametrize("op", OPS)
class TestByteIdentity:
    def test_filtered(self, store_builder, op, relation, columns):
        plan = filtered_plan(op)
        fused = run_fused_host(
            plan,
            store_builder(Platform.paper_testbed(), relation, columns),
            ExecutionContext(Platform.paper_testbed()),
        )
        oracle = run_unfused_host(
            plan,
            store_builder(Platform.paper_testbed(), relation, columns),
            ExecutionContext(Platform.paper_testbed()),
        )
        assert fused == oracle  # byte-identical, not approx

    def test_filterless(self, store_builder, op, relation, columns):
        plan = compile_pipeline(Pipeline.scan("price").aggregate(op))
        fused = run_fused_host(
            plan,
            store_builder(Platform.paper_testbed(), relation, columns),
            ExecutionContext(Platform.paper_testbed()),
        )
        oracle = run_unfused_host(
            plan,
            store_builder(Platform.paper_testbed(), relation, columns),
            ExecutionContext(Platform.paper_testbed()),
        )
        assert fused == oracle


class TestProjections:
    @pytest.mark.parametrize("store_builder", sorted(STORE_BUILDERS), indirect=True)
    def test_projected_chain_matches_oracle(self, store_builder, relation, columns):
        plan = compile_pipeline(
            Pipeline.scan("key")
            .filter(probe)
            .project(np.sqrt, cycles_per_value=4.0, name="sqrt")
            .project(lambda v: v + 1.0, name="shift")
            .aggregate("sum", on="price")
        )
        fused = run_fused_host(
            plan,
            store_builder(Platform.paper_testbed(), relation, columns),
            ExecutionContext(Platform.paper_testbed()),
        )
        oracle = run_unfused_host(
            plan,
            store_builder(Platform.paper_testbed(), relation, columns),
            ExecutionContext(Platform.paper_testbed()),
        )
        assert fused == oracle


class TestZeroSize:
    @pytest.mark.parametrize("op", OPS)
    def test_empty_relation_charges_nothing(self, op, platform):
        relation = fusion_relation(0)
        store = dsm_store(platform, relation, {"key": np.empty(0, np.int64),
                                               "price": np.empty(0)})
        ctx = ExecutionContext(platform)
        plan = filtered_plan(op)
        assert run_fused_host(plan, store, ctx) == plan.identity
        assert ctx.cycles == 0.0
        assert ctx.counters.transfers == 0

    def test_selectivity_zero_matches_oracle(self, platform, relation, columns):
        plan = compile_pipeline(
            Pipeline.scan("key").filter(lambda v: v < -1).aggregate("sum", on="price")
        )
        store = dsm_store(platform, relation, columns)
        fused = run_fused_host(plan, store, ExecutionContext(platform))
        oracle = run_unfused_host(
            plan,
            dsm_store(Platform.paper_testbed(), relation, columns),
            ExecutionContext(Platform.paper_testbed()),
        )
        assert fused == oracle == 0.0


class TestCostPlane:
    def test_fused_beats_unfused_at_mid_selectivity(self, relation, columns):
        plan = filtered_plan("sum")
        fused_ctx = ExecutionContext(Platform.paper_testbed())
        run_fused_host(
            plan, dsm_store(fused_ctx.platform, relation, columns), fused_ctx
        )
        oracle_ctx = ExecutionContext(Platform.paper_testbed())
        run_unfused_host(
            plan, dsm_store(oracle_ctx.platform, relation, columns), oracle_ctx
        )
        assert fused_ctx.cycles < oracle_ctx.cycles

    def test_fused_span_carries_the_layer(self, relation, columns):
        with tracing() as tracer:
            platform = Platform.paper_testbed()
            store = dsm_store(platform, relation, columns)
            run_fused_host(filtered_plan("sum"), store, ExecutionContext(platform))
        categories = {span.category for span in tracer.spans()}
        assert LAYER_FUSED in categories

    def test_phantom_filter_rejected(self, platform):
        from repro.bench.figure2 import build_column_store
        from repro.workload.tpcc import item_relation

        store = build_column_store(platform, item_relation(1_000))
        plan = compile_pipeline(
            Pipeline.scan("i_im_id").filter(probe).aggregate("sum", on="i_price")
        )
        with pytest.raises(FusionError):
            run_fused_host(plan, store, ExecutionContext(platform))


class TestBulkDeduplication:
    """Satellite: exactly one vector-at-a-time code path in the tree."""

    def test_bulk_collect_is_vector_pass(self, relation, columns):
        stages = [
            ("double", lambda v: v * 2.0, 1.0),
            ("clip", lambda v: np.minimum(v, 120.0), 2.0),
        ]
        direct_ctx = ExecutionContext(Platform.paper_testbed())
        direct = vector_pass(
            dsm_store(direct_ctx.platform, relation, columns),
            "price", stages, direct_ctx, 256,
        )
        bulk_ctx = ExecutionContext(Platform.paper_testbed())
        pipeline = BulkPipeline(
            dsm_store(bulk_ctx.platform, relation, columns), "price", 256
        )
        for name, fn, cycles_per_value in stages:
            pipeline.map(fn, name=name, cycles_per_value=cycles_per_value)
        wrapped = pipeline.collect(bulk_ctx)
        assert np.array_equal(direct, wrapped)
        assert bulk_ctx.cycles == direct_ctx.cycles  # same charge sequence

    def test_vector_size_shared_constant(self):
        from repro.execution import bulk
        from repro.fusion import host

        assert bulk.DEFAULT_VECTOR_SIZE is host.DEFAULT_VECTOR_SIZE

    def test_bad_vector_size_rejected(self, platform, relation, columns):
        with pytest.raises(FusionError):
            vector_pass(
                dsm_store(platform, relation, columns),
                "price", [], ExecutionContext(platform), 0,
            )
