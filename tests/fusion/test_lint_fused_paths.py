"""AST lint: fused executors must never call materializing operators.

The whole point of :mod:`repro.fusion.host` / :mod:`repro.fusion.device`
is that nothing materializes between stages — no position lists, no
intermediate buffers, no per-operator staging.  A call to any of the
unfused operators from inside a fused path would silently turn the
optimization back into the thing it replaces, while the byte-identity
tests kept passing.  This lint walks the AST of both fused modules and
rejects any call to (or import of) a materializing operator.
"""

import ast
from pathlib import Path

import repro.fusion

#: Operators that materialize intermediates (or wrap ones that do).
FORBIDDEN = {
    "filter_scan",
    "sum_at_positions",
    "aggregate_column",
    "aggregate_at_positions",
    "sum_column",
    "materialize_rows",
    "device_sum_column",
    "device_count_where",
    "bulk_sum",
    "bulk_count_where",
    "BulkPipeline",
}

FUSED_MODULES = ("host.py", "device.py")


def _called_and_imported_names(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                yield node.lineno, func.id
            elif isinstance(func, ast.Attribute):
                yield node.lineno, func.attr
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                yield node.lineno, alias.name


def test_fused_paths_never_call_materializing_operators():
    package_root = Path(repro.fusion.__file__).resolve().parent
    offenders = []
    for filename in FUSED_MODULES:
        path = package_root / filename
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for lineno, name in _called_and_imported_names(tree):
            if name in FORBIDDEN:
                offenders.append(f"{filename}:{lineno}: {name}")
    assert not offenders, (
        "fused code paths must stay fused — materializing operator "
        "references found:\n" + "\n".join(offenders)
    )
