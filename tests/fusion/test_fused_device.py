"""Fused device execution: one burst, one launch, capacity degradation."""

import numpy as np
import pytest

from repro.errors import CapacityError, ExecutionError
from repro.execution.context import ExecutionContext
from repro.fusion import Pipeline, compile_pipeline
from repro.fusion.device import run_fused_device
from repro.fusion.oracle import run_unfused_device, run_unfused_host
from repro.hardware import Platform

from tests.fusion.stores import dsm_store, fusion_columns, fusion_relation

ROWS = 2_048


def probe(values):
    return values < 400


@pytest.fixture
def plan():
    return compile_pipeline(
        Pipeline.scan("key").filter(probe).aggregate("sum", on="price")
    )


@pytest.fixture
def oracle(plan, relation, columns):
    return run_unfused_host(
        plan,
        dsm_store(Platform.paper_testbed(), relation, columns),
        ExecutionContext(Platform.paper_testbed()),
    )


class TestCostEvents:
    def test_cold_run_is_one_burst_one_launch(self, plan, relation, columns, oracle):
        platform = Platform.paper_testbed()
        store = dsm_store(platform, relation, columns)
        ctx = ExecutionContext(platform)
        assert run_fused_device(plan, store, ctx) == oracle
        counters = ctx.counters
        # Both operand columns cross in ONE coalesced burst; the only
        # other wire event is the scalar result copy.
        assert counters.transfers == 2
        assert counters.kernel_launches == 1
        assert counters.staging_misses == 2
        assert counters.pcie_bytes == 2 * ROWS * 8 + 8

    def test_warm_run_hits_the_cache(self, plan, relation, columns, oracle):
        platform = Platform.paper_testbed()
        store = dsm_store(platform, relation, columns)
        run_fused_device(plan, store, ExecutionContext(platform))
        warm = ExecutionContext(platform)
        assert run_fused_device(plan, store, warm) == oracle
        assert warm.counters.staging_hits == 2
        assert warm.counters.transfers == 1  # result copy only
        assert warm.counters.kernel_launches == 1
        assert warm.counters.pcie_bytes == 8

    def test_uncharged_transfer_still_computes(self, plan, relation, columns, oracle):
        platform = Platform.paper_testbed()
        store = dsm_store(platform, relation, columns)
        ctx = ExecutionContext(platform)
        result = run_fused_device(plan, store, ctx, charge_transfer=False)
        assert result == oracle
        assert ctx.counters.transfers == 1  # result copy only
        assert ctx.counters.kernel_launches == 1

    def test_unfused_device_pays_per_operator(self, plan, relation, columns, oracle):
        fused_platform = Platform.paper_testbed()
        fused_store = dsm_store(fused_platform, relation, columns)
        run_fused_device(plan, fused_store, ExecutionContext(fused_platform))
        fused_warm = ExecutionContext(fused_platform)
        assert run_fused_device(plan, fused_store, fused_warm) == oracle

        unfused_platform = Platform.paper_testbed()
        unfused_store = dsm_store(unfused_platform, relation, columns)
        run_unfused_device(plan, unfused_store, ExecutionContext(unfused_platform))
        unfused_warm = ExecutionContext(unfused_platform)
        assert run_unfused_device(plan, unfused_store, unfused_warm) == oracle
        # Five launches (select x2, gather, reduce x2) against one, and
        # the position list crosses the bus twice.
        assert unfused_warm.counters.kernel_launches == 5
        assert unfused_warm.counters.transfers > fused_warm.counters.transfers
        assert unfused_warm.cycles > fused_warm.cycles


class TestDegradation:
    def test_capacity_error_when_operands_cannot_stage(self, plan, relation, columns):
        platform = Platform.paper_testbed(device_capacity=256)
        store = dsm_store(platform, relation, columns)
        with pytest.raises(CapacityError):
            run_fused_device(plan, store, ExecutionContext(platform))

    def test_zero_size_contract(self, plan):
        platform = Platform.paper_testbed()
        empty = fusion_relation(0)
        store = dsm_store(
            platform, empty,
            {"key": np.empty(0, np.int64), "price": np.empty(0)},
        )
        ctx = ExecutionContext(platform)
        assert run_fused_device(plan, store, ctx) == plan.identity
        assert ctx.cycles == 0.0
        assert ctx.counters.transfers == 0
        assert ctx.counters.kernel_launches == 0
        unfused = ExecutionContext(platform)
        assert run_unfused_device(plan, store, unfused) == plan.identity
        assert unfused.cycles == 0.0


class TestKernelModel:
    def test_zero_count_kernel_is_free(self, platform):
        assert platform.gpu.fused_pipeline_cost(0, (8, 8)) == 0.0

    def test_invalid_geometry_rejected(self, platform):
        with pytest.raises(ExecutionError):
            platform.gpu.fused_pipeline_cost(-1, (8,))
        with pytest.raises(ExecutionError):
            platform.gpu.fused_pipeline_cost(100, ())
        with pytest.raises(ExecutionError):
            platform.gpu.fused_pipeline_cost(100, (0,))

    def test_one_launch_latency_not_two(self, platform):
        # The fused launch pays the 5 us launch latency once; the
        # two-pass reduction of the same element count pays it twice.
        fused = platform.gpu.fused_pipeline_cost(10_000, (8,))
        reduction = platform.gpu.reduction_cost(10_000, 8)
        assert fused < reduction
