"""Seeded property sweep: fused == oracle under layouts, ops and chaos.

Every cell builds fresh seeded data, computes the unfused host oracle
on a clean platform, and asserts that fused host execution and fused
device execution under a chaotic fault schedule return the *same
bytes* — with every injected fault attributed exactly once in the
resilience report (``unaccounted() == 0``).
"""

import numpy as np
import pytest

from repro.execution.context import ExecutionContext
from repro.faults.injector import (
    SITE_DEVICE_ALLOC,
    SITE_KERNEL_LAUNCH,
    SITE_PCIE_TRANSFER,
    FaultInjector,
)
from repro.faults.policy import RetryPolicy
from repro.fusion import Pipeline, compile_pipeline
from repro.fusion.device import run_fused_device
from repro.fusion.host import run_fused_host
from repro.fusion.oracle import run_unfused_host
from repro.hardware import Platform

from tests.fusion.stores import STORE_BUILDERS, fusion_columns, fusion_relation

SELECTIVITIES = (0.0, 0.37, 1.0)
OPS = ("sum", "mean", "count")
SEEDS = (3, 17)


def build_plan(op, selectivity):
    threshold = int(1_000 * selectivity)
    return compile_pipeline(
        Pipeline.scan("key")
        .filter(lambda values, t=threshold: values < t,
                selectivity_hint=selectivity)
        .aggregate(op, on="price")
    )


@pytest.mark.parametrize("layout_name", sorted(STORE_BUILDERS))
@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("op", OPS)
@pytest.mark.parametrize("seed", SEEDS)
def test_fused_matches_oracle_under_chaos(layout_name, selectivity, op, seed):
    relation = fusion_relation()
    columns = fusion_columns(seed=seed)
    build = STORE_BUILDERS[layout_name]
    plan = build_plan(op, selectivity)

    oracle_platform = Platform.paper_testbed()
    oracle = run_unfused_host(
        plan,
        build(oracle_platform, relation, columns),
        ExecutionContext(oracle_platform),
    )

    host_platform = Platform.paper_testbed()
    fused = run_fused_host(
        plan,
        build(host_platform, relation, columns),
        ExecutionContext(host_platform),
    )
    assert fused == oracle

    # Device run under a chaotic PCIe schedule: armed with the cell's
    # seed, absorbed by retry, never changing a byte.
    device_platform = Platform.paper_testbed()
    injector = FaultInjector(seed=seed).arm(
        SITE_PCIE_TRANSFER, 0.7, max_faults=2
    )
    injector.install(device_platform)
    ctx = ExecutionContext(device_platform)
    ctx.retry = RetryPolicy(max_attempts=5, report=injector.report)
    assert run_fused_device(
        plan, build(device_platform, relation, columns), ctx
    ) == oracle
    report = injector.report
    assert report.unaccounted == 0
    assert ctx.counters.fault_retries == report.retried


def test_device_oom_recovers_by_eviction():
    """An injected alloc fault inside acquire_set evicts and proceeds."""
    relation = fusion_relation()
    columns = fusion_columns()
    platform = Platform.paper_testbed()
    store = STORE_BUILDERS["dsm"](platform, relation, columns)
    warm_plan = compile_pipeline(Pipeline.scan("key").aggregate("count"))
    run_fused_device(warm_plan, store, ExecutionContext(platform))  # stages "key"

    injector = FaultInjector(seed=11).arm(SITE_DEVICE_ALLOC, 1.0, max_faults=1)
    injector.install(platform)
    plan = compile_pipeline(Pipeline.scan("price").aggregate("sum"))
    ctx = ExecutionContext(platform)
    oracle = run_unfused_host(
        plan,
        STORE_BUILDERS["dsm"](Platform.paper_testbed(), relation, columns),
        ExecutionContext(Platform.paper_testbed()),
    )
    assert run_fused_device(plan, store, ctx) == oracle
    assert ctx.counters.fault_recoveries == 1
    assert injector.report.recovered == 1
    assert injector.report.unaccounted == 0


def test_kernel_fault_fires_inside_fused_launch():
    """The device.kernel site still fires in the single fused launch."""
    from repro.errors import DeviceError

    relation = fusion_relation()
    columns = fusion_columns()
    platform = Platform.paper_testbed()
    store = STORE_BUILDERS["dsm"](platform, relation, columns)
    FaultInjector(seed=7).arm(SITE_KERNEL_LAUNCH, 1.0).install(platform)
    plan = build_plan("sum", 0.5)
    with pytest.raises(DeviceError):
        run_fused_device(plan, store, ExecutionContext(platform))
