"""Shared fixtures: platforms, schemas, loaded relations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Derandomize property tests: the suite must be deterministic run to
# run (shrunk counterexamples are committed as regression tests).
settings.register_profile("deterministic", derandomize=True)
settings.load_profile("deterministic")

from repro.hardware import Platform
from repro.execution import ExecutionContext
from repro.model import INT32, Relation, Schema
from repro.workload import generate_items, item_schema


@pytest.fixture
def platform() -> Platform:
    """A fresh paper-testbed platform per test (fresh machine)."""
    return Platform.paper_testbed()


@pytest.fixture
def ctx(platform: Platform) -> ExecutionContext:
    """A single-threaded execution context on the fresh platform."""
    return ExecutionContext(platform)


@pytest.fixture
def abc_schema() -> Schema:
    """Figure 3's example schema R(A, B, C, D, E), all INT32."""
    return Schema.of(
        ("A", INT32), ("B", INT32), ("C", INT32), ("D", INT32), ("E", INT32)
    )


@pytest.fixture
def abc_relation(abc_schema: Schema) -> Relation:
    """Figure 3's example relation with 4 rows."""
    return Relation("R", abc_schema, 4)


@pytest.fixture
def abc_rows() -> list[tuple[int, ...]]:
    """Figure 3's rows: (a_i, b_i, c_i, d_i, e_i) encoded as integers."""
    return [(i * 10 + 1, i * 10 + 2, i * 10 + 3, i * 10 + 4, i * 10 + 5) for i in range(4)]


@pytest.fixture
def small_items() -> dict[str, np.ndarray]:
    """500 deterministic item rows."""
    return generate_items(500)


@pytest.fixture
def loaded_item_engine_factory(small_items):
    """Factory: build any engine class loaded with the small item table."""

    def build(engine_cls, **kwargs):
        platform = Platform.paper_testbed()
        engine = engine_cls(platform, **kwargs)
        engine.create("item", item_schema())
        engine.load("item", small_items)
        return engine, platform

    return build
