"""Exception hierarchy contract: one root to catch them all."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import ReproError


def all_error_classes():
    return [
        member
        for __, member in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(member, Exception)
    ]


def test_every_library_error_is_a_repro_error():
    for cls in all_error_classes():
        assert issubclass(cls, ReproError), cls

    assert len(all_error_classes()) >= 12


def test_capacity_is_a_storage_error():
    from repro.errors import CapacityError, StorageError

    assert issubclass(CapacityError, StorageError)


def test_transaction_and_delegation_are_engine_errors():
    from repro.errors import DelegationError, EngineError, TransactionError

    assert issubclass(TransactionError, EngineError)
    assert issubclass(DelegationError, EngineError)


def test_single_except_clause_suffices():
    from repro.errors import LayoutError

    with pytest.raises(ReproError):
        raise LayoutError("caught at the root")


def test_distributed_failure_modes_are_distributed_errors():
    from repro.errors import (
        DistributedError,
        NodeUnavailable,
        ShardRetryExhausted,
    )

    assert issubclass(NodeUnavailable, DistributedError)
    assert issubclass(ShardRetryExhausted, DistributedError)


def test_deadline_exceeded_is_an_execution_error():
    from repro.errors import DeadlineExceeded, DistributedError, ExecutionError

    # A blown retry budget is the *executor's* verdict, not a network
    # condition — it must not be swallowed by DistributedError handlers.
    assert issubclass(DeadlineExceeded, ExecutionError)
    assert not issubclass(DeadlineExceeded, DistributedError)


def test_failover_errors_importable_from_package_root():
    import repro

    for name in ("NodeUnavailable", "ShardRetryExhausted", "DeadlineExceeded"):
        assert getattr(repro, name) is getattr(errors_module, name)
        assert name in repro.__all__


def test_rebalance_errors_place_in_the_hierarchy():
    from repro.errors import (
        DistributedError,
        ExecutionError,
        MigrationInProgress,
        RebalanceAborted,
    )

    # An aborted rebalance is the migrator's verdict on its own work
    # (clean rollback, map untouched) — not a network condition; the
    # single-writer violation *is* a coordination fault.
    assert issubclass(RebalanceAborted, ExecutionError)
    assert not issubclass(RebalanceAborted, DistributedError)
    assert issubclass(MigrationInProgress, DistributedError)


def test_rebalance_errors_importable_from_package_root():
    import repro

    for name in ("RebalanceAborted", "MigrationInProgress"):
        assert getattr(repro, name) is getattr(errors_module, name)
        assert name in repro.__all__
