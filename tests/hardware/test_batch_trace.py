"""Batch-vs-scalar trace equivalence: the license for ``access_batch``.

The vectorized :meth:`CacheHierarchy.access_batch` must be a pure
performance transform — byte-identical counters, cycles and LRU state
to replaying the same trace through the scalar :meth:`access` loop.
These tests pin that on every access shape the operators generate
(sequential, strided, random), plus warm replays, mixed sizes, and the
spillover state (``_last_line``/``_stream_run``) that couples batches.

Also here: the :class:`CostCache` hit-exactness contract — a memoized
costing hands back the exact cycles of the cold computation.
"""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.execution.context import ExecutionContext
from repro.execution.operators import column_scan_cost
from repro.hardware.event import PerfCounters
from repro.hardware.platform import Platform
from repro.layout.fragment import Fragment
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema
from repro.perf.cost_cache import CostCache, set_cost_cache


def hierarchy_state(hierarchy):
    """Full observable state: per-level LRU order, tallies, stream run."""
    return (
        hierarchy._last_line,
        hierarchy._stream_run,
        tuple(
            (
                level.hits,
                level.misses,
                tuple(tuple(lru) for lru in level._sets),
                frozenset(level._resident),
            )
            for level in hierarchy.levels
        ),
    )


def replay_both(addresses, sizes, repetitions=1):
    """Run one trace through scalar and batch paths on fresh machines."""
    platform = Platform.paper_testbed()
    scalar_h = platform.make_trace_hierarchy()
    batch_h = platform.make_trace_hierarchy()
    scalar_c, batch_c = PerfCounters(), PerfCounters()
    addresses = np.asarray(addresses, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    for _ in range(repetitions):
        scalar_delta = 0.0
        for address, size in zip(addresses.tolist(), sizes.tolist()):
            scalar_delta += scalar_h.access(address, size, scalar_c)
        batch_delta = batch_h.access_batch(addresses, sizes, batch_c)
    return (scalar_h, scalar_c, scalar_delta), (batch_h, batch_c, batch_delta)


def assert_identical(scalar, batch):
    scalar_h, scalar_c, scalar_delta = scalar
    batch_h, batch_c, batch_delta = batch
    # Byte-identical: no tolerance on counters or LRU state.  The batch
    # path performs the same float additions in the same order (seeded
    # cumsum), so the cycle totals match exactly.
    assert scalar_c.snapshot() == batch_c.snapshot()
    assert hierarchy_state(scalar_h) == hierarchy_state(batch_h)
    # The return values use different (equally valid) groupings of the
    # same additions — summed per-access deltas versus an end-minus-
    # start difference — so they agree to float round-off only.
    assert scalar_delta == pytest.approx(batch_delta, rel=1e-12)


class TestBatchScalarEquivalence:
    def test_sequential_trace(self):
        n = 20_000
        addresses = np.arange(0, n * 64, 64)
        assert_identical(*replay_both(addresses, np.full(n, 64)))

    def test_strided_trace(self):
        n = 20_000
        addresses = np.arange(0, n * 96, 96)
        assert_identical(*replay_both(addresses, np.full(n, 8)))

    def test_random_trace(self):
        rng = np.random.default_rng(17)
        addresses = rng.integers(0, 1 << 26, size=20_000)
        assert_identical(*replay_both(addresses, np.full(20_000, 8)))

    def test_mixed_sizes(self):
        rng = np.random.default_rng(23)
        addresses = rng.integers(0, 1 << 22, size=10_000)
        sizes = rng.integers(1, 300, size=10_000)
        assert_identical(*replay_both(addresses, sizes))

    def test_warm_replay_hits_identically(self):
        # Replaying an LLC-resident trace exercises the hit paths and
        # the cross-batch prefetcher spillover state.
        n = 3_000
        addresses = np.arange(0, n * 96, 96)
        assert_identical(*replay_both(addresses, np.full(n, 8), repetitions=3))

    def test_single_access(self):
        assert_identical(*replay_both([4096], [128]))

    def test_multi_line_spans(self):
        # Accesses straddling several lines expand to per-line touches.
        addresses = np.arange(0, 40 * 100, 100)
        assert_identical(*replay_both(addresses, np.full(40, 200)))


class TestBatchContract:
    def test_zero_size_entries_are_free(self, platform: Platform):
        hierarchy = platform.make_trace_hierarchy()
        counters = PerfCounters()
        delta = hierarchy.access_batch(
            np.array([0, 64], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
            counters,
        )
        assert delta == 0.0
        assert counters.cycles == 0.0

    def test_negative_size_raises(self, platform: Platform):
        hierarchy = platform.make_trace_hierarchy()
        with pytest.raises(StorageError):
            hierarchy.access_batch(
                np.array([0], dtype=np.int64),
                np.array([-8], dtype=np.int64),
                PerfCounters(),
            )

    def test_mismatched_shapes_rejected(self, platform: Platform):
        hierarchy = platform.make_trace_hierarchy()
        with pytest.raises(StorageError):
            hierarchy.access_batch(
                np.array([0, 64], dtype=np.int64),
                np.array([8], dtype=np.int64),
                PerfCounters(),
            )

    def test_empty_batch(self, platform: Platform):
        hierarchy = platform.make_trace_hierarchy()
        counters = PerfCounters()
        delta = hierarchy.access_batch(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), counters
        )
        assert delta == 0.0
        assert counters.snapshot() == PerfCounters().snapshot()


class TestCostCacheExactness:
    """A cache hit is the cold costing, bit for bit."""

    def fragment(self, platform, kind):
        relation = Relation(
            "t", Schema.of(("id", INT64), ("price", FLOAT64)), 4096
        )
        rows = [(i, float(i) / 2) for i in range(4096)]
        return Fragment.from_rows(
            Region.full(relation),
            relation.schema,
            kind,
            platform.host_memory,
            rows,
        )

    @pytest.mark.parametrize(
        "kind", [LinearizationKind.NSM, LinearizationKind.DSM]
    )
    def test_hit_returns_exact_cold_cycles(self, platform, kind):
        fragment = self.fragment(platform, kind)
        ctx = ExecutionContext(platform)
        cache = CostCache()
        previous = set_cost_cache(cache)
        try:
            cold = column_scan_cost(fragment, "price", ctx)
            warm = column_scan_cost(fragment, "price", ctx)
        finally:
            set_cost_cache(previous)
        assert warm == cold  # exact float equality, not approx
        assert cache.hits == 1
        assert cache.misses == 1
