"""PCIe and disk cost model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError, StorageError
from repro.hardware.disk import DiskModel
from repro.hardware.event import PerfCounters
from repro.hardware.interconnect import InterconnectModel


class TestPCIe:
    def test_zero_transfer_free(self):
        assert InterconnectModel().transfer_cost(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ExecutionError):
            InterconnectModel().transfer_cost(-1)

    def test_latency_floor(self):
        model = InterconnectModel()
        assert model.transfer_seconds(1) >= model.latency_s

    def test_bandwidth_asymptote(self):
        model = InterconnectModel()
        nbytes = 1 << 30
        assert model.transfer_seconds(nbytes) == pytest.approx(
            model.latency_s + nbytes / model.bandwidth
        )

    def test_counters(self):
        model = InterconnectModel()
        counters = PerfCounters()
        model.transfer_cost(1000, counters)
        assert counters.bytes_transferred == 1000
        assert counters.cycles > 0

    def test_transfer_dominates_gpu_compute_for_cold_column(self):
        """Panel 3 vs 4: shipping the column costs more than reducing it."""
        from repro.hardware.gpu import GPUModel

        nbytes = 40_000_000  # 5M float64 prices
        transfer = InterconnectModel().transfer_cost(nbytes)
        kernel = GPUModel().reduction_cost(5_000_000, 8)
        assert transfer > 3 * kernel


class TestDisk:
    def test_random_read_pays_seek(self):
        disk = DiskModel()
        assert disk.random_read_cost(0) == pytest.approx(
            disk.seek_s * disk.host_frequency_hz
        )

    def test_sequential_amortizes_seek(self):
        disk = DiskModel()
        nbytes = 1 << 30
        sequential = disk.sequential_read_cost(nbytes)
        page_by_page = sum(disk.random_read_cost(8192) for _ in range(10)) * (
            nbytes // (10 * 8192)
        )
        assert sequential < page_by_page

    def test_zero_sequential_free(self):
        assert DiskModel().sequential_read_cost(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            DiskModel().random_read_cost(-1)

    def test_counters(self):
        counters = PerfCounters()
        DiskModel().random_read_cost(8192, counters)
        assert counters.bytes_read == 8192


@given(st.integers(0, 1 << 32))
def test_pcie_monotone_property(nbytes):
    model = InterconnectModel()
    assert model.transfer_cost(nbytes) <= model.transfer_cost(nbytes + 1)
