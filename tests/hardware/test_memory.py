"""Unit tests for simulated memory spaces."""

import pytest

from repro.errors import CapacityError, StorageError
from repro.hardware.memory import MemoryKind, MemorySpace


@pytest.fixture
def space():
    return MemorySpace("test", MemoryKind.HOST, 1000)


class TestAllocation:
    def test_allocate_tracks_usage(self, space):
        space.allocate(300, "a")
        assert space.used == 300
        assert space.available == 700

    def test_capacity_enforced(self, space):
        space.allocate(900)
        with pytest.raises(CapacityError):
            space.allocate(200)

    def test_exact_fit_allowed(self, space):
        space.allocate(1000)
        assert space.available == 0

    def test_free_returns_budget(self, space):
        allocation = space.allocate(400)
        space.free(allocation)
        assert space.used == 0
        space.allocate(1000)  # full capacity available again

    def test_addresses_never_reused(self, space):
        first = space.allocate(100)
        space.free(first)
        second = space.allocate(100)
        assert second.base != first.base

    def test_double_free_rejected(self, space):
        allocation = space.allocate(10)
        space.free(allocation)
        with pytest.raises(StorageError):
            space.free(allocation)

    def test_negative_size_rejected(self, space):
        with pytest.raises(StorageError):
            space.allocate(-1)

    def test_zero_size_allowed(self, space):
        allocation = space.allocate(0)
        assert allocation.size == 0
        assert space.used == 0

    def test_fits(self, space):
        space.allocate(800)
        assert space.fits(200)
        assert not space.fits(201)

    def test_live_allocations_order(self, space):
        a = space.allocate(10, "a")
        b = space.allocate(10, "b")
        assert space.live_allocations == (a, b)


class TestAddressing:
    def test_address_of_offset(self, space):
        allocation = space.allocate(100, "x")
        assert allocation.address_of(0) == allocation.base
        assert allocation.address_of(99) == allocation.base + 99

    def test_address_of_out_of_bounds(self, space):
        allocation = space.allocate(100)
        with pytest.raises(StorageError):
            allocation.address_of(100)

    def test_allocations_disjoint(self, space):
        a = space.allocate(100)
        b = space.allocate(100)
        assert a.end <= b.base


class TestKinds:
    def test_is_host(self):
        assert MemoryKind.HOST.is_host
        assert not MemoryKind.DEVICE.is_host

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            MemorySpace("bad", MemoryKind.HOST, 0)
