"""GPU model tests: launch geometry, reduction roofline, bandwidth."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.hardware.event import PerfCounters
from repro.hardware.gpu import GPUModel, KernelLaunch


@pytest.fixture
def gpu():
    return GPUModel()


class TestKernelLaunch:
    def test_total_threads(self):
        assert KernelLaunch(1024, 512).total_threads == 524288

    def test_invalid_geometry(self):
        with pytest.raises(ExecutionError):
            KernelLaunch(0, 512)


class TestReduction:
    def test_empty_input_costs_nothing(self, gpu):
        assert gpu.reduction_cost(0, 8) == 0.0

    def test_negative_count_rejected(self, gpu):
        with pytest.raises(ExecutionError):
            gpu.reduction_cost(-1, 8)

    def test_too_many_threads_per_block(self, gpu):
        with pytest.raises(ExecutionError):
            gpu.reduction_cost(100, 8, threads_per_block=2048)

    def test_launch_latency_floors_small_inputs(self, gpu):
        cost = gpu.reduction_cost(10, 8)
        assert cost >= 2 * gpu.launch_latency_cycles

    def test_bandwidth_bound_at_scale(self, gpu):
        """Big reductions are bandwidth-bound: cost ~ bytes/bandwidth."""
        count = 50_000_000
        cost = gpu.reduction_cost(count, 8)
        floor = gpu.seconds_to_host_cycles(count * 8 / gpu.device_bandwidth)
        assert cost >= floor
        assert cost <= 1.2 * floor + 4 * gpu.launch_latency_cycles

    def test_two_launches_counted(self, gpu):
        counters = PerfCounters()
        gpu.reduction_cost(1_000_000, 8, counters)
        assert counters.kernel_launches == 2
        assert counters.bytes_read == 8_000_000
        assert counters.device_cycles > 0

    def test_gpu_beats_cpu_stream_at_scale(self, gpu):
        """Finding (iv): device-resident columnar sums favor the GPU."""
        from repro.hardware.cache import AnalyticMemoryModel

        count = 5_000_000
        cpu_cost = AnalyticMemoryModel().sequential(count * 8) + count
        assert gpu.reduction_cost(count, 8) < cpu_cost


class TestRoofline:
    def test_streaming_kernel_bandwidth_side(self, gpu):
        seconds = gpu.streaming_kernel_seconds(nbytes=80_000_000, ops=1)
        assert seconds == pytest.approx(80_000_000 / gpu.device_bandwidth)

    def test_streaming_kernel_compute_side(self, gpu):
        seconds = gpu.streaming_kernel_seconds(nbytes=1, ops=10**12)
        assert seconds == pytest.approx(10**12 / (gpu.total_cores * gpu.clock_hz))

    def test_total_cores(self, gpu):
        assert gpu.total_cores == 640


@given(st.integers(0, 10**8))
def test_reduction_monotone_property(count):
    gpu = GPUModel()
    assert gpu.reduction_cost(count, 8) <= gpu.reduction_cost(count + 1024, 8)
