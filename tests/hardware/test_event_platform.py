"""PerfCounters, CostBreakdown and Platform assembly tests."""

import pytest

from repro.hardware.event import CostBreakdown, PerfCounters
from repro.hardware.memory import MemoryKind
from repro.hardware.platform import Platform


class TestPerfCounters:
    def test_merge_adds_fields(self):
        a = PerfCounters(cycles=10, l1_hits=2)
        b = PerfCounters(cycles=5, l1_hits=1, bytes_read=64)
        a.merge(b)
        assert a.cycles == 15 and a.l1_hits == 3 and a.bytes_read == 64

    def test_add_operator(self):
        total = PerfCounters(cycles=1) + PerfCounters(cycles=2)
        assert total.cycles == 3

    def test_seconds(self):
        assert PerfCounters(cycles=2.6e9).seconds(2.6e9) == pytest.approx(1.0)

    def test_snapshot_and_reset(self):
        counters = PerfCounters(cycles=7, tlb_misses=3)
        snap = counters.snapshot()
        assert snap["cycles"] == 7 and snap["tlb_misses"] == 3
        counters.reset()
        assert counters.cycles == 0 and counters.tlb_misses == 0

    def test_reset_preserves_declared_counter_types(self):
        """Regression: under ``from __future__ import annotations`` a
        field's ``type`` is the string ``"int"``, so the old
        ``spec.type is int`` check silently reset every integer counter
        to ``0.0`` — after which snapshots and reports rendered event
        counts as floats and byte-identity checks across resets failed."""
        counters = PerfCounters(cycles=12.5, instructions=42, pcie_bytes=1024)
        counters.reset()
        assert counters.cycles == 0.0 and type(counters.cycles) is float
        for name in ("instructions", "pcie_bytes", "staging_hits", "transfers"):
            value = getattr(counters, name)
            assert value == 0 and type(value) is int
        # The whole snapshot must be byte-identical to a fresh bundle's.
        assert counters.snapshot() == PerfCounters().snapshot()
        assert [type(v) for v in counters.snapshot().values()] == [
            type(v) for v in PerfCounters().snapshot().values()
        ]


class TestCostBreakdown:
    def test_accumulates_labels(self):
        breakdown = CostBreakdown()
        breakdown.add("scan", 10)
        breakdown.add("scan", 5)
        breakdown.add("transfer", 85)
        assert breakdown.total == 100
        assert breakdown.share("transfer") == pytest.approx(0.85)

    def test_empty_share_is_zero(self):
        assert CostBreakdown().share("anything") == 0.0


class TestPlatform:
    def test_testbed_calibration(self):
        platform = Platform.paper_testbed()
        assert platform.cpu.cores == 4
        assert platform.cpu.frequency_hz == 2.6e9
        assert platform.gpu.sms == 5
        assert platform.gpu.cores_per_sm == 128
        assert platform.device_memory.capacity == 4044 * 1024 * 1024
        assert platform.memory_model.llc_size == 6144 * 1024

    def test_space_lookup(self):
        platform = Platform.paper_testbed()
        assert platform.space(MemoryKind.HOST) is platform.host_memory
        assert platform.space(MemoryKind.DEVICE) is platform.device_memory
        assert platform.space(MemoryKind.DISK) is platform.disk

    def test_fresh_platforms_are_independent(self):
        first = Platform.paper_testbed()
        second = Platform.paper_testbed()
        first.host_memory.allocate(1024)
        assert second.host_memory.used == 0

    def test_trace_hierarchy_matches_analytic_geometry(self):
        platform = Platform.paper_testbed()
        hierarchy = platform.make_trace_hierarchy()
        assert hierarchy.levels[-1].geometry.size == platform.memory_model.llc_size
        assert hierarchy.line == platform.memory_model.line

    def test_seconds_conversion(self):
        platform = Platform.paper_testbed()
        assert platform.seconds(2.6e9) == pytest.approx(1.0)

    def test_capacity_overrides(self):
        platform = Platform.paper_testbed(device_capacity=1000)
        assert platform.device_memory.capacity == 1000


class TestModernTestbed:
    def test_modern_machine_is_strictly_faster(self):
        """Every modern component dominates the 2017 one — the A8 sweep
        compares architectures, not a handicapped strawman."""
        old = Platform.paper_testbed()
        new = Platform.modern_testbed()
        assert new.cpu.cores > old.cpu.cores
        assert new.cpu.stream_bandwidth_aggregate > old.cpu.stream_bandwidth_aggregate
        assert new.cpu.thread_spawn_cycles < old.cpu.thread_spawn_cycles
        assert new.gpu.device_bandwidth > old.gpu.device_bandwidth
        assert new.interconnect.bandwidth > old.interconnect.bandwidth
        assert new.memory_model.llc_size > old.memory_model.llc_size

    def test_modern_scan_cheaper_in_wall_time(self):
        from repro.execution import ExecutionContext
        from repro.bench import build_column_store
        from repro.workload import item_relation

        times = {}
        for label, factory in (("old", Platform.paper_testbed), ("new", Platform.modern_testbed)):
            platform = factory()
            store = build_column_store(platform, item_relation(5_000_000))
            ctx = ExecutionContext(platform)
            from repro.execution import sum_column

            sum_column(store, "i_price", ctx)
            times[label] = ctx.seconds()
        assert times["new"] < times["old"]
