"""CPU model tests: spawn costs, scaling curves, the threading crossover."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.hardware.cpu import CPUModel


@pytest.fixture
def cpu():
    return CPUModel()


class TestSpawn:
    def test_single_thread_is_free(self, cpu):
        assert cpu.spawn_cost(1) == 0.0

    def test_spawn_scales_with_threads(self, cpu):
        assert cpu.spawn_cost(8) == 8 * cpu.thread_spawn_cycles

    def test_invalid_threads(self, cpu):
        with pytest.raises(ExecutionError):
            cpu.spawn_cost(0)


class TestScaling:
    def test_compute_speedup_linear_to_cores(self, cpu):
        assert cpu.compute_speedup(4) == 4.0

    def test_smt_yield_beyond_cores(self, cpu):
        assert cpu.compute_speedup(8) == pytest.approx(4 + 4 * cpu.smt_yield)

    def test_compute_speedup_caps_at_hw_threads(self, cpu):
        assert cpu.compute_speedup(64) == cpu.compute_speedup(8)

    def test_bandwidth_speedup_caps_at_socket(self, cpu):
        assert cpu.bandwidth_speedup(8) == pytest.approx(2.0)

    def test_bandwidth_speedup_single(self, cpu):
        assert cpu.bandwidth_speedup(1) == 1.0


class TestParallelize:
    def test_single_thread_is_plain_sum(self, cpu):
        assert cpu.parallelize(1000.0, 2000.0, 1) == 3000.0

    def test_threading_crossover(self, cpu):
        """Finding (i): tiny work -> single wins; big work -> multi wins."""
        tiny = 10_000.0
        big = 100_000_000.0
        assert cpu.parallelize(tiny, 0.0, 1) < cpu.parallelize(tiny, 0.0, 8)
        assert cpu.parallelize(big, 0.0, 8) < cpu.parallelize(big, 0.0, 1)

    def test_memory_bound_scales_by_bandwidth(self, cpu):
        work = 100_000_000.0
        multi = cpu.parallelize(0.0, work, 8)
        assert multi == pytest.approx(cpu.spawn_cost(8) + work / 2.0)

    def test_latency_bound_scales_like_compute(self, cpu):
        work = 100_000_000.0
        assert cpu.parallelize(0.0, 0.0, 8, latency_bound_cycles=work) == pytest.approx(
            cpu.spawn_cost(8) + work / cpu.compute_speedup(8)
        )

    def test_cycles_seconds_roundtrip(self, cpu):
        assert cpu.cycles_to_seconds(cpu.seconds_to_cycles(1.5)) == pytest.approx(1.5)


@given(st.floats(0, 1e9), st.floats(0, 1e9), st.integers(1, 8))
def test_parallel_never_beats_ideal(compute, memory, threads):
    cpu = CPUModel()
    total = cpu.parallelize(compute, memory, threads)
    ideal = (compute + memory) / threads
    assert total >= ideal or total == pytest.approx(ideal)


@given(st.integers(1, 16))
def test_speedups_monotone(threads):
    cpu = CPUModel()
    assert cpu.compute_speedup(threads) <= cpu.compute_speedup(threads + 1) + 1e-9
    assert cpu.bandwidth_speedup(threads) <= cpu.bandwidth_speedup(threads + 1) + 1e-9
