"""Cache simulation tests: trace-driven LRU behaviour, prefetcher, and
the analytic-vs-trace agreement that licenses the analytic fast path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.hardware.cache import AnalyticMemoryModel, CacheGeometry, CacheHierarchy, CacheLevel
from repro.hardware.event import PerfCounters
from repro.hardware.platform import Platform


def tiny_hierarchy(line=64):
    levels = (
        CacheGeometry("L1", 1024, line, 2, 4.0),
        CacheGeometry("L2", 4096, line, 4, 12.0),
    )
    return CacheHierarchy(levels, memory_latency=200.0, line_bandwidth_cycles=16.0)


class TestCacheLevel:
    def test_miss_then_hit(self):
        level = CacheLevel(CacheGeometry("L1", 1024, 64, 2, 4.0))
        assert not level.access(5)
        assert level.access(5)

    def test_lru_eviction(self):
        # 2-way: fill a set with two tags, touch a third -> first evicted.
        geometry = CacheGeometry("L1", 1024, 64, 2, 4.0)
        level = CacheLevel(geometry)
        sets = geometry.sets
        level.access(0)
        level.access(sets)      # same set, different tag
        level.access(2 * sets)  # evicts tag of line 0
        assert not level.access(0)

    def test_lru_order_updated_on_hit(self):
        geometry = CacheGeometry("L1", 1024, 64, 2, 4.0)
        level = CacheLevel(geometry)
        sets = geometry.sets
        level.access(0)
        level.access(sets)
        level.access(0)          # refresh line 0
        level.access(2 * sets)   # evicts line `sets`, not 0
        assert level.access(0)

    def test_flush(self):
        level = CacheLevel(CacheGeometry("L1", 1024, 64, 2, 4.0))
        level.access(1)
        level.flush()
        assert not level.access(1)

    def test_invalid_geometry(self):
        with pytest.raises(StorageError):
            CacheGeometry("bad", 1000, 64, 3, 4.0)


class TestHierarchy:
    def test_repeated_access_gets_cheaper(self):
        hierarchy = tiny_hierarchy()
        counters = PerfCounters()
        cold = hierarchy.access(0, 8, counters)
        warm = hierarchy.access(0, 8, counters)
        assert warm < cold

    def test_stream_prefetch_price(self):
        hierarchy = tiny_hierarchy()
        counters = PerfCounters()
        # Touch many consecutive lines; the steady-state cost per line
        # must drop to the bandwidth price once the stream is detected.
        costs = [hierarchy.access(i * 64, 64, counters) for i in range(64)]
        assert costs[-1] == pytest.approx(16.0)
        assert costs[0] == pytest.approx(200.0)

    def test_random_pattern_pays_latency(self):
        hierarchy = tiny_hierarchy()
        counters = PerfCounters()
        cost = hierarchy.access(0, 8, counters)
        cost2 = hierarchy.access(64 * 1000, 8, counters)
        assert cost == cost2 == pytest.approx(200.0)

    def test_counters_track_levels(self):
        hierarchy = tiny_hierarchy()
        counters = PerfCounters()
        hierarchy.access(0, 8, counters)
        hierarchy.access(0, 8, counters)
        assert counters.l1_misses == 1
        assert counters.l1_hits == 1

    def test_multi_line_access(self):
        hierarchy = tiny_hierarchy()
        counters = PerfCounters()
        hierarchy.access(0, 200, counters)  # 4 lines
        assert counters.l1_misses == 4

    def test_size_contract_shared_with_analytic_model(self):
        # Shared contract: zero-size work is free (0.0), negative sizes
        # are caller bugs and raise — identically on both cost planes.
        hierarchy = tiny_hierarchy()
        counters = PerfCounters()
        assert hierarchy.access(0, 0, counters) == 0.0
        assert counters.snapshot() == PerfCounters().snapshot()
        with pytest.raises(StorageError):
            hierarchy.access(0, -1, PerfCounters())

        model = AnalyticMemoryModel()
        assert model.sequential(0) == 0.0
        assert model.strided(0, 128, 8, 1 << 20) == 0.0
        assert model.random(0, 8, 1 << 20) == 0.0
        with pytest.raises(StorageError):
            model.sequential(-1)
        with pytest.raises(StorageError):
            model.strided(-1, 128, 8, 1 << 20)
        with pytest.raises(StorageError):
            model.random(-1, 8, 1 << 20)

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(StorageError):
            CacheHierarchy(
                (
                    CacheGeometry("L1", 1024, 64, 2, 4.0),
                    CacheGeometry("L2", 4096, 128, 4, 12.0),
                ),
                200.0,
                16.0,
            )


class TestAnalyticModel:
    def test_sequential_is_bandwidth_bound(self):
        model = AnalyticMemoryModel()
        one_mb = model.sequential(1 << 20)
        two_mb = model.sequential(2 << 20)
        assert two_mb / one_mb == pytest.approx(2.0, rel=0.01)

    def test_sequential_zero(self):
        assert AnalyticMemoryModel().sequential(0) == 0.0

    def test_strided_sub_line_degenerates_to_sequential(self):
        model = AnalyticMemoryModel()
        assert model.strided(1000, 32, 8, 10**9) == pytest.approx(
            model.sequential(1000 * 32)
        )

    def test_strided_wide_stride_charges_line_per_record(self):
        model = AnalyticMemoryModel()
        # 96-byte records, 8-byte field: ~2 lines per record, far more
        # expensive than the 8 contiguous bytes a DSM column pays.
        nsm = model.strided(10_000, 96, 8, 10**9)
        dsm = model.sequential(10_000 * 8)
        assert nsm > 3 * dsm

    def test_random_grows_with_footprint(self):
        model = AnalyticMemoryModel()
        small = model.random(100, 8, 4 << 20)  # fits LLC
        large = model.random(100, 8, 4 << 30)  # 4 GiB
        assert large > small

    def test_random_counts_tlb_misses(self):
        model = AnalyticMemoryModel()
        counters = PerfCounters()
        model.random(100, 8, 4 << 30, counters)
        assert counters.tlb_misses == 100

    def test_no_tlb_cost_within_stlb(self):
        model = AnalyticMemoryModel()
        assert model.page_walk_cost(model.stlb_coverage) == 0.0
        assert model.page_walk_cost(model.stlb_coverage * 4) > 0.0

    def test_page_walk_monotone(self):
        model = AnalyticMemoryModel()
        costs = [model.page_walk_cost(1 << g) for g in range(24, 36)]
        assert costs == sorted(costs)

    def test_counters_populated(self):
        model = AnalyticMemoryModel()
        counters = PerfCounters()
        model.sequential(64 * 100, counters)
        assert counters.bytes_read == 6400
        assert counters.cycles > 0

    def test_span_lines_is_ceil_of_touched_over_line(self):
        # Pinned formula: lines(t) = ceil(t / line), 0 for t <= 0 — the
        # explicit form of the old ``round(t / line) or 1`` expression.
        model = AnalyticMemoryModel()
        line = model.line
        assert model._span_lines(0) == 0
        assert model._span_lines(1) == 1
        assert model._span_lines(line) == 1
        assert model._span_lines(line + 1) == 2
        for touched in range(1, 3 * line + 2):
            assert model._span_lines(touched) == -(-touched // line)


class TestAnalyticVsTrace:
    """The validation that licenses the analytic fast path (DESIGN §6).

    Traces run through :meth:`CacheHierarchy.access_batch` at 10x the
    sizes the scalar loop could afford (the batch path is pinned
    byte-identical to the scalar one in test_batch_trace.py, so the
    agreement evidence carries over).
    """

    def test_sequential_agreement(self, platform: Platform):
        hierarchy = platform.make_trace_hierarchy()
        model = platform.memory_model
        nbytes = 5 * 1024 * 1024  # streams through L2 and most of the LLC
        addresses = np.arange(0, nbytes, 64, dtype=np.int64)
        sizes = np.full(addresses.shape, 64, dtype=np.int64)
        traced = hierarchy.access_batch(addresses, sizes, PerfCounters())
        analytic = model.sequential(nbytes)
        assert analytic == pytest.approx(traced, rel=0.35)

    def test_strided_agreement_llc_resident(self, platform: Platform):
        """Warm, LLC-resident strided scans: both models charge ~L3 hits.

        The footprint must stay inside the 6 MB LLC, so this is the one
        agreement case whose size cannot scale with the batch API.
        """
        hierarchy = platform.make_trace_hierarchy()
        model = platform.memory_model
        counters = PerfCounters()
        stride, count = 96, 30_000  # ~2.9 MB footprint, fits the 6 MB LLC
        addresses = np.arange(0, count * stride, stride, dtype=np.int64)
        sizes = np.full(addresses.shape, 8, dtype=np.int64)
        hierarchy.access_batch(addresses, sizes, counters)  # warm the LLC
        traced_warm = hierarchy.access_batch(addresses, sizes, counters)
        analytic = model.strided(count, stride, 8, count * stride)
        assert analytic == pytest.approx(traced_warm, rel=0.6)

    def test_strided_agreement_memory_bound(self, platform: Platform):
        """Miss-dominated strided scans: the trace serializes latencies;
        an out-of-order core overlaps ~mlp of them, which is exactly the
        analytic model's divisor -- so traced/mlp must match."""
        hierarchy = platform.make_trace_hierarchy()
        model = platform.memory_model
        stride, count = 96, 2_000_000  # ~190 MB footprint, far beyond LLC
        addresses = np.arange(0, count * stride, stride, dtype=np.int64)
        sizes = np.full(addresses.shape, 8, dtype=np.int64)
        traced = hierarchy.access_batch(addresses, sizes, PerfCounters())
        analytic = model.strided(count, stride, 8, count * stride)
        assert analytic == pytest.approx(traced / model.mlp, rel=0.5)

    def test_nsm_vs_dsm_ordering_matches_trace(self, platform: Platform):
        """The *ordering* (who wins) must agree exactly, not just costs."""
        model = platform.memory_model
        count = 500_000
        counters = PerfCounters()
        hierarchy = platform.make_trace_hierarchy()
        nsm_addresses = np.arange(0, count * 96, 96, dtype=np.int64)
        sizes = np.full(nsm_addresses.shape, 8, dtype=np.int64)
        nsm_traced = hierarchy.access_batch(nsm_addresses, sizes, counters)
        hierarchy = platform.make_trace_hierarchy()
        dsm_addresses = np.arange(
            10**9, 10**9 + count * 8, 8, dtype=np.int64
        )
        dsm_traced = hierarchy.access_batch(dsm_addresses, sizes, counters)
        nsm_analytic = model.strided(count, 96, 8, count * 96)
        dsm_analytic = model.sequential(count * 8)
        assert (nsm_traced > dsm_traced) == (nsm_analytic > dsm_analytic)


@given(st.integers(1, 10**7))
@settings(max_examples=50)
def test_sequential_monotone_property(nbytes):
    model = AnalyticMemoryModel()
    assert model.sequential(nbytes) <= model.sequential(nbytes + 64)


@given(st.integers(1, 10**5), st.integers(65, 512), st.integers(1, 64))
@settings(max_examples=50)
def test_strided_non_negative_property(count, stride, touched):
    model = AnalyticMemoryModel()
    assert model.strided(count, stride, touched, count * stride) >= 0


class TestRandomPatternAgreement:
    """Random point accesses: trace (serialized) vs analytic (MLP)."""

    def test_random_agreement_memory_bound(self, platform: Platform):
        hierarchy = platform.make_trace_hierarchy()
        model = platform.memory_model
        count = 30_000
        footprint = 64 << 20  # 64 MiB, far beyond LLC
        rng = np.random.default_rng(9)
        addresses = rng.integers(0, footprint - 8, size=count)
        sizes = np.full(addresses.shape, 8, dtype=np.int64)
        traced = hierarchy.access_batch(addresses, sizes, PerfCounters())
        analytic = model.random(count, 8, footprint)
        # Subtract the analytic TLB term (the trace has no TLB) and
        # compare the cache part against the trace divided by the
        # model's effective overlap for single-line point accesses
        # (min(mlp, lines+1) = 2: point chases overlap less than scans).
        walk = model.page_walk_cost(footprint) * count
        effective_overlap = min(model.mlp, 2.0)
        assert analytic - walk == pytest.approx(
            traced / effective_overlap, rel=0.35
        )

    def test_random_vs_sequential_ordering(self, platform: Platform):
        """Random accesses must always price above a same-byte stream."""
        model = platform.memory_model
        for count in (100, 10_000):
            random_cost = model.random(count, 8, 1 << 30)
            stream_cost = model.sequential(count * 8)
            assert random_cost > stream_cost
