"""TPC-C-like generator tests: the paper's byte geometry, determinism."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.tpcc import (
    CUSTOMER_FIELDS,
    CUSTOMER_RECORD_BYTES,
    ITEM_FIELDS,
    ITEM_RECORD_BYTES,
    customer_relation,
    customer_schema,
    generate_customers,
    generate_items,
    item_relation,
    item_schema,
)


class TestPaperGeometry:
    def test_customer_is_96_bytes_21_fields(self):
        schema = customer_schema()
        assert schema.record_width == CUSTOMER_RECORD_BYTES == 96
        assert schema.arity == CUSTOMER_FIELDS == 21

    def test_item_is_20_plus_8_bytes(self):
        schema = item_schema()
        assert schema.record_width == ITEM_RECORD_BYTES == 28
        assert schema.arity == ITEM_FIELDS == 5
        assert schema.attribute("i_price").width == 8
        non_price = schema.record_width - schema.attribute("i_price").width
        assert non_price == 20

    def test_relations(self):
        assert customer_relation(10).row_count == 10
        assert item_relation(10).nsm_bytes == 280


class TestGenerators:
    def test_deterministic(self):
        first = generate_items(100, seed=3)
        second = generate_items(100, seed=3)
        for name in first:
            assert np.array_equal(first[name], second[name])

    def test_different_seeds_differ(self):
        a = generate_items(100, seed=1)["i_price"]
        b = generate_items(100, seed=2)["i_price"]
        assert not np.array_equal(a, b)

    def test_columns_match_schema(self):
        columns = generate_customers(50)
        schema = customer_schema()
        assert set(columns) == set(schema.names)
        for attribute in schema:
            assert columns[attribute.name].dtype.itemsize == attribute.width
            assert len(columns[attribute.name]) == 50

    def test_ids_are_sequential(self):
        assert list(generate_items(5)["i_id"]) == [0, 1, 2, 3, 4]

    def test_prices_in_range(self):
        prices = generate_items(1000)["i_price"]
        assert prices.min() >= 1.0 and prices.max() < 100.0

    def test_zero_rows(self):
        columns = generate_items(0)
        assert all(len(values) == 0 for values in columns.values())

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            generate_items(-1)
        with pytest.raises(WorkloadError):
            generate_customers(-1)
