"""Query specs, HTAP mixes, and workload trace tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.execution.access import AccessKind
from repro.workload.htap import HTAPMix
from repro.workload.queries import QueryShape, QuerySpec, random_positions
from repro.workload.tpcc import item_relation
from repro.workload.trace import WorkloadTrace


class TestQuerySpec:
    def test_point_needs_positions(self):
        with pytest.raises(WorkloadError):
            QuerySpec(QueryShape.POINT_MATERIALIZE, "item", ("i_id",))

    def test_full_sum_takes_no_positions(self):
        with pytest.raises(WorkloadError):
            QuerySpec(QueryShape.FULL_SUM, "item", ("i_price",), positions=(1,))

    def test_describe_full_sum_is_attribute_centric(self):
        relation = item_relation(10_000)
        spec = QuerySpec(QueryShape.FULL_SUM, "item", ("i_price",))
        descriptor = spec.describe(relation)
        assert descriptor.is_attribute_centric
        assert descriptor.kind is AccessKind.READ

    def test_describe_point_materialize_is_record_centric(self):
        relation = item_relation(10_000)
        spec = QuerySpec(
            QueryShape.POINT_MATERIALIZE, "item", relation.schema.names, positions=(5,)
        )
        assert spec.describe(relation).is_record_centric

    def test_update_is_write(self):
        relation = item_relation(100)
        spec = QuerySpec(QueryShape.POINT_UPDATE, "item", ("i_price",), positions=(5,))
        assert spec.describe(relation).kind is AccessKind.WRITE


class TestRandomPositions:
    def test_sorted_and_distinct(self):
        positions = random_positions(1000, 150)
        assert list(positions) == sorted(set(positions))
        assert len(positions) == 150

    def test_deterministic(self):
        assert random_positions(1000, 10, seed=5) == random_positions(1000, 10, seed=5)

    def test_oversample_rejected(self):
        with pytest.raises(WorkloadError):
            random_positions(10, 11)


class TestHTAPMix:
    def test_deterministic_stream(self):
        relation = item_relation(1000)
        mix = HTAPMix(relation, seed=9)
        assert mix.query_list(50) == mix.query_list(50)

    def test_pure_olap(self):
        relation = item_relation(1000)
        mix = HTAPMix(relation, oltp_fraction=0.0)
        assert all(q.shape is QueryShape.FULL_SUM for q in mix.queries(30))

    def test_pure_oltp(self):
        relation = item_relation(1000)
        mix = HTAPMix(relation, oltp_fraction=1.0)
        shapes = {q.shape for q in mix.queries(30)}
        assert shapes <= {QueryShape.POINT_MATERIALIZE, QueryShape.POINT_UPDATE}

    def test_fraction_roughly_respected(self):
        relation = item_relation(1000)
        mix = HTAPMix(relation, oltp_fraction=0.7, seed=3)
        queries = mix.query_list(400)
        oltp = sum(q.shape is not QueryShape.FULL_SUM for q in queries)
        assert 0.6 <= oltp / 400 <= 0.8

    def test_olap_attributes_numeric_by_default(self):
        relation = item_relation(1000)
        mix = HTAPMix(relation, oltp_fraction=0.0, seed=1)
        for query in mix.queries(20):
            dtype = relation.schema.attribute(query.attributes[0]).dtype
            assert dtype.numpy_dtype().kind in ("i", "f")

    def test_invalid_fractions(self):
        relation = item_relation(10)
        with pytest.raises(WorkloadError):
            HTAPMix(relation, oltp_fraction=1.5)
        with pytest.raises(WorkloadError):
            HTAPMix(relation, oltp_write_fraction=-0.1)


class TestWorkloadTrace:
    def make_event(self, rows=1, attrs=("a",), kind=AccessKind.READ):
        from repro.execution.access import AccessDescriptor

        return AccessDescriptor(kind, attrs, rows, 1000, 5)

    def test_record_and_window(self):
        trace = WorkloadTrace()
        for _ in range(5):
            trace.record(self.make_event())
        assert len(trace.window()) == 5
        assert len(trace.window(2)) == 2
        assert trace.window(0) == ()

    def test_capacity_evicts_fifo(self):
        trace = WorkloadTrace(capacity=3)
        for rows in range(5):
            trace.record(self.make_event(rows=rows + 1))
        assert len(trace) == 3
        assert trace.total_recorded == 5
        assert [e.row_count for e in trace] == [3, 4, 5]

    def test_fractions(self):
        trace = WorkloadTrace()
        trace.record(self.make_event(rows=1000, attrs=("a",)))  # attribute-centric
        trace.record(
            self.make_event(rows=1, attrs=tuple("abcde"), kind=AccessKind.WRITE)
        )
        assert trace.read_fraction() == 0.5
        assert trace.attribute_centric_fraction() == 0.5
        assert trace.record_centric_fraction() == 0.5

    def test_empty_defaults(self):
        trace = WorkloadTrace()
        assert trace.read_fraction() == 1.0
        assert trace.record_centric_fraction() == 0.0

    def test_clear(self):
        trace = WorkloadTrace()
        trace.record(self.make_event())
        trace.clear()
        assert len(trace) == 0 and trace.total_recorded == 0


@given(st.integers(1, 300), st.integers(1, 50))
@settings(max_examples=30)
def test_trace_capacity_invariant(events, capacity):
    from repro.execution.access import AccessDescriptor

    trace = WorkloadTrace(capacity=capacity)
    for _ in range(events):
        trace.record(AccessDescriptor(AccessKind.READ, ("a",), 1, 10, 2))
    assert len(trace) == min(events, capacity)
    assert trace.total_recorded == events
