"""The serving verifier's gates and CLI record."""

from __future__ import annotations

import json

from repro.serving.verifier import (
    MAX_TAIL_RATIO,
    MIN_BATCH_SPEEDUP,
    run_serving_verifier,
)


class TestGates:
    def test_all_gates_pass_on_the_smoke_cell(self):
        record = run_serving_verifier([5], smoke=True)
        assert record["ok"] is True
        cell = record["seeds"]["5"]
        assert all(cell["gates"].values()), cell["gates"]
        assert cell["identity_mismatches"] == 0
        assert cell["speedup"] >= MIN_BATCH_SPEEDUP
        assert 0 < cell["bounded"]["tail_ratio"] <= MAX_TAIL_RATIO
        assert cell["chaos_injected"] > 0
        assert cell["chaos_unaccounted"] == 0

    def test_record_is_json_serializable_and_self_describing(self):
        record = run_serving_verifier([5], smoke=True)
        text = json.dumps(record, sort_keys=True)
        assert "thresholds" in record and "config" in record
        assert json.loads(text)["bench"] == "serving"

    def test_per_tenant_latency_percentiles_in_the_record(self):
        from repro.obs.bench import validate_bench_record

        record = run_serving_verifier([5], smoke=True)
        assert validate_bench_record(record) == []
        summaries = record["seeds"]["5"]["tenant_latency"]
        assert summaries  # at least one tenant served
        for tenant, stats in summaries.items():
            assert tenant.startswith("t")
            assert stats["count"] > 0
            assert 0 < stats["p50"] <= stats["p95"] <= stats["p99"]


class TestCLI:
    def test_main_smoke_writes_the_record_and_exits_zero(self, tmp_path, capsys):
        from repro.serving.__main__ import main

        output = tmp_path / "BENCH_serving.json"
        code = main(["--smoke", "--seeds", "5", "--output", str(output)])
        assert code == 0
        record = json.loads(output.read_text())
        assert record["ok"] is True
        assert capsys.readouterr().out.count("serving verifier: OK") == 1
