"""Regression: the serving loop's rebalancer trigger cadence.

ROADMAP item: "wire a trigger loop" for the elastic rebalancer.  The
serving loop polls ``rebalance_once`` on a configurable cadence while
admitted queries keep flowing; this test pins down that (a) cadence
ticks actually commit migrations, (b) queries interleave *inside* the
migration window (between copy and cutover), and (c) every answer
served across the epoch bumps is byte-identical to the single-node
oracle.
"""

from __future__ import annotations

import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.execution.context import ExecutionContext
from repro.faults.injector import FaultInjector
from repro.hardware.platform import Platform
from repro.obs.metrics import MetricsRegistry
from repro.rebalance.driver import Rebalancer
from repro.rebalance.migrator import LiveMigrator
from repro.rebalance.planner import RebalancePlanner
from repro.rebalance.skew import SkewDetector
from repro.rebalance.verifier import build_skewed_stream
from repro.recovery.replicated import ReplicatedLog
from repro.recovery.wal import WriteAheadLog
from repro.serving.admission import AdmissionQueue
from repro.serving.arrivals import QueryArrival
from repro.serving.server import ServingLoop, ShardedBackend
from repro.sharding.detector import FailureDetector
from repro.sharding.executor import ShardedExecutor
from repro.sharding.placement import ShardMap, ShardingScheme
from repro.sharding.router import Router
from repro.sharding.verifier import SingleNodeOracle, build_columns

ROWS = 2048
ARRIVAL_GAP = 200_000.0


@pytest.fixture
def sharded_env():
    """A healthy 4-node sharded deployment plus its rebalancer."""
    platform = Platform()
    injector = FaultInjector(seed=0)  # present but nothing armed
    injector.install(platform)
    cluster = Cluster(4)
    dfs = BlockStore(cluster, replication=2, block_size=64 * 1024, injector=injector)
    columns = build_columns(ROWS)
    shard_map = ShardMap(
        "orders", columns, cluster, dfs, 8, scheme=ShardingScheme.RANGE
    )
    metrics = MetricsRegistry()
    replicated = ReplicatedLog(dfs, name="orders")
    wal = WriteAheadLog(platform, group_commit=1, replicator=replicated.on_flush)
    executor = ShardedExecutor(
        Router(shard_map),
        injector,
        detector=FailureDetector(),
        wal=wal,
        replicated=replicated,
        metrics=metrics,
    )
    migrator = LiveMigrator(shard_map, wal, injector, replicated=replicated)
    rebalancer = Rebalancer(
        SkewDetector(metrics, shard_map, threshold=1.25),
        RebalancePlanner(shard_map, target_ratio=1.15),
        migrator,
    )
    oracle = SingleNodeOracle(columns, executor.update_value)
    ctx = ExecutionContext(platform)
    return platform, executor, rebalancer, oracle, ctx, shard_map, metrics


def _skewed_arrivals(count: int) -> list[QueryArrival]:
    """A hot-eighth point stream spaced evenly on the timeline."""
    stream = build_skewed_stream(ROWS, count, seed=3, hot_fraction=8 / 15)
    return [
        QueryArrival(seq, (seq + 1) * ARRIVAL_GAP, f"t{seq % 2}", 0, 1.0, spec)
        for seq, spec in enumerate(stream)
    ]


class TestRebalanceCadence:
    def test_migrations_interleave_with_admitted_queries(self, sharded_env):
        platform, executor, rebalancer, oracle, ctx, shard_map, metrics = (
            sharded_env
        )
        arrivals = _skewed_arrivals(48)
        loop = ServingLoop(
            backend=ShardedBackend(executor),
            ctx=ctx,
            queue=AdmissionQueue(),
            registry=metrics,
            rebalancer=rebalancer,
            rebalance_interval_cycles=12 * ARRIVAL_GAP,
            rebalance_interleave=2,
        )
        report = loop.run(arrivals)

        # (a) the cadence fired and committed real migrations.
        assert report.rebalances, "the trigger loop never polled"
        committed = sum(tick.committed for tick in report.rebalances)
        assert committed >= 1
        assert shard_map.epoch >= 1

        # (b) queries ran inside at least one migration window.
        assert any(
            tick.interleaved_queries >= 1
            for tick in report.rebalances
            if tick.committed
        ), [
            (tick.committed, tick.interleaved_queries)
            for tick in report.rebalances
        ]

        # (c) every answer across epoch bumps matches the oracle.
        assert len(report.executed) == len(arrivals)
        by_seq = sorted(report.executed, key=lambda record: record.seq)
        replayed = [
            oracle.answer(arrivals[record.seq].spec) for record in by_seq
        ]
        for record, expected in zip(by_seq, replayed):
            assert record.answer == oracle_encoded(expected)

        # Rebalance cycles are honestly charged into the shared totals.
        rebalance_cycles = sum(
            snapshot["cycles"]
            for snapshot in metrics.dump()["queries"]
            if snapshot["query"].startswith("rebalance.")
        )
        assert rebalance_cycles > 0
        assert metrics.totals.snapshot() == ctx.counters.snapshot()


def oracle_encoded(value) -> bytes:
    """The oracle answer in the executor's canonical byte encoding."""
    from repro.sharding.verifier import encode_answer

    return encode_answer(value)
