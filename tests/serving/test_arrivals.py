"""Open-loop arrival processes and the multi-tenant generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.serving.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TenantSpec,
    WorkloadGenerator,
)
from repro.workload.tpcc import item_relation

HORIZON = 2_000_000.0


def _rng(seed: int = 3) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestProcesses:
    def test_poisson_mean_gap_is_roughly_the_mean(self):
        cycles = PoissonArrivals(10_000.0).cycles_until(_rng(), 10_000_000.0, 10_000)
        gaps = np.diff([0.0, *cycles])
        assert 8_000.0 < float(np.mean(gaps)) < 12_000.0

    def test_arrivals_are_sorted_and_within_horizon(self):
        for process in (
            PoissonArrivals(5_000.0),
            BurstyArrivals(5_000.0),
            DiurnalArrivals(2_500.0, period_cycles=HORIZON / 2),
        ):
            cycles = process.cycles_until(_rng(), HORIZON, 10_000)
            assert cycles, f"{process} produced no arrivals"
            assert cycles == sorted(cycles)
            assert all(0.0 < cycle <= HORIZON for cycle in cycles)

    def test_limit_caps_the_stream(self):
        cycles = PoissonArrivals(10.0).cycles_until(_rng(), HORIZON, 17)
        assert len(cycles) == 17

    def test_bursty_has_higher_variance_than_poisson(self):
        poisson = PoissonArrivals(10_000.0).cycles_until(_rng(1), 20_000_000.0, 5_000)
        bursty = BurstyArrivals(10_000.0).cycles_until(_rng(1), 20_000_000.0, 5_000)
        poisson_cv = np.std(np.diff(poisson)) / np.mean(np.diff(poisson))
        bursty_cv = np.std(np.diff(bursty)) / np.mean(np.diff(bursty))
        assert bursty_cv > poisson_cv

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(0.0)
        with pytest.raises(WorkloadError):
            BurstyArrivals(100.0, burst_factor=0.5)
        with pytest.raises(WorkloadError):
            DiurnalArrivals(100.0, period_cycles=1000.0, floor=1.5)
        with pytest.raises(WorkloadError):
            PoissonArrivals(100.0).cycles_until(_rng(), 0.0, 10)


class TestTenantSpec:
    def test_rejects_nonpositive_weight_and_negative_priority(self):
        process = PoissonArrivals(100.0)
        with pytest.raises(WorkloadError):
            TenantSpec("t", process, weight=0.0)
        with pytest.raises(WorkloadError):
            TenantSpec("t", process, priority=-1)


class TestWorkloadGenerator:
    def _generator(self, seed: int = 0, tenant_count: int = 3) -> WorkloadGenerator:
        tenants = tuple(
            TenantSpec(
                f"t{index}",
                PoissonArrivals(50_000.0),
                weight=1.0 + index,
                priority=index % 2,
                seed_offset=index,
            )
            for index in range(tenant_count)
        )
        return WorkloadGenerator(item_relation(10_000), tenants, seed=seed)

    def test_merged_stream_is_time_sorted_with_dense_seqs(self):
        arrivals = self._generator().arrivals(HORIZON)
        assert arrivals
        assert [a.seq for a in arrivals] == list(range(len(arrivals)))
        cycles = [a.cycle for a in arrivals]
        assert cycles == sorted(cycles)

    def test_same_seed_is_byte_identical_different_seed_is_not(self):
        first = self._generator(seed=5).arrivals(HORIZON)
        second = self._generator(seed=5).arrivals(HORIZON)
        other = self._generator(seed=6).arrivals(HORIZON)
        assert first == second
        assert first != other

    def test_arrivals_carry_tenant_identity_and_rights(self):
        arrivals = self._generator().arrivals(HORIZON)
        by_tenant = {a.tenant for a in arrivals}
        assert by_tenant == {"t0", "t1", "t2"}
        for arrival in arrivals:
            index = int(arrival.tenant[1:])
            assert arrival.weight == 1.0 + index
            assert arrival.priority == index % 2
            assert arrival.spec.relation_name == "item"

    def test_duplicate_tenant_names_are_rejected(self):
        process = PoissonArrivals(100.0)
        with pytest.raises(WorkloadError):
            WorkloadGenerator(
                item_relation(100),
                (TenantSpec("t", process), TenantSpec("t", process)),
            )

    def test_no_tenants_is_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(item_relation(100), ())
