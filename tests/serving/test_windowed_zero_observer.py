"""The time-series plane must not perturb a serving run byte-for-byte.

The windowed registry hooks in the serving loop, staging manager,
transfer scheduler and fault injector only ever *read* the simulated
clock — they never charge a cycle and never draw randomness.  These
tests run identical serving cells with the plane on and off and compare
the full observable behaviour: answers, makespan, and every counter.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.obs.timeseries import WindowedRegistry
from repro.serving.server import BATCH_16
from repro.serving.verifier import build_tenants, serve_once


def fingerprint(outcome):
    return {
        "answers": [
            (seq, repr(answer))
            for seq, __, answer in outcome.loop.answers_for_replay()
        ],
        "makespan": outcome.report.makespan_cycles,
        "snapshot": outcome.ctx.counters.snapshot(),
    }


def run_cell(seed, overflow_rate, registry):
    horizon = 300_000.0
    tenants = build_tenants(2, 40_000.0, "poisson", horizon)
    return serve_once(
        seed,
        2_000,
        tenants,
        horizon,
        BATCH_16,
        max_backlog=8 if overflow_rate else None,
        overflow_rate=overflow_rate,
        registry=registry,
    )


class TestWindowedZeroObserver:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        chaotic=st.booleans(),
    )
    def test_windowed_run_is_byte_identical(self, seed, chaotic):
        overflow = 0.08 if chaotic else 0.0
        plain = run_cell(seed, overflow, registry=None)
        windowed = run_cell(seed, overflow, registry=WindowedRegistry())
        assert fingerprint(windowed) == fingerprint(plain)

    def test_windowed_run_actually_recorded_series(self):
        registry = WindowedRegistry()
        run_cell(5, 0.0, registry=registry)
        assert registry.matching("serving.latency")
        assert registry.matching("serving.served")
        assert registry.total("serving.served") > 0

    def test_windowed_run_closes_against_root_counters(self):
        registry = WindowedRegistry()
        outcome = run_cell(5, 0.08, registry=registry)
        assert registry.verify_closure(outcome.ctx.counters) == []
