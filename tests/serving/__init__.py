"""Tests for the concurrent multi-tenant serving tier."""
