"""Admission control: WFQ fairness, priority classes, bounded shedding."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionRejected
from repro.faults.injector import FaultInjector
from repro.serving.admission import SITE_QUEUE_OVERFLOW, AdmissionQueue
from repro.serving.arrivals import QueryArrival
from repro.workload.queries import QueryShape, QuerySpec

SPEC = QuerySpec(QueryShape.FULL_SUM, "item", ("i_price",))


def _arrival(
    seq: int, tenant: str = "t0", priority: int = 0, weight: float = 1.0
) -> QueryArrival:
    return QueryArrival(seq, float(seq), tenant, priority, weight, SPEC)


class TestFairness:
    def test_weighted_tenant_drains_proportionally(self):
        queue = AdmissionQueue()
        seq = 0
        for __ in range(4):
            queue.admit(_arrival(seq, "heavy", weight=2.0))
            seq += 1
            queue.admit(_arrival(seq, "light", weight=1.0))
            seq += 1
        first_six = [entry.tenant for entry in queue.ordered()[:6]]
        # Virtual finish tags grow half as fast for the weight-2 tenant:
        # it holds 4 of the first 6 service slots.
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_priority_classes_are_strict(self):
        queue = AdmissionQueue()
        queue.admit(_arrival(0, "batch", priority=1))
        queue.admit(_arrival(1, "interactive", priority=0))
        assert [e.tenant for e in queue.ordered()] == ["interactive", "batch"]

    def test_take_advances_the_virtual_clock(self):
        queue = AdmissionQueue()
        for seq in range(3):
            queue.admit(_arrival(seq, "busy"))
        for entry in queue.ordered():
            queue.take(entry)
        # A tenant arriving after the backlog drained must not get a
        # stale (smaller) tag and starve the earlier tenant's next query.
        queue.admit(_arrival(10, "busy"))
        queue.admit(_arrival(11, "late"))
        tags = {entry.tenant: queue.rank(entry)[1] for entry in queue.pending}
        assert tags["late"] >= 3.0
        assert tags["busy"] >= 3.0


class TestBoundedBacklog:
    def test_overflow_sheds_the_newcomer_on_priority_tie(self):
        queue = AdmissionQueue(max_backlog=2)
        queue.admit(_arrival(0))
        queue.admit(_arrival(1))
        with pytest.raises(AdmissionRejected):
            queue.admit(_arrival(2))
        assert queue.shed == 1
        assert len(queue) == 2

    def test_urgent_newcomer_displaces_the_worst_waiting_entry(self):
        queue = AdmissionQueue(max_backlog=2)
        queue.admit(_arrival(0, priority=0))
        queue.admit(_arrival(1, "victim", priority=1))
        victim = queue.admit(_arrival(2, "urgent", priority=0))
        assert victim is not None and victim.tenant == "victim"
        assert queue.shed == 1
        assert {entry.seq for entry in queue.pending} == {0, 2}

    def test_unbounded_queue_never_sheds(self):
        queue = AdmissionQueue(max_backlog=None)
        for seq in range(100):
            assert queue.admit(_arrival(seq)) is None
        assert queue.shed == 0
        assert len(queue) == 100

    def test_backlog_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_backlog=0)


class TestInjectedOverflow:
    def test_armed_site_sheds_with_injected_flag(self):
        injector = FaultInjector(seed=1).arm(
            SITE_QUEUE_OVERFLOW, 1.0, max_faults=1
        )
        queue = AdmissionQueue(max_backlog=None, injector=injector)
        with pytest.raises(AdmissionRejected) as caught:
            queue.admit(_arrival(0))
        assert getattr(caught.value, "injected", False) is True
        assert queue.shed == 1
        assert injector.report.injected == 1
        # The cap is spent: the next admission goes through.
        assert queue.admit(_arrival(1)) is None

    def test_injected_shed_counts_into_given_counters(self):
        from repro.hardware.event import PerfCounters

        injector = FaultInjector(seed=1).arm(
            SITE_QUEUE_OVERFLOW, 1.0, max_faults=1
        )
        queue = AdmissionQueue(injector=injector)
        counters = PerfCounters()
        with pytest.raises(AdmissionRejected):
            queue.admit(_arrival(0), counters)
        assert counters.faults_injected == 1
