"""The GPU batch path: byte-identical answers, amortized fixed costs."""

from __future__ import annotations

import pytest

from repro.execution.context import ExecutionContext
from repro.execution.device import device_sum_column
from repro.hardware.platform import Platform
from repro.serving.batch import run_device_batch
from repro.serving.verifier import build_item_store

ROWS = 10_000


@pytest.fixture
def store(platform):
    return build_item_store(platform, ROWS)


class TestByteIdentity:
    def test_batched_answers_equal_serial_answers_exactly(self, platform, store):
        attributes = ["i_price", "i_im_id", "i_price", "i_price", "i_im_id"]
        batch_ctx = ExecutionContext(platform)
        batched = run_device_batch(store, attributes, batch_ctx)

        serial_platform = Platform.paper_testbed()
        serial_store = build_item_store(serial_platform, ROWS)
        serial_ctx = ExecutionContext(serial_platform)
        serial = [
            device_sum_column(serial_store, attribute, serial_ctx)
            for attribute in attributes
        ]
        assert batched == serial  # exact ==, never a tolerance

    def test_empty_batch_is_a_no_op(self, ctx, store):
        assert run_device_batch(store, [], ctx) == []
        assert ctx.counters.cycles == 0.0


class TestAmortization:
    def test_one_batch_pays_two_launches_total(self, ctx, store):
        run_device_batch(store, ["i_price"] * 8, ctx)
        assert ctx.counters.kernel_launches == 2

    def test_serial_dispatch_pays_per_query_launches(self, platform, store):
        ctx = ExecutionContext(platform)
        for __ in range(8):
            device_sum_column(store, "i_price", ctx)
        assert ctx.counters.kernel_launches == 16

    def test_duplicates_deduplicate_staging_traffic(self, platform, store):
        ctx = ExecutionContext(platform)
        run_device_batch(store, ["i_price"] * 6, ctx)
        width = store.relation.schema.attribute("i_price").width
        # One column staged once + the K-scalar result copy: far less
        # wire traffic than six independent column transfers.
        assert ctx.counters.pcie_bytes < 2 * ROWS * width

    def test_batch_is_cheaper_than_serial_for_the_same_queries(
        self, platform, store
    ):
        batch_ctx = ExecutionContext(platform)
        run_device_batch(store, ["i_price"] * 8, batch_ctx)

        serial_platform = Platform.paper_testbed()
        serial_store = build_item_store(serial_platform, ROWS)
        serial_ctx = ExecutionContext(serial_platform)
        for __ in range(8):
            device_sum_column(serial_store, "i_price", serial_ctx)
        assert batch_ctx.counters.cycles < serial_ctx.counters.cycles / 2

    def test_warm_batch_hits_the_staging_cache(self, ctx, store):
        run_device_batch(store, ["i_price", "i_im_id"], ctx)
        before = ctx.counters.pcie_bytes
        run_device_batch(store, ["i_price", "i_im_id"], ctx)
        assert ctx.counters.staging_hits >= 2
        # Second batch ships only the result copy, not the columns.
        width_sum = sum(
            store.relation.schema.attribute(a).width
            for a in ("i_price", "i_im_id")
        )
        assert ctx.counters.pcie_bytes - before == width_sum
