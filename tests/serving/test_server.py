"""The serving loop: serial equivalence, write barriers, attribution."""

from __future__ import annotations

import pytest

from repro.execution.context import ExecutionContext
from repro.obs.metrics import MetricsRegistry
from repro.serving.admission import AdmissionQueue
from repro.serving.arrivals import QueryArrival
from repro.serving.server import (
    BATCH_16,
    SERIAL_DISPATCH,
    BatchPolicy,
    LayoutBackend,
    ServingLoop,
)
from repro.serving.verifier import (
    build_item_store,
    build_tenants,
    identity_mismatches,
    serve_once,
)
from repro.sharding.verifier import encode_answer
from repro.workload.queries import QueryShape, QuerySpec

ROWS = 10_000
HORIZON = 2_000_000.0


def _sum(attr: str = "i_price") -> QuerySpec:
    return QuerySpec(QueryShape.FULL_SUM, "item", (attr,))


def _update(position: int, attr: str = "i_price") -> QuerySpec:
    return QuerySpec(QueryShape.POINT_UPDATE, "item", (attr,), (position,))


def _arrivals(specs: list[QuerySpec]) -> list[QueryArrival]:
    return [
        QueryArrival(seq, 0.0, "t0", 0, 1.0, spec)
        for seq, spec in enumerate(specs)
    ]


def _loop(platform, policy: BatchPolicy = BATCH_16, max_backlog=None) -> ServingLoop:
    store = build_item_store(platform, ROWS)
    return ServingLoop(
        backend=LayoutBackend(platform, store),
        ctx=ExecutionContext(platform),
        queue=AdmissionQueue(max_backlog),
        policy=policy,
        registry=MetricsRegistry(),
    )


class TestWriteBarriers:
    def test_reads_never_cross_a_write(self, platform):
        loop = _loop(platform)
        write_seq = 4
        specs = [_sum()] * write_seq + [_update(17)] + [_sum()] * 4
        report = loop.run(_arrivals(specs))
        by_seq = {record.seq: record for record in report.executed}
        write = by_seq[write_seq]
        for seq, record in by_seq.items():
            if seq < write_seq:
                assert record.finish_cycle <= write.start_cycle
            elif seq > write_seq:
                assert record.start_cycle >= write.finish_cycle

    def test_write_changes_later_answers_exactly_as_serial(self, platform):
        loop = _loop(platform)
        specs = [_sum(), _update(17), _sum()]
        report = loop.run(_arrivals(specs))
        answers = {record.seq: record.answer for record in report.executed}
        assert answers[0] != answers[2]
        expected_written = float(17 % 97)
        assert answers[2] == pytest.approx(
            answers[0]
            - build_item_store(platform, ROWS)
            .fragments_for_attribute("i_price")[0]
            .column("i_price")[17]
            + expected_written
        )

    def test_batches_form_between_barriers(self, platform):
        loop = _loop(platform)
        specs = [_sum()] * 6 + [_update(3)] + [_sum()] * 6
        report = loop.run(_arrivals(specs))
        assert report.units == 3
        assert report.batches == 2
        assert len(report.executed) == 13


class TestServingLoop:
    def test_serial_policy_dispatches_one_query_per_unit(self, platform):
        loop = _loop(platform, SERIAL_DISPATCH)
        report = loop.run(_arrivals([_sum()] * 5))
        assert report.units == 5
        assert report.batches == 0

    def test_all_arrivals_are_served_or_shed(self):
        outcome = serve_once(
            seed=3,
            row_count=ROWS,
            tenants=build_tenants(3, 30_000.0, "poisson", HORIZON),
            horizon_cycles=HORIZON,
            policy=BATCH_16,
            max_backlog=8,
        )
        assert len(outcome.report.executed) + len(outcome.report.shed) == len(
            outcome.arrivals
        )
        assert outcome.report.shed  # the bound actually bit

    def test_latency_is_finish_minus_arrival(self, platform):
        loop = _loop(platform)
        report = loop.run(_arrivals([_sum()] * 3))
        for record in report.executed:
            assert record.latency_cycles == pytest.approx(
                record.finish_cycle - record.arrival_cycle
            )
        histogram = loop.registry.histogram("serving.latency_cycles")
        assert len(histogram.values) == len(report.executed)

    def test_clock_jumps_idle_gaps(self, platform):
        loop = _loop(platform)
        arrivals = [
            QueryArrival(0, 1_000_000.0, "t0", 0, 1.0, _sum()),
        ]
        report = loop.run(arrivals)
        assert report.executed[0].start_cycle == 1_000_000.0
        # Idle cycles are not service: latency excludes the empty epoch.
        assert report.executed[0].latency_cycles < 1_000_000.0

    def test_exactly_once_attribution_including_sheds(self):
        outcome = serve_once(
            seed=3,
            row_count=ROWS,
            tenants=build_tenants(3, 30_000.0, "poisson", HORIZON),
            horizon_cycles=HORIZON,
            policy=BATCH_16,
            max_backlog=8,
            overflow_rate=0.1,
        )
        assert (
            outcome.registry.totals.snapshot()
            == outcome.ctx.counters.snapshot()
        )
        assert outcome.injector is not None
        assert outcome.injector.report.unaccounted == 0

    def test_interleaved_batched_run_matches_serial_replay(self):
        outcome = serve_once(
            seed=11,
            row_count=ROWS,
            tenants=build_tenants(4, 25_000.0, "bursty", HORIZON),
            horizon_cycles=HORIZON,
            policy=BATCH_16,
            max_backlog=32,
        )
        assert outcome.report.batches > 0
        assert identity_mismatches(outcome, ROWS) == 0

    def test_priority_zero_is_served_ahead_under_backlog(self, platform):
        loop = _loop(platform, SERIAL_DISPATCH)
        arrivals = [
            QueryArrival(0, 0.0, "batchy", 1, 1.0, _sum()),
            QueryArrival(1, 0.0, "interactive", 0, 1.0, _sum()),
        ]
        report = loop.run(arrivals)
        assert [record.tenant for record in report.executed] == [
            "interactive",
            "batchy",
        ]

    def test_rebalancer_without_interval_is_rejected(self, platform):
        store = build_item_store(platform, ROWS)
        with pytest.raises(ValueError):
            ServingLoop(
                backend=LayoutBackend(platform, store),
                ctx=ExecutionContext(platform),
                queue=AdmissionQueue(),
                rebalancer=object(),  # never polled; the ctor must reject
            )

    def test_answers_for_replay_are_in_seq_order(self, platform):
        loop = _loop(platform)
        loop.run(_arrivals([_sum(), _update(5), _sum("i_im_id")]))
        seqs = [seq for seq, __, __ in loop.answers_for_replay()]
        assert seqs == sorted(seqs) == [0, 1, 2]
        for __, __, answer in loop.answers_for_replay():
            assert encode_answer(answer)  # every answer is encodable
