"""Snapshot isolation tests: consistency, CoW accounting, interference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransactionError
from repro.execution import ExecutionContext
from repro.execution.operators import sum_column, update_field
from repro.hardware import Platform
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.partitioning import one_region_per_attribute
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema
from repro.mvcc import PAGE_BYTES, SnapshotManager

ROWS = 5000


@pytest.fixture
def layout(platform):
    relation = Relation("t", Schema.of(("id", INT64), ("price", FLOAT64)), ROWS)
    fragments = []
    for region in one_region_per_attribute(relation):
        fragment = Fragment(region, relation.schema, None, platform.host_memory)
        name = region.attributes[0]
        values = np.arange(ROWS, dtype=np.float64 if name == "price" else np.int64)
        fragment.append_columns({name: values})
        fragments.append(fragment)
    return Layout("t", relation, fragments)


def checked_update(manager, layout, position, attribute, value, ctx):
    manager.before_update(position, attribute, ctx)
    update_field(layout, position, attribute, value, ctx)


class TestConsistency:
    def test_snapshot_sees_fork_time_values(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        snapshot = manager.fork(ctx)
        before = float(np.sum(np.arange(ROWS, dtype=np.float64)))
        checked_update(manager, layout, 7, "price", 1_000_000.0, ctx)
        # Live data moved on; the snapshot did not.
        assert snapshot.sum("price", ctx.fork()) == pytest.approx(before)
        assert sum_column(layout, "price", ctx.fork()) == pytest.approx(
            before - 7.0 + 1_000_000.0
        )

    def test_read_field_pre_image(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        snapshot = manager.fork(ctx)
        checked_update(manager, layout, 7, "price", -1.0, ctx)
        assert snapshot.read_field(7, "price") == 7.0
        assert snapshot.read_field(8, "price") == 8.0  # same page, untouched cell

    def test_multiple_updates_one_page_one_preimage(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        snapshot = manager.fork(ctx)
        rows_per_page = PAGE_BYTES // 8
        for offset in range(5):  # all inside page 0
            checked_update(manager, layout, offset, "price", 0.0, ctx)
        assert snapshot.pages_copied == 1
        checked_update(manager, layout, rows_per_page + 1, "price", 0.0, ctx)
        assert snapshot.pages_copied == 2

    def test_two_snapshots_diverge_correctly(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        first = manager.fork(ctx)
        checked_update(manager, layout, 3, "price", 100.0, ctx)
        second = manager.fork(ctx)
        checked_update(manager, layout, 3, "price", 200.0, ctx)
        assert first.read_field(3, "price") == 3.0
        assert second.read_field(3, "price") == 100.0
        assert layout.fragment_for(3, "price").read_field(3, "price") == 200.0

    def test_updates_before_fork_are_visible(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        checked_update(manager, layout, 5, "price", 55.5, ctx)
        snapshot = manager.fork(ctx)
        assert snapshot.read_field(5, "price") == 55.5


class TestLifecycle:
    def test_release_stops_faults(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        snapshot = manager.fork(ctx)
        snapshot.release()
        fault_ctx = ctx.fork()
        checked_update(manager, layout, 7, "price", 0.0, fault_ctx)
        assert "cow-fault" not in fault_ctx.breakdown.parts
        assert manager.live_snapshots == ()

    def test_released_snapshot_rejects_reads(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        snapshot = manager.fork(ctx)
        snapshot.release()
        with pytest.raises(TransactionError):
            snapshot.read_field(0, "price")
        with pytest.raises(TransactionError):
            snapshot.sum("price", ctx)

    def test_double_release_is_idempotent(self, layout, platform, ctx):
        """Recovery teardown sweeps blindly: double release must be free."""
        manager = SnapshotManager(layout)
        snapshot = manager.fork(ctx)
        checked_update(manager, layout, 7, "price", 0.0, ctx)
        cycles_before = ctx.counters.cycles
        snapshot.release()
        snapshot.release()  # must not raise, charge, or double-free
        snapshot.release()
        assert ctx.counters.cycles == cycles_before
        assert manager.live_snapshots == ()
        assert not snapshot.is_live

    def test_release_all_sweeps_everything(self, layout, platform, ctx):
        manager = SnapshotManager(layout)
        first = manager.fork(ctx)
        second = manager.fork(ctx)
        first.release()  # individually released before the sweep
        assert manager.release_all() == 1  # only `second` was still live
        assert manager.live_snapshots == ()
        assert not second.is_live
        assert manager.release_all() == 0  # sweep twice: still fine


class TestCosts:
    def test_fork_is_proportional_to_pages_not_bytes_copied(self, layout, platform):
        ctx = ExecutionContext(platform)
        manager = SnapshotManager(layout)
        manager.fork(ctx)
        payload = sum(f.nbytes for f in layout.fragments)
        # Fork must be far cheaper than copying the payload.
        copy_cost = platform.memory_model.sequential(2 * payload)
        assert ctx.cycles < copy_cost / 3

    def test_cow_fault_charged_per_page(self, layout, platform):
        ctx = ExecutionContext(platform)
        manager = SnapshotManager(layout)
        manager.fork(ctx)
        before = ctx.breakdown.parts.get("cow-fault", 0.0)
        checked_update(manager, layout, 0, "price", 0.0, ctx)
        assert ctx.breakdown.parts["cow-fault"] > before
        assert ctx.counters.bytes_written >= PAGE_BYTES

    def test_snapshot_cheaper_than_full_copy_at_low_write_rates(
        self, layout, platform
    ):
        """The HyPer argument: CoW isolation beats detach-by-copy."""
        payload = sum(f.nbytes for f in layout.fragments)
        full_copy = platform.memory_model.sequential(2 * payload)

        ctx = ExecutionContext(platform)
        manager = SnapshotManager(layout)
        manager.fork(ctx)
        for position in range(0, 50):
            checked_update(manager, layout, position, "price", 0.0, ctx)
        assert ctx.cycles < full_copy


@given(
    st.lists(
        st.tuples(st.integers(0, ROWS - 1), st.floats(-100, 100, allow_nan=False)),
        max_size=40,
    )
)
@settings(max_examples=25, deadline=None)
def test_snapshot_isolation_property(updates):
    """Whatever the write sequence, the snapshot always reads the
    fork-time value of every cell."""
    platform = Platform.paper_testbed()
    relation = Relation("t", Schema.of(("price", FLOAT64)), ROWS)
    fragment = Fragment(
        Region.full(relation), relation.schema, None, platform.host_memory
    )
    original = np.arange(ROWS, dtype=np.float64)
    fragment.append_columns({"price": original.copy()})
    layout = Layout("t", relation, [fragment])
    ctx = ExecutionContext(platform)
    manager = SnapshotManager(layout)
    snapshot = manager.fork(ctx)
    for position, value in updates:
        checked_update(manager, layout, position, "price", value, ctx)
    assert np.array_equal(snapshot.column("price"), original)
