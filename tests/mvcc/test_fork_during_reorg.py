"""Fork-during-reorganization: snapshots must never see a torn layout.

The dangerous interleaving: an analytic snapshot forks, OLTP writes
keep CoW-preserving pre-images, and then the re-organizer swaps the
layout's fragments — sometimes successfully, sometimes aborted by an
injected interruption.  The invariant under chaos: the snapshot
observes either the **old** state (its exact at-fork view, served from
pre-images over the pre-reorg fragments) or the **new** state (the
post-swap fragments' complete, migrated contents — pre-images keyed on
the freed fragments are orphaned by design), and *never* a torn mix of
the two.

Seeded like the chaos suite: set ``CHAOS_SEED`` to reproduce a CI
schedule locally (docs/RESILIENCE.md).
"""

import os

import numpy as np
import pytest

from repro.adapt.advisor import GroupProposal, LayoutProposal
from repro.adapt.reorganizer import reorganize_layout
from repro.errors import ReorganizationAborted
from repro.execution import ExecutionContext
from repro.execution.operators import update_field
from repro.faults import SITE_REORG_INTERRUPT, FaultInjector
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.partitioning import one_region_per_attribute
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema
from repro.mvcc import SnapshotManager

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "5"))
ROWS = 800
ATTEMPTS = 8


def build_layout(platform):
    """A two-column DSM layout with recognizable per-row values."""
    relation = Relation("t", Schema.of(("id", INT64), ("price", FLOAT64)), ROWS)
    fragments = []
    for region in one_region_per_attribute(relation):
        fragment = Fragment(region, relation.schema, None, platform.host_memory)
        name = region.attributes[0]
        values = np.arange(ROWS, dtype=np.float64 if name == "price" else np.int64)
        fragment.append_columns({name: values})
        fragments.append(fragment)
    return Layout("t", relation, fragments)


def nsm_proposal():
    """Propose regrouping both columns into one fat NSM fragment."""
    return LayoutProposal(
        groups=(GroupProposal(("id", "price"), LinearizationKind.NSM),),
        estimated_cycles=0.0,
    )


def dsm_proposal():
    """Propose splitting back into one thin fragment per column."""
    return LayoutProposal(
        groups=(GroupProposal(("id", "price"), LinearizationKind.DIRECT),),
        estimated_cycles=0.0,
    )


def checked_update(manager, layout, position, value, ctx):
    manager.before_update(position, "price", ctx)
    update_field(layout, position, "price", value, ctx)


def test_fork_during_reorg_never_observes_torn_mix(platform):
    """Chaos regression: old view XOR new view, across a seeded schedule.

    Each attempt forks a snapshot, writes through CoW (so the at-fork
    and post-reorg views genuinely differ), then attempts a
    re-organization under an armed ``reorg.interrupt`` site.  Aborted
    swap -> the snapshot must equal its at-fork view exactly; completed
    swap -> the snapshot must equal the new fragments' complete view.
    """
    ctx = ExecutionContext(platform)
    layout = build_layout(platform)
    manager = SnapshotManager(layout)
    # Per-row check over 800 migrated rows: p=0.0005 lands each attempt
    # at roughly one-in-three abort odds, so the seeded schedule (5, 23,
    # 101 in CI) exercises both arms of the invariant.
    injector = FaultInjector(seed=CHAOS_SEED).arm(SITE_REORG_INTERRUPT, 0.0005)
    injector.install(platform)
    aborted_runs = 0
    completed_runs = 0

    for attempt in range(ATTEMPTS):
        snapshot = manager.fork(ctx)
        at_fork_view = {
            "id": np.array(snapshot.column("id"), copy=True),
            "price": np.array(snapshot.column("price"), copy=True),
        }
        # Post-fork writes: CoW preserves the at-fork values above.
        for position in range(0, ROWS, 37):
            checked_update(
                manager, layout, position, float(1000 * (attempt + 1)), ctx
            )
        proposal = nsm_proposal() if attempt % 2 == 0 else dsm_proposal()
        try:
            reorganize_layout(layout, proposal, platform.host_memory, ctx)
        except ReorganizationAborted:
            aborted_runs += 1
            # Old layout intact: snapshot serves its exact at-fork view.
            for name, expected in at_fork_view.items():
                np.testing.assert_array_equal(snapshot.column(name), expected)
        else:
            completed_runs += 1
            # Swap happened: pre-images keyed on the freed fragments are
            # orphaned, so the snapshot serves the new fragments'
            # complete migrated contents — the post-write values.
            new_view = {
                name: np.concatenate(
                    [
                        np.array(fragment.column(name), copy=True)
                        for fragment in layout.fragments_for_attribute(name)
                    ]
                )
                for name in ("id", "price")
            }
            for name in ("id", "price"):
                observed = snapshot.column(name)
                np.testing.assert_array_equal(observed, new_view[name])
                # ... and it is NOT the at-fork view (the writes above
                # guarantee the two candidate views differ on price).
                if name == "price":
                    assert not np.array_equal(observed, at_fork_view[name])
        snapshot.release()

    # The seeded schedule must exercise both arms or the test is vacuous.
    assert aborted_runs > 0, "chaos schedule never aborted a reorganization"
    assert completed_runs > 0, "chaos schedule never completed a reorganization"


@pytest.mark.parametrize("seed", [5, 23, 101])
def test_abort_preserves_at_fork_view_exactly(platform, seed):
    """Deterministic exactly-once abort: byte-identical at-fork view."""
    ctx = ExecutionContext(platform)
    layout = build_layout(platform)
    manager = SnapshotManager(layout)
    FaultInjector(seed=seed).arm(
        SITE_REORG_INTERRUPT, 1.0, max_faults=1
    ).install(platform)
    snapshot = manager.fork(ctx)
    before = np.array(snapshot.column("price"), copy=True)
    checked_update(manager, layout, 3, -99.0, ctx)
    with pytest.raises(ReorganizationAborted):
        reorganize_layout(layout, nsm_proposal(), platform.host_memory, ctx)
    np.testing.assert_array_equal(snapshot.column("price"), before)
    # The interrupted migration left no partial fragment behind.
    assert all(fragment.filled == ROWS for fragment in layout.fragments)
