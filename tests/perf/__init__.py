"""Tests for the perf package: cost cache and parallel sweep runner."""
