"""Cost-cache rules: keying, bounded LRU, fault bypass, invalidation."""

import pytest

from repro.adapt.advisor import GroupProposal, LayoutProposal
from repro.adapt.reorganizer import reorganize_layout
from repro.execution.context import ExecutionContext
from repro.execution.operators import column_scan_cost
from repro.faults.injector import SITE_PCIE_TRANSFER, FaultInjector
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema
from repro.perf.cost_cache import (
    CostCache,
    active_cost_cache,
    cache_usable,
    cost_cache_disabled,
    fragment_fingerprint,
    platform_fingerprint,
    set_cost_cache,
)


@pytest.fixture
def scoped_cache():
    """A fresh cache installed for one test, previous cache restored."""
    cache = CostCache()
    previous = set_cost_cache(cache)
    yield cache
    set_cost_cache(previous)


def make_layout(platform, rows=64):
    relation = Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), rows)
    data = [(i, float(i)) for i in range(rows)]
    fragment = Fragment.from_rows(
        Region.full(relation),
        relation.schema,
        LinearizationKind.NSM,
        platform.host_memory,
        data,
    )
    return Layout("t", relation, [fragment])


class TestCostCacheBasics:
    def test_get_put_roundtrip(self):
        cache = CostCache()
        assert cache.get("k") is None
        cache.put("k", (1.0, 2.0))
        assert cache.get("k") == (1.0, 2.0)
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
            "entries": 1,
        }

    def test_bounded_lru_eviction(self):
        cache = CostCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert len(cache) == 2

    def test_invalidate_clears_entries(self):
        cache = CostCache()
        cache.put("a", 1)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            CostCache(capacity=0)

    def test_disabled_context(self, scoped_cache):
        with cost_cache_disabled():
            assert active_cost_cache() is None
        assert active_cost_cache() is scoped_cache


class TestFingerprints:
    def test_platform_fingerprint_stable_and_hashable(self, platform):
        first = platform_fingerprint(platform)
        assert first == platform_fingerprint(platform)
        hash(first)

    def test_fragment_fingerprint_tracks_fill(self, platform):
        relation = Relation("t", Schema.of(("a", INT64), ("p", FLOAT64)), 16)
        fragment = Fragment(
            Region.full(relation),
            relation.schema,
            LinearizationKind.NSM,
            platform.host_memory,
        )
        fragment.append_rows([(0, 0.0)])
        before = fragment_fingerprint(fragment)
        fragment.append_rows([(1, 1.1)])
        assert fragment_fingerprint(fragment) != before

    def test_injector_arming_is_invisible_to_fingerprint(self, platform):
        # The injector is excluded from the key: arming bypasses the
        # cache wholesale rather than forking the key space.
        before = platform_fingerprint(platform)
        platform.injector = FaultInjector(seed=3).arm(SITE_PCIE_TRANSFER, 1.0)
        assert platform_fingerprint(platform) == before


class TestFaultBypass:
    def test_cache_usable_without_injector(self, platform):
        platform.injector = None
        assert cache_usable(platform)

    def test_armed_injector_bypasses(self, platform):
        platform.injector = FaultInjector(seed=3).arm(SITE_PCIE_TRANSFER, 0.5)
        assert not cache_usable(platform)

    def test_disarmed_injector_allows_cache(self, platform):
        platform.injector = FaultInjector(seed=3)  # nothing armed
        assert cache_usable(platform)

    def test_exhausted_spec_reenables_cache(self, platform, scoped_cache):
        platform.injector = FaultInjector(seed=3).arm(
            SITE_PCIE_TRANSFER, 1.0, max_faults=1
        )
        assert not cache_usable(platform)
        counters = None
        with pytest.raises(Exception):
            platform.injector.check(SITE_PCIE_TRANSFER, counters)
        assert cache_usable(platform)  # spec exhausted: memoization back on

    def test_armed_run_never_touches_cache(self, platform, scoped_cache):
        layout = make_layout(platform)
        ctx = ExecutionContext(platform)
        platform.injector = FaultInjector(seed=3).arm(SITE_PCIE_TRANSFER, 0.5)
        column_scan_cost(layout.fragments[0], "p", ctx)
        column_scan_cost(layout.fragments[0], "p", ctx)
        assert scoped_cache.stats()["entries"] == 0
        assert scoped_cache.hits == 0


class TestOperatorMemoization:
    def test_second_costing_hits(self, platform, scoped_cache):
        layout = make_layout(platform)
        ctx = ExecutionContext(platform)
        cold = column_scan_cost(layout.fragments[0], "p", ctx)
        warm = column_scan_cost(layout.fragments[0], "p", ctx)
        assert warm == cold
        assert scoped_cache.hits == 1

    def test_reorganize_invalidates(self, platform, scoped_cache):
        layout = make_layout(platform)
        ctx = ExecutionContext(platform)
        column_scan_cost(layout.fragments[0], "p", ctx)
        assert len(scoped_cache) == 1
        proposal = LayoutProposal(
            (
                GroupProposal(("a",), LinearizationKind.DIRECT),
                GroupProposal(("p",), LinearizationKind.DIRECT),
            ),
            0.0,
        )
        reorganize_layout(layout, proposal, platform.host_memory, ctx)
        assert len(scoped_cache) == 0
        assert scoped_cache.invalidations == 1
