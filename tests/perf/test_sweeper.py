"""Sweep-runner guarantees: determinism across worker counts, seeding,
grid splitting, and the BENCH_sweeps.json CLI record."""

import json
import logging

import pytest

from repro.bench.ablations import SWEEPS
from repro.perf.sweeper import (
    SweepResult,
    main,
    point_seed,
    run_sweep,
    run_sweeps,
)

# A cheap splittable sweep and a non-splittable one, exercised in smoke
# shape so the whole file stays inside the tier-1 budget.
SPLITTABLE = "fault_probability"
WHOLE = "compression"


class TestPointSeed:
    def test_deterministic_across_calls(self):
        assert point_seed("s", 0, 0.5) == point_seed("s", 0, 0.5)

    def test_distinct_per_point(self):
        seeds = {
            point_seed("s", index, knob)
            for index in range(4)
            for knob in (0.0, 0.5)
        }
        assert len(seeds) == 8

    def test_sweep_name_matters(self):
        assert point_seed("a", 0, 1) != point_seed("b", 0, 1)

    def test_fits_numpy_seed_range(self):
        seed = point_seed("s", 3, 1e9)
        assert 0 <= seed < 2**63


class TestRunSweep:
    def test_unknown_sweep_rejected(self):
        with pytest.raises(KeyError):
            run_sweep("no_such_sweep")

    def test_parallel_equals_serial(self):
        serial = run_sweep(SPLITTABLE, workers=1, smoke=True)
        parallel = run_sweep(SPLITTABLE, workers=2, smoke=True)
        assert serial.points == parallel.points

    def test_split_equals_whole_sweep(self):
        # workers=1 runs the grid as one call; the split path must
        # produce the same points (the sweeps are deterministic in
        # their inputs, which is what licenses fanning them out).
        spec = SWEEPS[SPLITTABLE]
        whole = tuple(spec.func(**dict(spec.smoke_kwargs)))
        assert run_sweep(SPLITTABLE, workers=1, smoke=True).points == whole

    def test_non_splittable_sweep_runs_whole(self):
        result = run_sweep(WHOLE, workers=2, smoke=True)
        assert isinstance(result, SweepResult)
        assert len(result.points) > 0

    def test_overrides_resize_the_sweep(self):
        result = run_sweep(
            SPLITTABLE,
            workers=1,
            smoke=True,
            overrides={"probabilities": (0.0,)},
        )
        assert len(result.points) == 1
        assert result.points[0].knob == 0.0

    def test_result_record_shape(self):
        result = run_sweep(SPLITTABLE, workers=1, smoke=True)
        record = result.as_record()
        assert record["point_count"] == len(result.points)
        assert record["rows_processed"] == result.rows_processed
        assert record["rows_per_second"] >= 0.0
        assert all({"knob", "outcomes"} <= set(p) for p in record["points"])


class TestSweepRegistry:
    def test_every_spec_has_smoke_shape(self):
        for name, spec in SWEEPS.items():
            assert spec.name == name
            assert spec.rows_processed(dict(spec.smoke_kwargs), 2) > 0

    def test_grid_splitting_covers_grid(self):
        spec = SWEEPS[SPLITTABLE]
        kwargs = dict(spec.smoke_kwargs)
        grid = spec.grid(kwargs)
        assert grid is not None and len(grid) >= 2


class TestCli:
    def test_smoke_run_writes_bench_record(self, tmp_path, caplog):
        output = tmp_path / "BENCH_sweeps.json"
        with caplog.at_level(logging.INFO, logger="repro.perf.sweeper"):
            code = main(
                [
                    "--sweeps",
                    SPLITTABLE,
                    "--workers",
                    "1",
                    "--smoke",
                    "--output",
                    str(output),
                ]
            )
        assert code == 0
        record = json.loads(output.read_text())
        assert record["smoke"] is True
        assert SPLITTABLE in record["sweeps"]
        sweep = record["sweeps"][SPLITTABLE]
        assert sweep["wall_seconds"] > 0.0
        assert sweep["rows_per_second"] > 0.0
        # Progress goes through the structured logger, not print().
        assert SPLITTABLE in caplog.text


def test_run_sweeps_preserves_registry_order():
    results = run_sweeps([SPLITTABLE, WHOLE], workers=1, smoke=True)
    assert list(results) == [SPLITTABLE, WHOLE]
