"""The shared verifier flag vocabulary (`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import DEFAULT_SEEDS, parse_csv, parse_seeds, verifier_parser


class TestVerifierParser:
    def test_defaults_match_the_ci_matrix(self):
        parser = verifier_parser("prog", "desc", default_sites="a,b")
        options = parser.parse_args([])
        assert parse_seeds(options.seeds) == [5, 23, 101]
        assert parse_csv(options.sites) == ["a", "b"]
        assert options.output is None
        assert options.smoke is False

    def test_all_flags_parse(self):
        parser = verifier_parser("prog", "desc", default_sites="a")
        options = parser.parse_args(
            ["--seeds", "1,2", "--sites", "x,y", "--output", "o.json",
             "--smoke"]
        )
        assert parse_seeds(options.seeds) == [1, 2]
        assert parse_csv(options.sites) == ["x", "y"]
        assert options.output == "o.json"
        assert options.smoke is True

    def test_seedless_harness_omits_the_seeds_flag(self):
        parser = verifier_parser("prog", "desc", default_seeds=None)
        with pytest.raises(SystemExit):
            parser.parse_args(["--seeds", "1"])

    def test_siteless_harness_omits_the_sites_flag(self):
        parser = verifier_parser("prog", "desc")
        with pytest.raises(SystemExit):
            parser.parse_args(["--sites", "x"])

    def test_default_output_is_wired(self):
        parser = verifier_parser(
            "prog", "desc", default_output="BENCH_x.json"
        )
        assert parser.parse_args([]).output == "BENCH_x.json"


class TestParsers:
    def test_parse_csv_strips_and_drops_empties(self):
        assert parse_csv("a, b ,,c,") == ["a", "b", "c"]

    def test_parse_seeds_decodes_integers(self):
        assert parse_seeds(DEFAULT_SEEDS) == [5, 23, 101]


class TestHarnessesShareTheVocabulary:
    """Every verifier CLI builds its parser from repro.cli."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.sharding.__main__",
            "repro.recovery.__main__",
            "repro.fusion.__main__",
            "repro.rebalance.__main__",
            "repro.staging.__main__",
            "repro.obs.__main__",
            "repro.serving.__main__",
        ],
    )
    def test_verifier_mains_import_the_shared_parser(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.verifier_parser is verifier_parser
