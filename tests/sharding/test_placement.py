"""ShardMap geometry, serialization, and serving-state transitions."""

import numpy as np
import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.errors import DistributedError
from repro.sharding import ShardingScheme, ShardMap
from repro.sharding.placement import deserialize_columns, serialize_columns


def make_map(columns, shard_count=4, scheme=ShardingScheme.RANGE, nodes=4):
    cluster = Cluster(nodes)
    dfs = BlockStore(cluster, replication=2, block_size=4096)
    return ShardMap("orders", columns, cluster, dfs, shard_count, scheme=scheme)


class TestSerialization:
    def test_roundtrip_is_exact(self):
        columns = {
            "v": np.arange(10, dtype=np.float64) * 3,
            "k": np.arange(10, dtype=np.float64),
        }
        decoded = deserialize_columns(serialize_columns(columns))
        assert sorted(decoded) == ["k", "v"]
        for attr in columns:
            np.testing.assert_array_equal(decoded[attr], columns[attr])

    def test_attribute_order_is_canonical(self):
        a = serialize_columns({"b": np.zeros(4), "a": np.ones(4)})
        b = serialize_columns({"a": np.ones(4), "b": np.zeros(4)})
        assert a == b


class TestGeometry:
    def test_shards_partition_every_row(self, columns):
        for scheme in ShardingScheme:
            shard_map = make_map(columns, scheme=scheme)
            seen = np.concatenate(
                [shard.positions for shard in shard_map.shards]
            )
            assert sorted(seen.tolist()) == list(range(128))

    def test_shard_of_agrees_with_ownership(self, columns):
        for scheme in ShardingScheme:
            shard_map = make_map(columns, scheme=scheme)
            for shard in shard_map.shards:
                for position in shard.positions[:5]:
                    assert shard_map.shard_of(int(position)) == shard.shard_id

    def test_prune_groups_by_owner_and_drops_the_rest(self, columns):
        shard_map = make_map(columns, shard_count=4)
        grouped = shard_map.prune((0, 1, 127))
        assert set(grouped) == {0, 3}
        np.testing.assert_array_equal(grouped[0], [0, 1])
        np.testing.assert_array_equal(grouped[3], [127])

    def test_out_of_range_position_rejected(self, columns):
        shard_map = make_map(columns)
        with pytest.raises(DistributedError, match="outside"):
            shard_map.shard_of(128)

    def test_local_indices_map_back_to_values(self, columns):
        shard_map = make_map(columns, scheme=ShardingScheme.HASH)
        shard = shard_map.shards[1]
        some = shard.positions[:4]
        local = shard.local_indices(some)
        state = shard_map.state(1)
        np.testing.assert_array_equal(state["v"][local], columns["v"][some])


class TestServingState:
    def test_base_files_live_in_the_dfs(self, columns):
        shard_map = make_map(columns)
        for shard in shard_map.shards:
            assert shard_map.dfs.file(shard.path).size > 0
            assert shard.primary in shard_map.dfs.file(shard.path).blocks[0].replica_nodes

    def test_drop_states_on_forgets_only_that_node(self, columns):
        shard_map = make_map(columns)
        victim = shard_map.shards[0].primary
        lost = shard_map.drop_states_on(victim)
        assert 0 in lost
        assert shard_map.state(0) is None
        survivor = next(
            shard for shard in shard_map.shards if shard.primary != victim
        )
        assert shard_map.state(survivor.shard_id) is not None

    def test_promote_repoints_primary_and_records_history(self, columns):
        shard_map = make_map(columns)
        shard = shard_map.shards[0]
        old_primary = shard.primary
        new_primary = next(
            node.name
            for node in shard_map.cluster.nodes
            if node.name != old_primary
        )
        rebuilt = {
            attr: columns[attr][shard.positions].copy() for attr in columns
        }
        shard_map.promote(0, new_primary, rebuilt)
        assert shard.primary == new_primary
        assert old_primary in shard.former_primaries
        assert shard_map.state(0) is rebuilt

    def test_replica_candidates_prefer_holders(self, columns):
        shard_map = make_map(columns)
        shard = shard_map.shards[0]
        candidates = shard_map.replica_candidates(shard)
        assert len(candidates) == len(shard_map.cluster.nodes)
        holders = set(shard_map.dfs.file(shard.path).blocks[0].replica_nodes)
        assert set(candidates[: len(holders)]) == holders


class TestValidation:
    def test_ragged_columns_rejected(self):
        with pytest.raises(DistributedError, match="ragged"):
            make_map({"a": np.zeros(4), "b": np.zeros(5)})

    def test_more_shards_than_rows_rejected(self):
        with pytest.raises(DistributedError, match="spread"):
            make_map({"a": np.zeros(2)}, shard_count=3)
