"""Fault-free scatter-gather: correct answers, honest costs."""

import numpy as np
import pytest

from repro.execution import ExecutionContext
from repro.sharding import ShardingScheme
from repro.sharding.verifier import SingleNodeOracle, encode_answer
from repro.workload.queries import QueryShape, QuerySpec


@pytest.fixture
def executor(harness):
    return harness(seed=3)


class TestAnswers:
    def test_full_sum_matches_numpy(self, executor, columns, ctx):
        result = executor.run(
            QuerySpec(QueryShape.FULL_SUM, "orders", ("v",)), ctx
        )
        assert result.value == {"v": float(columns["v"].sum())}
        assert result.fanout == executor.shard_map.shard_count

    def test_position_sum_matches_numpy(self, executor, columns, ctx):
        positions = (1, 17, 63, 99)
        result = executor.run(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), positions), ctx
        )
        assert result.value == {
            "v": float(columns["v"][list(positions)].sum())
        }

    def test_materialize_preserves_request_order(self, executor, columns, ctx):
        positions = (99, 3, 42)
        result = executor.run(
            QuerySpec(
                QueryShape.POINT_MATERIALIZE, "orders", ("k", "v"), positions
            ),
            ctx,
        )
        expected = np.array(
            [[columns["k"][p], columns["v"][p]] for p in positions]
        )
        np.testing.assert_array_equal(result.value, expected)

    def test_point_update_is_visible_to_later_reads(self, executor, ctx):
        executor.run(
            QuerySpec(QueryShape.POINT_UPDATE, "orders", ("v",), (5, 80)), ctx
        )
        read = executor.run(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), (5, 80)), ctx
        )
        expected = float(executor.update_value(5) + executor.update_value(80))
        assert read.value == {"v": expected}

    def test_hash_scheme_answers_match_range_scheme(self, harness, ctx):
        platform_ctx = ctx
        query = QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), (2, 70))
        by_scheme = {}
        for scheme in ShardingScheme:
            executor = harness(seed=9, scheme=scheme)
            by_scheme[scheme] = executor.run(
                query, ExecutionContext(platform_ctx.platform)
            ).value
        assert by_scheme[ShardingScheme.RANGE] == by_scheme[ShardingScheme.HASH]

    def test_matches_the_oracle_encoding(self, executor, columns, ctx):
        oracle = SingleNodeOracle(columns, executor.update_value)
        for query in (
            QuerySpec(QueryShape.FULL_SUM, "orders", ("k",)),
            QuerySpec(QueryShape.POINT_MATERIALIZE, "orders", ("k", "v"), (7, 8)),
            QuerySpec(QueryShape.POINT_UPDATE, "orders", ("v",), (7,)),
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), (7, 9)),
        ):
            expected = encode_answer(oracle.answer(query))
            assert executor.run(query, ctx).encoded() == expected


class TestCosts:
    def test_sub_queries_charge_compute_and_responses(self, executor, ctx):
        executor.run(QuerySpec(QueryShape.FULL_SUM, "orders", ("v",)), ctx)
        assert ctx.counters.cycles > 0
        assert "shard-scan" in ctx.breakdown.parts
        assert "gather-merge" in ctx.breakdown.parts
        # At least one shard is remote from the coordinator, so the
        # gather moved bytes across the simulated network.
        assert ctx.counters.bytes_transferred > 0

    def test_served_by_reports_the_primaries_when_healthy(self, executor, ctx):
        result = executor.run(
            QuerySpec(QueryShape.FULL_SUM, "orders", ("v",)), ctx
        )
        for shard_id, node in result.served_by.items():
            assert executor.shard_map.shards[shard_id].primary == node
        assert executor.stats.failovers == 0

    def test_per_shard_metrics_and_cluster_latency(self, harness, platform):
        from repro.obs.timeseries import WindowedRegistry
        from repro.sharding.executor import (
            SHARD_LATENCY_METRIC,
            SHARD_LOAD_METRIC,
        )

        registry = WindowedRegistry()
        executor = harness(seed=3, metrics=registry)
        ctx = ExecutionContext(platform)
        executor.run(QuerySpec(QueryShape.FULL_SUM, "orders", ("v",)), ctx)
        shard_count = executor.shard_map.shard_count
        # Legacy per-shard counters and latency histograms, one each.
        loads = [
            registry.counter(f"{SHARD_LOAD_METRIC}.{sid}").value
            for sid in range(shard_count)
        ]
        assert sum(loads) == 128.0
        latencies = registry.histograms_with_prefix(SHARD_LATENCY_METRIC)
        assert len(latencies) == shard_count
        cluster = registry.merged_histogram(SHARD_LATENCY_METRIC, "cluster")
        assert len(cluster.values) == shard_count
        assert cluster.summary()["total"] > 0
        # The dimensional series carries the same per-shard loads.
        for sid in range(shard_count):
            assert registry.total("shard.load", shard=str(sid)) == loads[sid]

    def test_fault_free_runs_are_cycle_deterministic(self, harness, platform):
        query = QuerySpec(QueryShape.FULL_SUM, "orders", ("v",))
        totals = []
        for _ in range(2):
            executor = harness(seed=5)
            ctx = ExecutionContext(platform)
            executor.run(query, ctx)
            totals.append(ctx.counters.cycles)
        assert totals[0] == totals[1]
