"""FailureDetector: heartbeat/lease lag arithmetic on simulated time."""

import pytest

from repro.errors import DistributedError
from repro.sharding import FailureDetector


class TestDetectionLag:
    def test_crash_on_a_heartbeat_boundary_waits_one_lease(self):
        detector = FailureDetector(heartbeat_interval=100.0, lease_cycles=400.0)
        assert detector.mark_crashed("node1", 1_000.0) == 400.0

    def test_crash_between_beats_waits_to_the_next_boundary(self):
        detector = FailureDetector(heartbeat_interval=100.0, lease_cycles=400.0)
        # Crash at 1_030: next beat at 1_100, lease runs to 1_500.
        assert detector.mark_crashed("node1", 1_030.0) == 470.0

    def test_redeclaring_a_dead_node_is_free(self):
        detector = FailureDetector()
        first = detector.mark_crashed("node1", 0.0)
        assert first > 0
        assert detector.mark_crashed("node1", 123.0) == 0.0
        assert detector.detections == 1

    def test_lag_accumulates_in_the_snapshot(self):
        detector = FailureDetector(heartbeat_interval=100.0, lease_cycles=400.0)
        detector.mark_crashed("node1", 1_000.0)
        detector.mark_crashed("node2", 1_030.0)
        snap = detector.snapshot()
        assert snap["detections"] == 2
        assert snap["total_lag_cycles"] == 870.0
        assert snap["currently_crashed"] == 2


class TestLiveness:
    def test_alive_until_declared(self):
        detector = FailureDetector()
        assert detector.is_alive("node1")
        detector.mark_crashed("node1", 0.0)
        assert not detector.is_alive("node1")

    def test_revive_restores_liveness(self):
        detector = FailureDetector()
        detector.mark_crashed("node1", 0.0)
        detector.revive("node1")
        assert detector.is_alive("node1")
        # A revived node can crash (and be charged) again.
        assert detector.mark_crashed("node1", 0.0) > 0
        assert detector.detections == 2


def test_configuration_is_validated():
    with pytest.raises(DistributedError):
        FailureDetector(heartbeat_interval=0.0)
    with pytest.raises(DistributedError):
        FailureDetector(lease_cycles=-1.0)
