"""Router: pruning, peek-only planning, and the no-charge lint."""

import re
from pathlib import Path

import pytest

import repro.sharding.router as router_module
from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.errors import ExecutionError
from repro.hardware.event import PerfCounters
from repro.sharding import Router, ShardingScheme, ShardMap
from repro.workload.queries import QueryShape, QuerySpec


@pytest.fixture
def router(columns):
    cluster = Cluster(4)
    dfs = BlockStore(cluster, replication=2, block_size=4096)
    return Router(
        ShardMap("orders", columns, cluster, dfs, 4, scheme=ShardingScheme.RANGE)
    )


class TestRouting:
    def test_point_query_prunes_untouched_shards(self, router):
        plan = router.route(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), (0, 1, 2))
        )
        assert plan.fanout == 1
        assert plan.tasks[0].shard.shard_id == 0
        assert sorted(plan.pruned_shards) == [1, 2, 3]

    def test_full_scan_fans_out_everywhere(self, router):
        plan = router.route(QuerySpec(QueryShape.FULL_SUM, "orders", ("v",)))
        assert plan.fanout == 4
        assert plan.pruned_shards == ()
        assert all(task.positions == () for task in plan.tasks)

    def test_tasks_target_the_primaries(self, router):
        plan = router.route(QuerySpec(QueryShape.FULL_SUM, "orders", ("v",)))
        for task in plan.tasks:
            assert task.node == task.shard.primary

    def test_response_estimates_scale_with_rows(self, router):
        narrow = router.route(
            QuerySpec(QueryShape.POINT_MATERIALIZE, "orders", ("k", "v"), (0,))
        )
        wide = router.route(
            QuerySpec(QueryShape.POINT_MATERIALIZE, "orders", ("k", "v"), (0, 1, 2))
        )
        assert (
            wide.tasks[0].estimated_response_bytes
            > narrow.tasks[0].estimated_response_bytes
        )
        assert wide.estimated_response_cycles > 0

    def test_unknown_attribute_rejected(self, router):
        with pytest.raises(ExecutionError, match="unknown attributes"):
            router.route(QuerySpec(QueryShape.FULL_SUM, "orders", ("nope",)))


class TestPlanningIsFree:
    def test_routing_never_reaches_the_charging_variant(
        self, router, monkeypatch
    ):
        """Planning a scatter must not touch ``transfer_cost`` at runtime."""

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "router planning called the charging transfer_cost"
            )

        monkeypatch.setattr(type(router.network), "transfer_cost", forbidden)
        plan = router.route(QuerySpec(QueryShape.FULL_SUM, "orders", ("v",)))
        router.route(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), (3, 77))
        )
        assert plan.estimated_response_cycles > 0

    def test_peek_matches_charged_cost(self, router):
        """The estimate equals what execution would actually charge."""
        network = router.network
        counters = PerfCounters()
        charged = network.transfer_cost(4096, counters)
        assert network.peek_transfer_cost(4096) == charged
        assert counters.cycles == charged


def test_lint_router_never_calls_the_charging_variant():
    """The router may only use ``peek_transfer_cost`` during planning.

    A direct ``.transfer_cost(`` call in the router would silently
    charge whatever counters it was handed while *considering* plans;
    this lint pins the estimate-only contract at the source level
    (the ``peek_`` prefix keeps the peek variant unmatched).
    """
    source = Path(router_module.__file__).read_text(encoding="utf-8")
    pattern = re.compile(r"(?<!peek_)\btransfer_cost\s*\(")
    offenders = [
        f"{number}: {line.strip()}"
        for number, line in enumerate(source.splitlines(), start=1)
        if pattern.search(line)
    ]
    assert not offenders, (
        "router.py must plan with peek_transfer_cost only; "
        "charging calls found:\n" + "\n".join(offenders)
    )
