"""Mid-query failover: crashes, drops, stragglers — and their accounting."""

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceeded,
    DistributedError,
    NodeUnavailable,
    ShardRetryExhausted,
)
from repro.execution import ExecutionContext
from repro.sharding import (
    SITE_NET_DROP_RESPONSE,
    SITE_NET_SLOW_LINK,
    SITE_SHARD_NODE_CRASH,
)
from repro.sharding.verifier import SingleNodeOracle, encode_answer
from repro.workload.queries import QueryShape, QuerySpec


def remote_shard(executor):
    """A shard whose primary is not the coordinator (crash-checkable)."""
    return next(
        shard
        for shard in executor.shard_map.shards
        if shard.primary != executor.coordinator
    )


def positions_of(shard, count=3):
    return tuple(int(p) for p in shard.positions[:count])


class TestCrashFailover:
    def test_crash_fails_over_and_the_answer_survives(
        self, harness, columns, ctx
    ):
        executor = harness(seed=1)
        executor.injector.arm(SITE_SHARD_NODE_CRASH, 1.0, max_faults=1)
        shard = remote_shard(executor)
        victim = shard.primary
        positions = positions_of(shard)
        result = executor.run(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), positions), ctx
        )
        assert result.value == {
            "v": float(columns["v"][list(positions)].sum())
        }
        assert executor.stats.failovers == 1
        assert executor.stats.crashes_observed == 1
        assert result.served_by[shard.shard_id] != victim
        assert not executor.detector.is_alive(victim)
        assert victim in executor.dfs.down_nodes

    def test_crash_outcome_is_attributed_exactly_once(self, harness, ctx):
        executor = harness(seed=1)
        executor.injector.arm(SITE_SHARD_NODE_CRASH, 1.0, max_faults=1)
        shard = remote_shard(executor)
        executor.run(
            QuerySpec(
                QueryShape.POSITION_SUM, "orders", ("v",), positions_of(shard)
            ),
            ctx,
        )
        report = executor.injector.report
        assert report.injected == 1
        assert report.fallen_back == 1
        assert report.unaccounted == 0
        assert ctx.counters.fault_fallbacks == 1

    def test_detection_lag_and_backoff_are_charged(self, harness, ctx):
        executor = harness(seed=1)
        executor.injector.arm(SITE_SHARD_NODE_CRASH, 1.0, max_faults=1)
        shard = remote_shard(executor)
        executor.run(
            QuerySpec(
                QueryShape.POSITION_SUM, "orders", ("v",), positions_of(shard)
            ),
            ctx,
        )
        assert "failure-detection" in ctx.breakdown.parts
        assert "failover-backoff" in ctx.breakdown.parts
        assert executor.detector.total_lag_cycles > 0

    def test_failed_shard_is_promoted_to_its_new_home(self, harness, ctx):
        executor = harness(seed=1)
        executor.injector.arm(SITE_SHARD_NODE_CRASH, 1.0, max_faults=1)
        shard = remote_shard(executor)
        old_primary = shard.primary
        executor.run(
            QuerySpec(
                QueryShape.POSITION_SUM, "orders", ("v",), positions_of(shard)
            ),
            ctx,
        )
        assert shard.primary != old_primary
        assert old_primary in shard.former_primaries
        assert executor.stats.rebuilds == 1

    def test_committed_updates_survive_the_crash(self, harness, ctx):
        """The WAL-failover claim: base + committed replay == live state."""
        executor = harness(seed=1)
        shard = remote_shard(executor)
        position = int(shard.positions[0])
        executor.run(
            QuerySpec(QueryShape.POINT_UPDATE, "orders", ("v",), (position,)),
            ctx,
        )
        executor.injector.arm(SITE_SHARD_NODE_CRASH, 1.0, max_faults=1)
        read = executor.run(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), (position,)),
            ctx,
        )
        assert executor.stats.failovers == 1
        assert read.value == {"v": float(executor.update_value(position))}
        assert executor.injector.report.replayed_txns >= 1

    def test_non_durable_stack_loses_uncommitted_writes_gracefully(
        self, harness, columns, ctx
    ):
        """Without a WAL the rebuild serves the DFS base — reads still work."""
        executor = harness(seed=1, durable=False)
        shard = remote_shard(executor)
        positions = positions_of(shard)
        executor.injector.arm(SITE_SHARD_NODE_CRASH, 1.0, max_faults=1)
        result = executor.run(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), positions), ctx
        )
        assert result.value == {
            "v": float(columns["v"][list(positions)].sum())
        }


class TestDeadlines:
    def test_zero_deadline_surfaces_deadline_exceeded(self, harness, ctx):
        executor = harness(seed=1, failover_deadline_cycles=0.0)
        executor.injector.arm(SITE_SHARD_NODE_CRASH, 1.0, max_faults=1)
        shard = remote_shard(executor)
        with pytest.raises(DeadlineExceeded) as excinfo:
            executor.run(
                QuerySpec(
                    QueryShape.POSITION_SUM, "orders", ("v",), positions_of(shard)
                ),
                ctx,
            )
        assert excinfo.value.injected
        assert isinstance(excinfo.value.__cause__, NodeUnavailable)
        # Un-tallied on raise: the harness records it as surfaced.
        assert executor.injector.report.unaccounted == 1

    def test_exhausting_every_candidate_raises_shard_retry_exhausted(
        self, harness, ctx
    ):
        executor = harness(seed=1, replication=1, durable=False)
        shard = remote_shard(executor)
        # Disk loss on the only replica holder: every candidate's
        # rebuild hits organic data unavailability.
        executor.dfs.fail_node(shard.primary)
        executor.detector.mark_crashed(shard.primary, 0.0)
        with pytest.raises(ShardRetryExhausted) as excinfo:
            executor.run(
                QuerySpec(
                    QueryShape.POSITION_SUM, "orders", ("v",), positions_of(shard)
                ),
                ctx,
            )
        assert not excinfo.value.injected  # organic, not injected
        assert isinstance(excinfo.value.__cause__, DistributedError)


class TestResponseFaults:
    def test_dropped_responses_are_retried_and_recharged(self, harness, ctx):
        executor = harness(seed=1)
        executor.injector.arm(SITE_NET_DROP_RESPONSE, 1.0, max_faults=2)
        shard = remote_shard(executor)
        positions = positions_of(shard)
        bytes_before = ctx.counters.bytes_transferred
        result = executor.run(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), positions), ctx
        )
        report = executor.injector.report
        assert report.injected == 2
        assert report.retried == 2
        assert report.unaccounted == 0
        assert result.value is not None
        # Every re-send burned wire time: three transfers of the same
        # response (two dropped, one delivered).
        resent = ctx.counters.bytes_transferred - bytes_before
        assert resent >= 3 * executor.router.route(
            QuerySpec(QueryShape.POSITION_SUM, "orders", ("v",), positions)
        ).tasks[0].estimated_response_bytes

    def test_slow_link_hedges_to_a_spare_replica(self, harness, ctx):
        # Replication 3 over four nodes guarantees every shard a warm
        # replica holder besides its primary and the coordinator.
        executor = harness(seed=1, replication=3)
        executor.injector.arm(SITE_NET_SLOW_LINK, 1.0, max_faults=1)
        shard = remote_shard(executor)
        executor.run(
            QuerySpec(
                QueryShape.POSITION_SUM, "orders", ("v",), positions_of(shard)
            ),
            ctx,
        )
        report = executor.injector.report
        assert executor.stats.hedges == 1
        assert report.retried == 1
        assert report.unaccounted == 0
        assert "hedged-compute" in ctx.breakdown.parts

    def test_slow_link_without_spares_is_waited_out(self, harness, ctx):
        # Two nodes, replication 1: the remote worker is the shard's
        # only replica holder, so there is no warm spare to hedge to
        # (the coordinator is the gather side, never a hedge target).
        executor = harness(seed=1, node_count=2, shard_count=2, replication=1)
        executor.injector.arm(SITE_NET_SLOW_LINK, 1.0, max_faults=1)
        shard = remote_shard(executor)
        executor.run(
            QuerySpec(
                QueryShape.POSITION_SUM, "orders", ("v",), positions_of(shard)
            ),
            ctx,
        )
        report = executor.injector.report
        assert executor.stats.stragglers_waited == 1
        assert report.recovered == 1
        assert report.unaccounted == 0
        assert "net-slow-link" in ctx.breakdown.parts

    def test_injected_faults_never_change_the_answer(
        self, harness, columns, platform
    ):
        """Same stream, all sites armed: byte-identical to fault-free."""
        query = QuerySpec(
            QueryShape.POINT_MATERIALIZE, "orders", ("k", "v"), (3, 66, 120)
        )
        clean = harness(seed=11).run(query, ExecutionContext(platform))
        faulty_executor = harness(seed=11)
        faulty_executor.injector.arm(SITE_SHARD_NODE_CRASH, 0.3)
        faulty_executor.injector.arm(SITE_NET_DROP_RESPONSE, 0.3)
        faulty_executor.injector.arm(SITE_NET_SLOW_LINK, 0.3)
        faulty = faulty_executor.run(query, ExecutionContext(platform))
        assert faulty.encoded() == clean.encoded()
        assert faulty_executor.injector.report.unaccounted == 0
