"""Shared fixtures for the sharding tier: a small sharded cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.faults import FaultInjector
from repro.recovery import ReplicatedLog, WriteAheadLog
from repro.sharding import (
    FailureDetector,
    Router,
    ShardedExecutor,
    ShardingScheme,
    ShardMap,
)


@pytest.fixture
def columns() -> dict[str, np.ndarray]:
    """128 rows of integer-valued float64 (exact, order-free sums)."""
    rows = np.arange(128)
    return {
        "k": ((rows * 13) % 101).astype(np.float64),
        "v": ((rows * 7) % 97).astype(np.float64),
    }


@pytest.fixture
def harness(platform, columns):
    """Factory: a fully wired sharded-execution stack.

    Returns a function building (executor, parts) for a given seed,
    cluster size, shard count, replication and scheme, so tests can
    shape the cluster they need while sharing the data and platform.
    """

    def build(
        seed: int = 0,
        node_count: int = 4,
        shard_count: int = 4,
        replication: int = 2,
        scheme: ShardingScheme = ShardingScheme.RANGE,
        durable: bool = True,
        **executor_kwargs,
    ):
        injector = FaultInjector(seed=seed)
        injector.install(platform)
        cluster = Cluster(node_count)
        dfs = BlockStore(
            cluster, replication=replication, block_size=4096, injector=injector
        )
        shard_map = ShardMap(
            "orders", columns, cluster, dfs, shard_count, scheme=scheme
        )
        wal = replicated = None
        if durable:
            replicated = ReplicatedLog(dfs, name="orders")
            wal = WriteAheadLog(
                platform, group_commit=1, replicator=replicated.on_flush
            )
        executor = ShardedExecutor(
            Router(shard_map),
            injector,
            detector=FailureDetector(),
            wal=wal,
            replicated=replicated,
            **executor_kwargs,
        )
        return executor

    return build
