"""End-to-end chaos verification: oracle identity, determinism, safety."""

import pytest

from repro.sharding import CHAOS_SITES, run_chaos
from repro.sharding.executor import (
    SITE_NET_DROP_RESPONSE,
    SITE_NET_SLOW_LINK,
    SITE_SHARD_NODE_CRASH,
)


def small_run(**overrides):
    """A fast chaos cell: small stream and relation, all sites armed."""
    kwargs = dict(
        seed=5,
        query_count=16,
        row_count=256,
        shard_count=4,
        fault_rate=0.1,
    )
    kwargs.update(overrides)
    return run_chaos(**kwargs)


class TestOracleIdentity:
    def test_all_answers_match_under_faults(self):
        result = small_run()
        assert result.matched == result.queries
        assert result.mismatched == 0
        assert result.ok

    def test_faults_were_actually_exercised(self):
        result = small_run()
        assert result.resilience["injected"] > 0


class TestAccounting:
    def test_every_injected_fault_has_one_outcome(self):
        result = small_run()
        resilience = result.resilience
        assert resilience["injected"] == (
            resilience["retried"]
            + resilience["fallen_back"]
            + resilience["recovered"]
            + resilience["surfaced"]
        )
        assert result.accounting_ok

    def test_replication_two_never_surfaces_or_loses_data(self):
        for site in CHAOS_SITES:
            result = small_run(sites=(site,), replication=2)
            assert result.resilience["surfaced"] == 0, site
            assert result.data_lost == 0, site


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        first = small_run()
        second = small_run()
        assert first.resilience == second.resilience
        assert first.cycles == second.cycles
        assert first.executor == second.executor
        assert first.detector == second.detector

    def test_different_seeds_diverge(self):
        # Not a strict requirement per-site, but across all sites at a
        # 10% rate two seeds injecting identical schedules would mean
        # the seed is ignored.
        first = small_run(seed=5)
        second = small_run(seed=23)
        assert (
            first.resilience != second.resilience or first.cycles != second.cycles
        )


def test_registered_sites_are_the_documented_three():
    assert CHAOS_SITES == (
        SITE_SHARD_NODE_CRASH,
        SITE_NET_DROP_RESPONSE,
        SITE_NET_SLOW_LINK,
    )
    assert SITE_SHARD_NODE_CRASH == "node.crash-mid-query"
    assert SITE_NET_DROP_RESPONSE == "net.drop-response"
    assert SITE_NET_SLOW_LINK == "net.slow-link"


def test_to_dict_is_json_ready():
    import json

    record = small_run(query_count=8).to_dict()
    parsed = json.loads(json.dumps(record))
    assert parsed["ok"] is True
    assert parsed["sites"] == list(CHAOS_SITES)
