"""Partitioning strategy tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.layout.partitioning import (
    PartitioningOrder,
    composite_partition,
    horizontal_partition,
    one_region_per_attribute,
    vertical_partition,
)
from repro.model.datatypes import INT32
from repro.model.relation import Relation
from repro.model.schema import Schema


@pytest.fixture
def relation():
    return Relation(
        "r", Schema.of(("a", INT32), ("b", INT32), ("c", INT32), ("d", INT32)), 10
    )


class TestVertical:
    def test_groups(self, relation):
        regions = vertical_partition(relation, [("a", "c"), ("b", "d")])
        assert [r.attributes for r in regions] == [("a", "c"), ("b", "d")]
        assert all(r.rows == relation.rows for r in regions)

    def test_must_partition(self, relation):
        with pytest.raises(LayoutError):
            vertical_partition(relation, [("a",), ("b",)])

    def test_one_per_attribute(self, relation):
        regions = one_region_per_attribute(relation)
        assert len(regions) == 4
        assert all(r.is_column for r in regions)


class TestHorizontal:
    def test_chunks(self, relation):
        regions = horizontal_partition(relation, 4)
        assert [r.row_count for r in regions] == [4, 4, 2]

    def test_empty_relation(self):
        empty = Relation("e", Schema.of(("a", INT32)), 0)
        assert horizontal_partition(empty, 4) == []

    def test_invalid_chunk(self, relation):
        with pytest.raises(LayoutError):
            horizontal_partition(relation, 0)


class TestComposite:
    def test_both_orders_same_grid(self, relation):
        groups = [("a", "b"), ("c", "d")]
        vertical_first = composite_partition(
            relation, groups, 4, PartitioningOrder.VERTICAL_THEN_HORIZONTAL
        )
        horizontal_first = composite_partition(
            relation, groups, 4, PartitioningOrder.HORIZONTAL_THEN_VERTICAL
        )
        assert sorted(str(r) for r in vertical_first) == sorted(
            str(r) for r in horizontal_first
        )

    def test_vertical_first_grouping(self, relation):
        regions = composite_partition(
            relation, [("a", "b"), ("c", "d")], 4,
            PartitioningOrder.VERTICAL_THEN_HORIZONTAL,
        )
        # All chunks of the first sub-relation come before the second's.
        assert [r.attributes for r in regions[:3]] == [("a", "b")] * 3

    def test_horizontal_first_grouping(self, relation):
        regions = composite_partition(
            relation, [("a", "b"), ("c", "d")], 4,
            PartitioningOrder.HORIZONTAL_THEN_VERTICAL,
        )
        assert [r.attributes for r in regions[:2]] == [("a", "b"), ("c", "d")]

    def test_empty_relation(self):
        empty = Relation("e", Schema.of(("a", INT32), ("b", INT32)), 0)
        assert composite_partition(
            empty, [("a",), ("b",)], 4, PartitioningOrder.VERTICAL_THEN_HORIZONTAL
        ) == []


@given(st.integers(1, 50), st.integers(1, 8))
def test_composite_covers_every_cell(rows, chunk):
    relation = Relation("r", Schema.of(("a", INT32), ("b", INT32)), rows)
    regions = composite_partition(
        relation, [("a",), ("b",)], chunk, PartitioningOrder.VERTICAL_THEN_HORIZONTAL
    )
    assert sum(r.cell_count for r in regions) == rows * 2
