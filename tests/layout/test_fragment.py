"""Fragment tests: data plane, address plane, phantoms, copies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError, LayoutError, StorageError
from repro.hardware.memory import MemoryKind, MemorySpace
from repro.layout.fragment import Fragment
from repro.layout.linearization import (
    LinearizationKind,
    dsm_serialize,
    nsm_serialize,
)
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT32, char
from repro.model.relation import RowRange
from repro.model.schema import Schema


@pytest.fixture
def space():
    return MemorySpace("host", MemoryKind.HOST, 1 << 20)


@pytest.fixture
def schema():
    return Schema.of(("id", INT32), ("tag", char(4)), ("price", FLOAT64))


@pytest.fixture
def rows():
    return [(1, "aa", 1.5), (2, "bb", 2.5), (3, "cc", 3.5)]


def fat_region(schema, count=3):
    return Region(RowRange(0, count), schema.names)


class TestConstruction:
    def test_fat_requires_format(self, schema, space):
        with pytest.raises(LayoutError):
            Fragment(fat_region(schema), schema, None, space)

    def test_thin_rejects_format(self, schema, space):
        with pytest.raises(LayoutError):
            Fragment(Region(RowRange(0, 3), ("id",)), schema, LinearizationKind.NSM, space)

    def test_thin_auto_direct(self, schema, space):
        fragment = Fragment(Region(RowRange(0, 3), ("id",)), schema, None, space)
        assert fragment.linearization is LinearizationKind.DIRECT

    def test_allocation_size(self, schema, space):
        fragment = Fragment(fat_region(schema), schema, LinearizationKind.NSM, space)
        assert fragment.nbytes == 3 * schema.record_width
        assert space.used == fragment.nbytes

    def test_capacity_error_propagates(self, schema):
        tiny = MemorySpace("tiny", MemoryKind.DEVICE, 8)
        with pytest.raises(CapacityError):
            Fragment(fat_region(schema), schema, LinearizationKind.NSM, tiny)


class TestDataPlane:
    @pytest.mark.parametrize("kind", [LinearizationKind.NSM, LinearizationKind.DSM])
    def test_roundtrip(self, schema, space, rows, kind):
        fragment = Fragment.from_rows(fat_region(schema), schema, kind, space, rows)
        assert [fragment.read_row(i) for i in range(3)] == rows

    def test_read_field(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.DSM, space, rows
        )
        assert fragment.read_field(1, "price") == 2.5
        assert fragment.read_field(2, "tag") == "cc"

    def test_update_field(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        fragment.update_field(0, "price", 9.0)
        assert fragment.read_field(0, "price") == 9.0

    def test_column_values(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.DSM, space, rows
        )
        assert list(fragment.column("price")) == [1.5, 2.5, 3.5]

    def test_column_on_nsm_is_view(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        assert list(fragment.column("id")) == [1, 2, 3]

    def test_overfill_rejected(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        with pytest.raises(StorageError):
            fragment.append_rows([(4, "dd", 4.5)])

    def test_read_beyond_fill_rejected(self, schema, space):
        fragment = Fragment(fat_region(schema), schema, LinearizationKind.NSM, space)
        fragment.append_rows([(1, "aa", 1.0)])
        with pytest.raises(StorageError):
            fragment.read_row(1)

    def test_append_columns_bulk(self, schema, space):
        fragment = Fragment(fat_region(schema), schema, LinearizationKind.DSM, space)
        fragment.append_columns(
            {
                "id": np.array([1, 2, 3], dtype="<i4"),
                "tag": np.array([b"aa", b"bb", b"cc"], dtype="S4"),
                "price": np.array([1.5, 2.5, 3.5]),
            }
        )
        assert fragment.read_row(2) == (3, "cc", 3.5)

    def test_append_columns_ragged_rejected(self, schema, space):
        fragment = Fragment(fat_region(schema), schema, LinearizationKind.DSM, space)
        with pytest.raises(StorageError):
            fragment.append_columns(
                {
                    "id": np.array([1, 2], dtype="<i4"),
                    "tag": np.array([b"aa"], dtype="S4"),
                    "price": np.array([1.5, 2.5]),
                }
            )

    def test_wrong_arity_row_rejected(self, schema, space):
        fragment = Fragment(fat_region(schema), schema, LinearizationKind.NSM, space)
        with pytest.raises(StorageError):
            fragment.append_rows([(1, "aa")])


class TestPhysicalFormat:
    def test_nsm_serialize_pinned(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        assert fragment.serialize() == nsm_serialize(schema, rows)

    def test_dsm_serialize_pinned(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.DSM, space, rows
        )
        assert fragment.serialize() == dsm_serialize(schema, rows)

    def test_nsm_and_dsm_differ(self, schema, space, rows):
        nsm = Fragment.from_rows(fat_region(schema), schema, LinearizationKind.NSM, space, rows)
        dsm = Fragment.from_rows(fat_region(schema), schema, LinearizationKind.DSM, space, rows)
        assert nsm.serialize() != dsm.serialize()


class TestAddressPlane:
    def test_nsm_field_addresses_strided(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        first, width = fragment.field_address(0, "price")
        second, _ = fragment.field_address(1, "price")
        assert width == 8
        assert second - first == schema.record_width

    def test_dsm_field_addresses_contiguous(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.DSM, space, rows
        )
        first, width = fragment.field_address(0, "price")
        second, _ = fragment.field_address(1, "price")
        assert second - first == width == 8

    def test_record_address_nsm(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        address, size = fragment.record_address(1)
        assert size == schema.record_width
        assert address == fragment.allocation.base + schema.record_width

    def test_record_address_rejected_on_dsm(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.DSM, space, rows
        )
        with pytest.raises(LayoutError):
            fragment.record_address(0)

    def test_column_range_nsm_spans_records(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        __, span = fragment.column_address_range("price")
        assert span == 2 * schema.record_width + 8

    def test_column_range_dsm_exact(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.DSM, space, rows
        )
        __, span = fragment.column_address_range("price")
        assert span == 3 * 8

    def test_empty_column_range(self, schema, space):
        fragment = Fragment(fat_region(schema), schema, LinearizationKind.DSM, space)
        __, span = fragment.column_address_range("price")
        assert span == 0


class TestPhantom:
    def test_phantom_has_geometry_no_data(self, schema, space):
        fragment = Fragment(
            fat_region(schema), schema, LinearizationKind.NSM, space, materialize=False
        )
        assert fragment.is_phantom
        fragment.fill_phantom(3)
        assert fragment.filled == 3
        with pytest.raises(StorageError):
            fragment.read_row(0)
        with pytest.raises(StorageError):
            fragment.column("price")
        # Address plane still works.
        address, size = fragment.field_address(2, "price")
        assert size == 8

    def test_phantom_overfill_rejected(self, schema, space):
        fragment = Fragment(
            fat_region(schema), schema, LinearizationKind.NSM, space, materialize=False
        )
        with pytest.raises(StorageError):
            fragment.fill_phantom(4)

    def test_fill_phantom_on_materialized_rejected(self, schema, space):
        fragment = Fragment(fat_region(schema), schema, LinearizationKind.NSM, space)
        with pytest.raises(StorageError):
            fragment.fill_phantom(1)

    def test_phantom_copy(self, schema, space):
        device = MemorySpace("dev", MemoryKind.DEVICE, 1 << 20)
        fragment = Fragment(
            fat_region(schema), schema, LinearizationKind.NSM, space, materialize=False
        )
        fragment.fill_phantom(2)
        clone = fragment.copy_to(device)
        assert clone.is_phantom and clone.filled == 2
        assert clone.space is device


class TestCopy:
    def test_copy_preserves_data_and_format(self, schema, space, rows):
        device = MemorySpace("dev", MemoryKind.DEVICE, 1 << 20)
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.DSM, space, rows
        )
        clone = fragment.copy_to(device)
        assert clone.space is device
        assert clone.serialize() == fragment.serialize()
        assert clone.linearization is LinearizationKind.DSM

    def test_copy_is_independent(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        clone = fragment.copy_to(space)
        clone.update_field(0, "price", 99.0)
        assert fragment.read_field(0, "price") == 1.5

    def test_free_returns_memory(self, schema, space, rows):
        fragment = Fragment.from_rows(
            fat_region(schema), schema, LinearizationKind.NSM, space, rows
        )
        used = space.used
        fragment.free()
        assert space.used == used - fragment.nbytes


@given(
    st.lists(
        st.tuples(st.integers(-1000, 1000), st.floats(0, 100, allow_nan=False)),
        min_size=2,
        max_size=30,
    ),
    st.sampled_from([LinearizationKind.NSM, LinearizationKind.DSM]),
)
@settings(max_examples=40)
def test_fragment_roundtrip_property(pairs, kind):
    schema = Schema.of(("x", INT32), ("y", FLOAT64))
    space = MemorySpace("h", MemoryKind.HOST, 1 << 22)
    region = Region(RowRange(0, len(pairs)), ("x", "y"))
    fragment = Fragment.from_rows(region, schema, kind, space, pairs)
    for index, (x, y) in enumerate(pairs):
        got = fragment.read_row(index)
        assert got[0] == x and got[1] == pytest.approx(y)
