"""Region tests: geometry, fat/thin predicates, splits."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.layout.region import Region
from repro.model.datatypes import INT32
from repro.model.relation import Relation, RowRange
from repro.model.schema import Schema


@pytest.fixture
def relation():
    return Relation("r", Schema.of(("a", INT32), ("b", INT32), ("c", INT32)), 10)


class TestShape:
    def test_full_region(self, relation):
        region = Region.full(relation)
        assert region.row_count == 10 and region.arity == 3
        assert region.cell_count == 30

    def test_fat_requires_two_by_two(self):
        assert Region(RowRange(0, 2), ("a", "b")).is_fat
        assert not Region(RowRange(0, 1), ("a", "b")).is_fat
        assert not Region(RowRange(0, 2), ("a",)).is_fat

    def test_thin_is_not_fat(self):
        assert Region(RowRange(0, 5), ("a",)).is_thin
        assert Region(RowRange(0, 1), ("a", "b", "c")).is_thin

    def test_column_and_row_predicates(self):
        assert Region(RowRange(0, 5), ("a",)).is_column
        assert Region(RowRange(0, 1), ("a", "b")).is_row

    def test_single_cell_is_thin(self):
        cell = Region(RowRange(0, 1), ("a",))
        assert cell.is_thin and cell.is_column and cell.is_row


class TestValidation:
    def test_empty_attributes_rejected(self):
        with pytest.raises(LayoutError):
            Region(RowRange(0, 5), ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(LayoutError):
            Region(RowRange(0, 5), ("a", "a"))


class TestOps:
    def test_contains(self):
        region = Region(RowRange(2, 5), ("a", "b"))
        assert region.contains(3, "a")
        assert not region.contains(5, "a")
        assert not region.contains(3, "c")

    def test_overlaps_requires_both_axes(self):
        base = Region(RowRange(0, 5), ("a",))
        assert base.overlaps(Region(RowRange(4, 6), ("a", "b")))
        assert not base.overlaps(Region(RowRange(4, 6), ("b",)))
        assert not base.overlaps(Region(RowRange(5, 9), ("a",)))

    def test_split_horizontal(self, relation):
        parts = Region.full(relation).split_horizontal(4)
        assert [p.rows for p in parts] == [RowRange(0, 4), RowRange(4, 8), RowRange(8, 10)]
        assert all(p.attributes == ("a", "b", "c") for p in parts)

    def test_split_vertical(self, relation):
        parts = Region.full(relation).split_vertical([("a", "c"), ("b",)])
        assert parts[0].attributes == ("a", "c")
        assert parts[1].attributes == ("b",)

    def test_split_vertical_must_partition(self, relation):
        with pytest.raises(LayoutError):
            Region.full(relation).split_vertical([("a",), ("b",)])
        with pytest.raises(LayoutError):
            Region.full(relation).split_vertical([("a", "b"), ("b", "c")])

    def test_schema_of_projects(self, relation):
        region = Region(relation.rows, ("c", "a"))
        assert region.schema_of(relation.schema).names == ("c", "a")


@given(st.integers(1, 100), st.integers(1, 10))
def test_horizontal_split_covers_property(rows, chunk):
    region = Region(RowRange(0, rows), ("a", "b"))
    parts = region.split_horizontal(chunk)
    assert sum(p.row_count for p in parts) == rows
    assert all(not p1.overlaps(p2) for i, p1 in enumerate(parts) for p2 in parts[i + 1:])
