"""Layout tests: coverage validation, routing, structural predicates."""

import pytest

from repro.errors import LayoutError
from repro.hardware.memory import MemoryKind, MemorySpace
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import INT32
from repro.model.relation import Relation, RowRange
from repro.model.schema import Schema


@pytest.fixture
def space():
    return MemorySpace("host", MemoryKind.HOST, 1 << 20)


@pytest.fixture
def relation():
    return Relation("r", Schema.of(("a", INT32), ("b", INT32), ("c", INT32)), 6)


def make_fragment(relation, space, rows, attributes, kind=None):
    region = Region(rows, attributes)
    if kind is None and region.is_fat:
        kind = LinearizationKind.NSM
    return Fragment(region, relation.schema, kind if region.is_fat else None, space)


class TestValidation:
    def test_complete_vertical_layout(self, relation, space):
        fragments = [
            make_fragment(relation, space, relation.rows, ("a", "b")),
            make_fragment(relation, space, relation.rows, ("c",)),
        ]
        Layout("ok", relation, fragments)  # must not raise

    def test_uncovered_attribute_rejected(self, relation, space):
        fragments = [make_fragment(relation, space, relation.rows, ("a", "b"))]
        with pytest.raises(LayoutError):
            Layout("bad", relation, fragments)

    def test_row_gap_rejected(self, relation, space):
        fragments = [
            make_fragment(relation, space, RowRange(0, 2), ("a", "b", "c")),
            make_fragment(relation, space, RowRange(3, 6), ("a", "b", "c")),
        ]
        with pytest.raises(LayoutError):
            Layout("gap", relation, fragments)

    def test_overlap_rejected_by_default(self, relation, space):
        fragments = [
            make_fragment(relation, space, relation.rows, ("a", "b", "c")),
            make_fragment(relation, space, relation.rows, ("a",)),
        ]
        with pytest.raises(LayoutError):
            Layout("dup", relation, fragments)

    def test_overlap_allowed_when_opted_in(self, relation, space):
        fragments = [
            make_fragment(relation, space, relation.rows, ("a", "b", "c")),
            make_fragment(relation, space, relation.rows, ("a",)),
        ]
        layout = Layout("dup", relation, fragments, allow_overlap=True)
        assert len(layout) == 2

    def test_fragments_beyond_relation_allowed(self, relation, space):
        """Version-space fragments (L-Store tails) sit past the rows."""
        fragments = [
            make_fragment(relation, space, relation.rows, ("a", "b", "c")),
            make_fragment(relation, space, RowRange(6, 10), ("a",)),
        ]
        Layout("tails", relation, fragments)  # must not raise


class TestRouting:
    def test_fragment_for_routes_by_cell(self, relation, space):
        left = make_fragment(relation, space, RowRange(0, 3), ("a", "b", "c"))
        right = make_fragment(relation, space, RowRange(3, 6), ("a", "b", "c"))
        layout = Layout("h", relation, [left, right])
        assert layout.fragment_for(2, "a") is left
        assert layout.fragment_for(3, "a") is right

    def test_fragment_for_unknown_cell(self, relation, space):
        layout = Layout(
            "v", relation, [make_fragment(relation, space, relation.rows, ("a", "b", "c"))]
        )
        with pytest.raises(LayoutError):
            layout.fragment_for(99, "a")

    def test_insertion_order_priority_on_overlap(self, relation, space):
        preferred = make_fragment(relation, space, relation.rows, ("a",))
        fallback = make_fragment(relation, space, relation.rows, ("a", "b", "c"))
        layout = Layout("o", relation, [preferred, fallback], allow_overlap=True)
        assert layout.fragment_for(0, "a") is preferred
        assert layout.fragment_for(0, "b") is fallback

    def test_fragments_for_attribute_sorted(self, relation, space):
        late = make_fragment(relation, space, RowRange(3, 6), ("a", "b", "c"))
        early = make_fragment(relation, space, RowRange(0, 3), ("a", "b", "c"))
        layout = Layout("s", relation, [late, early])
        assert layout.fragments_for_attribute("a") == [early, late]

    def test_read_row_across_fragments(self, relation, space):
        ab = make_fragment(relation, space, relation.rows, ("a", "b"))
        c = make_fragment(relation, space, relation.rows, ("c",))
        ab.append_rows([(i, i * 10) for i in range(6)])
        c.append_rows([(i * 100,) for i in range(6)])
        layout = Layout("v", relation, [ab, c])
        assert layout.read_row(4) == (4, 40, 400)


class TestPredicates:
    def test_sub_relation_layout(self, relation, space):
        fragments = [
            make_fragment(relation, space, relation.rows, ("a", "b")),
            make_fragment(relation, space, relation.rows, ("c",)),
        ]
        layout = Layout("v", relation, fragments)
        assert layout.is_sub_relation_layout
        assert not layout.is_horizontal_only
        assert not layout.combines_partitionings

    def test_horizontal_only(self, relation, space):
        fragments = [
            make_fragment(relation, space, RowRange(0, 3), ("a", "b", "c")),
            make_fragment(relation, space, RowRange(3, 6), ("a", "b", "c")),
        ]
        layout = Layout("h", relation, fragments)
        assert layout.is_horizontal_only
        assert not layout.is_sub_relation_layout

    def test_combined_partitioning(self, relation, space):
        fragments = [
            make_fragment(relation, space, RowRange(0, 3), ("a", "b")),
            make_fragment(relation, space, RowRange(3, 6), ("a", "b")),
            make_fragment(relation, space, relation.rows, ("c",)),
        ]
        layout = Layout("g", relation, fragments)
        assert layout.combines_partitionings

    def test_spaces_lists_distinct(self, relation, space):
        other = MemorySpace("dev", MemoryKind.DEVICE, 1 << 20)
        fragments = [
            make_fragment(relation, space, relation.rows, ("a", "b")),
            make_fragment(relation, other, relation.rows, ("c",)),
        ]
        layout = Layout("m", relation, fragments)
        assert layout.spaces == ("host", "dev")


class TestMutation:
    def test_remove_unknown_fragment(self, relation, space):
        fragment = make_fragment(relation, space, relation.rows, ("a", "b", "c"))
        layout = Layout("x", relation, [fragment])
        other = make_fragment(relation, space, relation.rows, ("a", "b", "c"))
        with pytest.raises(LayoutError):
            layout.remove_fragment(other)

    def test_replace_fragments(self, relation, space):
        original = make_fragment(relation, space, relation.rows, ("a", "b", "c"))
        layout = Layout("x", relation, [original])
        replacement = [
            make_fragment(relation, space, relation.rows, ("a", "b")),
            make_fragment(relation, space, relation.rows, ("c",)),
        ]
        layout.replace_fragments(replacement)
        layout.validate()
        assert len(layout) == 2
