"""Compression codec and compressed-fragment tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.hardware.memory import MemoryKind, MemorySpace
from repro.layout.compression import (
    ALL_CODECS,
    DictionaryCodec,
    FrameOfReferenceCodec,
    RunLengthCodec,
    choose_codec,
)
from repro.layout.fragment import Fragment
from repro.layout.region import Region
from repro.model.datatypes import FLOAT64, INT64
from repro.model.relation import Relation
from repro.model.schema import Schema


class TestDictionary:
    def test_roundtrip(self):
        values = np.array([5, 5, 9, 5, 9, 9, 1], dtype="<i8")
        column = DictionaryCodec().encode(values)
        assert np.array_equal(column.decode(), values)

    def test_random_access(self):
        values = np.array([5, 5, 9, 5], dtype="<i8")
        column = DictionaryCodec().encode(values)
        assert column.decode_at(2) == 9

    def test_low_cardinality_compresses(self):
        values = np.zeros(1000, dtype="<i8")
        values[::7] = 1
        column = DictionaryCodec().encode(values)
        assert column.ratio > 6  # 8-byte values -> 1-byte codes

    def test_code_width_grows_with_cardinality(self):
        small = DictionaryCodec().encode(np.arange(200, dtype="<i8") % 10)
        large = DictionaryCodec().encode(np.arange(600, dtype="<i8") % 300)
        assert small.payload[1].dtype.itemsize == 1
        assert large.payload[1].dtype.itemsize == 2

    def test_strings(self):
        values = np.array([b"DE", b"US", b"DE", b"DE"], dtype="S2")
        column = DictionaryCodec().encode(values)
        assert np.array_equal(column.decode(), values)
        assert column.decode_at(1) == b"US"


class TestRunLength:
    def test_roundtrip(self):
        values = np.repeat(np.array([3, 1, 4], dtype="<i8"), (5, 1, 3))
        column = RunLengthCodec().encode(values)
        assert np.array_equal(column.decode(), values)

    def test_random_access_hits_right_run(self):
        values = np.repeat(np.array([3, 1, 4], dtype="<i8"), (5, 1, 3))
        column = RunLengthCodec().encode(values)
        assert column.decode_at(0) == 3
        assert column.decode_at(4) == 3
        assert column.decode_at(5) == 1
        assert column.decode_at(8) == 4

    def test_sorted_column_compresses_hard(self):
        values = np.repeat(np.arange(10, dtype="<i8"), 100)
        column = RunLengthCodec().encode(values)
        assert column.ratio > 50

    def test_empty(self):
        column = RunLengthCodec().encode(np.empty(0, dtype="<i8"))
        assert column.count == 0
        assert len(column.decode()) == 0


class TestFrameOfReference:
    def test_roundtrip(self):
        values = np.array([10_000, 10_003, 10_001], dtype="<i8")
        column = FrameOfReferenceCodec().encode(values)
        assert np.array_equal(column.decode(), values)
        assert column.decode_at(1) == 10_003

    def test_small_range_uses_one_byte(self):
        values = (np.arange(1000) % 200 + 5_000_000).astype("<i8")
        column = FrameOfReferenceCodec().encode(values)
        assert column.payload[1].dtype.itemsize == 1
        assert column.ratio > 7

    def test_rejects_floats(self):
        with pytest.raises(StorageError):
            FrameOfReferenceCodec().encode(np.ones(4, dtype="<f8"))

    def test_negative_values(self):
        values = np.array([-50, -48, -49], dtype="<i8")
        column = FrameOfReferenceCodec().encode(values)
        assert np.array_equal(column.decode(), values)


class TestChooseCodec:
    def test_picks_smallest(self):
        sorted_runs = np.repeat(np.arange(5, dtype="<i8"), 200)
        best = choose_codec(sorted_runs)
        assert best is not None and best.codec.name == "run-length"

    def test_incompressible_returns_none(self):
        rng = np.random.default_rng(1)
        noise = rng.standard_normal(64)  # float64 white noise
        assert choose_codec(noise) is None

    def test_all_codecs_registered(self):
        assert {codec.name for codec in ALL_CODECS} == {
            "dictionary", "run-length", "frame-of-reference",
        }


class TestCompressedFragment:
    @pytest.fixture
    def space(self):
        return MemorySpace("host", MemoryKind.HOST, 1 << 22)

    @pytest.fixture
    def fragment(self, space):
        relation = Relation("t", Schema.of(("v", INT64)), 1000)
        fragment = Fragment(
            Region.full(relation), relation.schema, None, space
        )
        fragment.append_columns(
            {"v": (np.arange(1000) % 8).astype("<i8")}
        )
        return fragment

    def test_compress_shrinks_allocation(self, fragment, space):
        before = space.used
        assert fragment.compress()
        assert space.used < before
        assert fragment.is_compressed
        assert fragment.nbytes < 8000

    def test_values_unchanged(self, fragment):
        expected = list(fragment.column("v"))
        fragment.compress()
        assert list(fragment.column("v")) == expected
        assert fragment.read_field(13, "v") == expected[13]
        assert fragment.read_row(13) == (expected[13],)

    def test_read_only_after_compress(self, fragment):
        fragment.compress()
        with pytest.raises(StorageError):
            fragment.update_field(0, "v", 99)
        with pytest.raises(StorageError):
            fragment.append_rows([(1,)])

    def test_double_compress_rejected(self, fragment):
        fragment.compress()
        with pytest.raises(StorageError):
            fragment.compress()

    def test_fat_fragment_rejected(self, space):
        from repro.layout.linearization import LinearizationKind

        relation = Relation("t", Schema.of(("a", INT64), ("b", INT64)), 10)
        fat = Fragment(
            Region.full(relation), relation.schema,
            LinearizationKind.DSM, space,
        )
        fat.append_rows([(i, i) for i in range(10)])
        with pytest.raises(StorageError):
            fat.compress()

    def test_partial_fragment_rejected(self, space):
        relation = Relation("t", Schema.of(("v", INT64)), 10)
        partial = Fragment(Region.full(relation), relation.schema, None, space)
        partial.append_rows([(1,)])
        with pytest.raises(StorageError):
            partial.compress()

    def test_incompressible_stays_raw(self, space):
        relation = Relation("t", Schema.of(("v", FLOAT64)), 64)
        fragment = Fragment(Region.full(relation), relation.schema, None, space)
        rng = np.random.default_rng(3)
        fragment.append_columns({"v": rng.standard_normal(64)})
        assert not fragment.compress()
        assert not fragment.is_compressed
        fragment.update_field(0, "v", 1.0)  # still writable

    def test_copy_decompresses(self, fragment, space):
        fragment.compress()
        clone = fragment.copy_to(space)
        assert not clone.is_compressed
        assert list(clone.column("v")) == list(fragment.column("v"))

    def test_scan_cost_drops(self, fragment, platform, space):
        from repro.execution.context import ExecutionContext
        from repro.execution.operators import column_scan_cost

        ctx = ExecutionContext(platform)
        raw_memory, __ = column_scan_cost(fragment, "v", ctx)
        fragment.compress()
        compressed_memory, compressed_compute = column_scan_cost(fragment, "v", ctx)
        assert compressed_memory < raw_memory
        assert compressed_compute > 0


@given(
    st.lists(st.integers(-100, 100), min_size=1, max_size=300),
    st.sampled_from(["dictionary", "run-length", "frame-of-reference"]),
)
@settings(max_examples=60)
def test_codec_roundtrip_property(values, codec_name):
    codec = next(codec for codec in ALL_CODECS if codec.name == codec_name)
    array = np.array(values, dtype="<i8")
    column = codec.encode(array)
    assert np.array_equal(column.decode(), array)
    for index in range(0, len(values), max(len(values) // 7, 1)):
        assert column.decode_at(index) == array[index]
