"""Linearization-property derivation tests, including Figure 3's examples."""

import pytest

from repro.errors import ClassificationError
from repro.hardware.memory import MemoryKind, MemorySpace
from repro.layout.fragment import Fragment
from repro.layout.linearization import LinearizationKind
from repro.layout.properties import (
    LinearizationProperty,
    derive_linearization_property,
)
from repro.layout.region import Region
from repro.model.datatypes import INT32
from repro.model.relation import Relation, RowRange
from repro.model.schema import Schema

NSM = LinearizationKind.NSM
DSM = LinearizationKind.DSM


@pytest.fixture
def space():
    return MemorySpace("host", MemoryKind.HOST, 1 << 20)


@pytest.fixture
def relation():
    """Figure 3's R(A..E) with 4 rows."""
    return Relation(
        "R",
        Schema.of(("A", INT32), ("B", INT32), ("C", INT32), ("D", INT32), ("E", INT32)),
        4,
    )


def fragment(relation, space, rows, attributes, kind=None):
    region = Region(rows, attributes)
    return Fragment(region, relation.schema, kind if region.is_fat else None, space)


class TestFigure3Examples:
    def test_weak_flexible_layout1(self, relation, space):
        """Layout 1: fat {A,B,C} + fat {D,E} — vertical, fat fragments."""
        population = [
            fragment(relation, space, relation.rows, ("A", "B", "C"), NSM),
            fragment(relation, space, relation.rows, ("D", "E"), DSM),
        ]
        derived = derive_linearization_property(
            population, fat_formats={NSM, DSM}, per_fragment_choice=True
        )
        assert derived is LinearizationProperty.FAT_VARIABLE

    def test_strong_flexible_layout2(self, relation, space):
        """Layout 2 mixes vertical and horizontal cuts (strong flexible)."""
        population = [
            fragment(relation, space, RowRange(0, 2), ("A", "B", "C"), NSM),
            fragment(relation, space, RowRange(2, 4), ("A", "B", "C"), NSM),
            fragment(relation, space, relation.rows, ("D",)),
            fragment(relation, space, relation.rows, ("E",)),
        ]
        derived = derive_linearization_property(population, fat_formats={NSM})
        assert derived is LinearizationProperty.VARIABLE_NSM_FIXED_PARTIALLY_DSM_EMULATED


class TestFatOnly:
    def test_nsm_fixed(self, relation, space):
        population = [fragment(relation, space, relation.rows, relation.schema.names, NSM)]
        assert (
            derive_linearization_property(population, fat_formats={NSM})
            is LinearizationProperty.FAT_NSM_FIXED
        )

    def test_dsm_fixed(self, relation, space):
        population = [fragment(relation, space, relation.rows, relation.schema.names, DSM)]
        assert (
            derive_linearization_property(population, fat_formats={DSM})
            is LinearizationProperty.FAT_DSM_FIXED
        )

    def test_nsm_plus_dsm_fixed_without_choice(self, relation, space):
        """Fractured Mirrors: both formats, but fixed per layout."""
        population = [
            fragment(relation, space, relation.rows, relation.schema.names, NSM),
            fragment(relation, space, relation.rows, relation.schema.names, DSM),
        ]
        derived = derive_linearization_property(
            population, fat_formats={NSM, DSM}, per_fragment_choice=False
        )
        assert derived is LinearizationProperty.FAT_NSM_PLUS_DSM_FIXED

    def test_variable_with_choice(self, relation, space):
        population = [fragment(relation, space, relation.rows, relation.schema.names, NSM)]
        derived = derive_linearization_property(
            population, fat_formats={NSM, DSM}, per_fragment_choice=True
        )
        assert derived is LinearizationProperty.FAT_VARIABLE

    def test_capability_defaults_to_observation(self, relation, space):
        population = [fragment(relation, space, relation.rows, relation.schema.names, DSM)]
        assert (
            derive_linearization_property(population)
            is LinearizationProperty.FAT_DSM_FIXED
        )


class TestThinOnly:
    def test_dsm_emulated(self, relation, space):
        population = [
            fragment(relation, space, relation.rows, (name,))
            for name in relation.schema.names
        ]
        assert (
            derive_linearization_property(population)
            is LinearizationProperty.THIN_DSM_EMULATED
        )

    def test_nsm_emulated(self, relation, space):
        population = [
            fragment(relation, space, RowRange(i, i + 1), relation.schema.names)
            for i in range(4)
        ]
        assert (
            derive_linearization_property(population)
            is LinearizationProperty.THIN_NSM_EMULATED
        )

    def test_single_attribute_relation_is_direct(self, space):
        narrow = Relation("n", Schema.of(("only", INT32)), 4)
        population = [fragment(narrow, space, narrow.rows, ("only",))]
        assert (
            derive_linearization_property(population, relation_arity=1)
            is LinearizationProperty.DIRECT
        )

    def test_single_cells_are_direct(self, relation, space):
        population = [fragment(relation, space, RowRange(0, 1), ("A",))]
        assert (
            derive_linearization_property(population)
            is LinearizationProperty.DIRECT
        )

    def test_mixed_orientations_unclassifiable(self, relation, space):
        population = [
            fragment(relation, space, relation.rows, ("A",)),
            fragment(relation, space, RowRange(0, 1), ("B", "C", "D", "E")),
        ]
        with pytest.raises(ClassificationError):
            derive_linearization_property(population)


class TestMixedFatThin:
    def test_dsm_fixed_partially_nsm_emulated(self, relation, space):
        population = [
            fragment(relation, space, RowRange(0, 2), ("A", "B"), DSM),
            fragment(relation, space, RowRange(2, 3), ("A", "B")),
            fragment(relation, space, RowRange(3, 4), ("A", "B")),
            fragment(relation, space, RowRange(0, 2), ("C", "D", "E"), DSM),
            fragment(relation, space, RowRange(2, 3), ("C", "D", "E")),
            fragment(relation, space, RowRange(3, 4), ("C", "D", "E")),
        ]
        derived = derive_linearization_property(population, fat_formats={DSM})
        assert derived is LinearizationProperty.VARIABLE_DSM_FIXED_PARTIALLY_NSM_EMULATED

    def test_choice_overrides_partial_emulation(self, relation, space):
        """HYRISE-like: capability for both formats means the partial
        emulation is incidental and the property is plain variable."""
        population = [
            fragment(relation, space, relation.rows, ("A", "B"), NSM),
            fragment(relation, space, relation.rows, ("C",)),
            fragment(relation, space, relation.rows, ("D",)),
            fragment(relation, space, relation.rows, ("E",)),
        ]
        derived = derive_linearization_property(
            population, fat_formats={NSM, DSM}, per_fragment_choice=True
        )
        assert derived is LinearizationProperty.FAT_VARIABLE


class TestMeta:
    def test_empty_population_rejected(self):
        with pytest.raises(ClassificationError):
            derive_linearization_property([])

    def test_covers_nsm_and_dsm(self):
        assert LinearizationProperty.FAT_VARIABLE.covers_nsm_and_dsm
        assert LinearizationProperty.FAT_NSM_PLUS_DSM_FIXED.covers_nsm_and_dsm
        assert not LinearizationProperty.FAT_NSM_FIXED.covers_nsm_and_dsm
        assert not LinearizationProperty.THIN_DSM_EMULATED.covers_nsm_and_dsm

    def test_labels_match_table1_vocabulary(self):
        assert LinearizationProperty.FAT_DSM_FIXED.label == "fat, DSM-fixed"
        assert LinearizationProperty.THIN_DSM_EMULATED.label == "thin, DSM-emulated"
        assert (
            LinearizationProperty.VARIABLE_NSM_FIXED_PARTIALLY_DSM_EMULATED.label
            == "v. NSM-fixed p. DSM-emul."
        )
