"""Byte-exact linearization tests pinned to Figure 3's formats."""

import numpy as np
import pytest

from repro.errors import LayoutError, SchemaError
from repro.layout.linearization import (
    LinearizationKind,
    dsm_column_addresses,
    iter_dsm_column_addresses,
    iter_nsm_record_addresses,
    nsm_record_addresses,
    dsm_field_offset,
    dsm_serialize,
    nsm_field_offset,
    nsm_serialize,
)
from repro.model.datatypes import INT32
from repro.model.schema import Schema


@pytest.fixture
def schema():
    return Schema.of(("A", INT32), ("B", INT32), ("C", INT32))


@pytest.fixture
def rows():
    return [(11, 12, 13), (21, 22, 23), (31, 32, 33)]


def int32(value: int) -> bytes:
    return value.to_bytes(4, "little")


class TestNSM:
    def test_figure3_order(self, schema, rows):
        """NSM-Fixed: a1 b1 c1 a2 b2 c2 a3 b3 c3."""
        expected = b"".join(
            int32(v) for v in (11, 12, 13, 21, 22, 23, 31, 32, 33)
        )
        assert nsm_serialize(schema, rows) == expected

    def test_field_offset(self, schema):
        assert nsm_field_offset(schema, 0, "A") == 0
        assert nsm_field_offset(schema, 1, "B") == 12 + 4

    def test_is_row_major(self):
        assert LinearizationKind.NSM.is_row_major
        assert not LinearizationKind.DSM.is_row_major


class TestDSM:
    def test_figure3_order(self, schema, rows):
        """DSM-Fixed: a1 a2 a3 b1 b2 b3 c1 c2 c3 (ONE block)."""
        expected = b"".join(
            int32(v) for v in (11, 21, 31, 12, 22, 32, 13, 23, 33)
        )
        assert dsm_serialize(schema, rows) == expected

    def test_field_offset(self, schema):
        assert dsm_field_offset(schema, 3, 0, "A") == 0
        assert dsm_field_offset(schema, 3, 1, "B") == 3 * 4 + 4
        assert dsm_field_offset(schema, 3, 2, "C") == 2 * 3 * 4 + 2 * 4

    def test_out_of_range_row(self, schema):
        with pytest.raises(LayoutError):
            dsm_field_offset(schema, 3, 3, "A")

    def test_unknown_attribute(self, schema):
        with pytest.raises(LayoutError):
            dsm_field_offset(schema, 3, 0, "Z")

    def test_ragged_rows_rejected(self, schema):
        with pytest.raises(LayoutError):
            dsm_serialize(schema, [(1, 2)])


class TestEquivalence:
    def test_same_bytes_different_order(self, schema, rows):
        """NSM and DSM hold identical multisets of field bytes."""
        nsm = nsm_serialize(schema, rows)
        dsm = dsm_serialize(schema, rows)
        assert len(nsm) == len(dsm)
        chunk = lambda data: sorted(data[i : i + 4] for i in range(0, len(data), 4))
        assert chunk(nsm) == chunk(dsm)


class TestAddressGenerators:
    """The array trace APIs are pairwise identical to the iterators."""

    def test_nsm_record_addresses_match_iterator(self, schema):
        indices = [0, 2, 1, 2]
        addresses, sizes = nsm_record_addresses(1000, schema, indices)
        expected = list(iter_nsm_record_addresses(1000, schema, indices))
        assert list(zip(addresses.tolist(), sizes.tolist())) == expected
        assert addresses.dtype == np.int64 and sizes.dtype == np.int64

    def test_dsm_column_addresses_match_iterator(self, schema):
        indices = [2, 0, 1]
        addresses, sizes = dsm_column_addresses(64, schema, 3, "B", indices)
        expected = list(iter_dsm_column_addresses(64, schema, 3, "B", indices))
        assert list(zip(addresses.tolist(), sizes.tolist())) == expected

    def test_empty_index_list(self, schema):
        addresses, sizes = nsm_record_addresses(0, schema, [])
        assert addresses.size == 0 and sizes.size == 0

    def test_nsm_addresses_step_by_record_width(self, schema):
        addresses, __ = nsm_record_addresses(0, schema, range(4))
        assert np.array_equal(np.diff(addresses), [schema.record_width] * 3)

    def test_dsm_addresses_step_by_field_width(self, schema):
        addresses, sizes = dsm_column_addresses(0, schema, 8, "C", range(4))
        width = schema.attribute("C").width
        assert np.array_equal(np.diff(addresses), [width] * 3)
        assert set(sizes.tolist()) == {width}

    def test_dsm_unknown_attribute_raises(self, schema):
        with pytest.raises(SchemaError):
            dsm_column_addresses(0, schema, 3, "Z", [0])
