"""Property-based tests on layout/region algebra invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.hardware.memory import MemoryKind, MemorySpace
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.region import Region
from repro.model.datatypes import INT32
from repro.model.relation import Relation, RowRange
from repro.model.schema import Schema

ATTRS = ("a", "b", "c", "d")


def make_relation(rows):
    return Relation("r", Schema.of(*[(n, INT32) for n in ATTRS]), rows)


ranges = st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
    lambda pair: RowRange(min(pair), max(pair) + 1)
)
attr_subsets = st.lists(
    st.sampled_from(ATTRS), min_size=1, max_size=4, unique=True
).map(tuple)
regions = st.builds(Region, ranges, attr_subsets)


class TestRegionAlgebra:
    @given(regions, regions)
    def test_overlap_symmetric(self, first, second):
        assert first.overlaps(second) == second.overlaps(first)

    @given(regions)
    def test_self_overlap(self, region):
        assert region.overlaps(region)

    @given(regions, regions)
    def test_overlap_iff_shared_cell(self, first, second):
        shared = any(
            first.contains(row, attribute) and second.contains(row, attribute)
            for row in range(
                max(first.rows.start, second.rows.start),
                min(first.rows.stop, second.rows.stop),
            )
            for attribute in ATTRS
        )
        assert first.overlaps(second) == shared

    @given(regions)
    def test_fat_thin_partition(self, region):
        assert region.is_fat != region.is_thin


class TestLayoutCoverage:
    @given(
        st.integers(4, 60),
        st.integers(1, 20),
        st.permutations(ATTRS),
        st.sets(st.integers(1, 3), max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_grid_partitions_always_validate(self, rows, chunk, order, cuts):
        """Any vertical grouping crossed with any row chunking covers."""
        bounds = [0, *sorted(cuts), len(ATTRS)]
        groups = [
            order[start:stop]
            for start, stop in zip(bounds, bounds[1:])
            if stop > start
        ]
        relation = make_relation(rows)
        space = MemorySpace("h", MemoryKind.HOST, 1 << 22)
        fragments = []
        for group in groups:
            for row_range in relation.rows.split(chunk):
                region = Region(row_range, tuple(group))
                fragments.append(
                    Fragment(
                        region,
                        relation.schema,
                        LinearizationKind.NSM if region.is_fat else None,
                        space,
                        materialize=False,
                    )
                )
        Layout("grid", relation, fragments)  # validates on construction

    @given(st.integers(4, 40), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_removing_any_fragment_breaks_coverage(self, rows, chunk):
        relation = make_relation(rows)
        space = MemorySpace("h", MemoryKind.HOST, 1 << 22)
        fragments = []
        for row_range in relation.rows.split(chunk):
            region = Region(row_range, ATTRS)
            fragments.append(
                Fragment(
                    region,
                    relation.schema,
                    LinearizationKind.NSM if region.is_fat else None,
                    space,
                    materialize=False,
                )
            )
        layout = Layout("h", relation, fragments)
        layout.remove_fragment(fragments[len(fragments) // 2])
        with pytest.raises(LayoutError):
            layout.validate()
