"""RebalancePlanner: fixed-point target loads → split/merge/move plans."""

from __future__ import annotations

import pytest

from repro.rebalance import MergeOp, MoveOp, RebalancePlanner, SplitOp
from repro.rebalance.skew import SkewReport


def window(loads: dict[int, float]) -> SkewReport:
    """A synthetic load window (what SkewDetector.snapshot returns)."""
    total = sum(loads.values())
    mean = total / len(loads) if loads else 0.0
    if total > 0:
        hottest = max(loads, key=lambda sid: (loads[sid], -sid))
        coldest = min(loads, key=lambda sid: (loads[sid], sid))
        ratio = loads[hottest] / mean
    else:
        hottest = coldest = -1
        ratio = 1.0
    return SkewReport(
        loads=loads,
        total=total,
        mean=mean,
        ratio=ratio,
        hottest=hottest,
        coldest=coldest,
    )


class TestPlan:
    def test_balanced_window_plans_nothing(self, stack):
        built = stack(shard_count=4)
        plan = built.planner.plan(window({0: 10.0, 1: 10.0, 2: 10.0, 3: 10.0}))
        assert plan == []

    def test_noise_inside_the_dead_band_plans_nothing(self, stack):
        # A 30% sampling wobble on one shard must not trigger churn:
        # the power-of-two piece rounding ignores anything within
        # [0.71, 1.41] of the target load.
        built = stack(shard_count=4)
        plan = built.planner.plan(window({0: 13.0, 1: 10.0, 2: 10.0, 3: 9.0}))
        assert plan == []

    def test_hot_shard_splits_to_its_piece_count(self, stack):
        built = stack(shard_count=4, rows=128)
        plan = built.planner.plan(window({0: 8.0, 1: 1.0, 2: 1.0, 3: 1.0}))
        splits = [op for op in plan if isinstance(op, SplitOp)]
        # The fixed point settles at a target load of 2: the 8-load
        # shard wants 4 pieces (3 splits), the 1-load shards half a
        # piece each (merge candidates).
        assert len(splits) == 3
        assert splits[0].shard_id == 0
        assert splits[0].new_shard_id == len(built.shard_map.shards)
        new_ids = [op.new_shard_id for op in splits]
        assert new_ids == [4, 5, 6]  # consecutive, in emission order

    def test_cold_shards_merge_within_the_target_headroom(self, stack):
        built = stack(shard_count=4, rows=128)
        plan = built.planner.plan(window({0: 8.0, 1: 1.0, 2: 1.0, 3: 1.0}))
        merges = [op for op in plan if isinstance(op, MergeOp)]
        assert len(merges) == 1
        assert {merges[0].winner_id, merges[0].loser_id} <= {1, 2, 3}

    def test_single_row_shards_never_split(self, stack):
        built = stack(shard_count=4, rows=4)  # one row per shard
        plan = built.planner.plan(window({0: 8.0, 1: 1.0, 2: 1.0, 3: 1.0}))
        assert not [op for op in plan if isinstance(op, SplitOp)]

    def test_empty_window_plans_nothing(self, stack):
        built = stack(shard_count=4)
        assert built.planner.plan(built.skew.snapshot()) == []

    def test_never_merges_below_min_live(self, stack):
        built = stack(shard_count=2)
        planner = RebalancePlanner(built.shard_map, min_live=2)
        plan = planner.plan(window({0: 1.0, 1: 1.0}))
        assert not [op for op in plan if isinstance(op, MergeOp)]

    def test_moves_rehome_primaries_from_busiest_to_idlest(self, stack, ctx):
        built = stack(shard_count=4, node_count=4)
        crowded = built.shard_map.shards[0].primary
        for shard in built.shard_map.shards[1:]:
            state = built.migrator._source_state(shard, ctx)
            built.shard_map.promote(shard.shard_id, crowded, state)
        plan = built.planner.plan(window({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}))
        moves = [op for op in plan if isinstance(op, MoveOp)]
        assert moves, "4 shards on one node must plan primary moves"
        assert all(op.dest != crowded for op in moves)

    def test_parameter_validation(self, stack):
        built = stack()
        with pytest.raises(ValueError):
            RebalancePlanner(built.shard_map, target_ratio=0.9)
        with pytest.raises(ValueError):
            RebalancePlanner(built.shard_map, min_live=0)

    def test_describe_labels_are_stable(self):
        assert SplitOp(3, 8).describe() == "split(3->+8)"
        assert MergeOp(5, 2).describe() == "merge(2->5)"
        assert MoveOp(1, "node-2").describe() == "move(1->node-2)"
