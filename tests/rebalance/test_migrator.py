"""LiveMigrator happy paths: journaled split/merge/move cutover."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DistributedError, MigrationInProgress
from repro.rebalance import MergeOp, MigrationPhase, MoveOp, SplitOp
from tests.rebalance.conftest import owned_positions, table_totals


class TestSplit:
    def test_split_bumps_the_epoch_and_preserves_the_table(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        before = table_totals(built.shard_map)
        migration = built.migrator.run(
            SplitOp(0, len(built.shard_map.shards)), ctx
        )
        assert migration.phase is MigrationPhase.COMMITTED
        assert migration.epoch_committed == built.shard_map.epoch == 1
        assert built.shard_map.live_shard_count == 5
        assert table_totals(built.shard_map) == before
        assert np.array_equal(owned_positions(built.shard_map), np.arange(128))
        assert built.migrator.stats.splits == 1

    def test_split_replaces_the_base_files(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        old_path = built.shard_map.shards[0].path
        built.migrator.run(SplitOp(0, 4), ctx)
        paths = built.dfs.paths()
        assert old_path not in paths
        assert built.shard_map.shards[0].path in paths
        assert built.shard_map.shards[4].path in paths

    def test_stale_split_id_is_rejected_before_claiming(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        with pytest.raises(DistributedError, match="stale plan"):
            built.migrator.begin(SplitOp(0, 9), ctx)
        # Nothing was claimed: the shard migrates fine afterwards.
        built.migrator.run(SplitOp(0, 4), ctx)


class TestMerge:
    def test_merge_folds_the_loser_into_the_winner(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        before = table_totals(built.shard_map)
        migration = built.migrator.run(MergeOp(1, 2), ctx)
        assert migration.phase is MigrationPhase.COMMITTED
        assert built.shard_map.live_shard_count == 3
        assert built.shard_map.shards[2].row_count == 0
        assert built.shard_map.shards[1].row_count == 64
        assert table_totals(built.shard_map) == before
        assert np.array_equal(owned_positions(built.shard_map), np.arange(128))

    def test_merged_away_shard_is_a_stale_plan_target(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        built.migrator.run(MergeOp(1, 2), ctx)
        with pytest.raises(DistributedError, match="merged away"):
            built.migrator.begin(MoveOp(2, built.cluster.nodes[0].name), ctx)


class TestMove:
    def test_move_rehomes_the_primary(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        before = table_totals(built.shard_map)
        source = built.shard_map.shards[0].primary
        dest = next(
            node.name
            for node in built.cluster.nodes
            if node.name != source
        )
        built.migrator.run(MoveOp(0, dest), ctx)
        assert built.shard_map.shards[0].primary == dest
        assert table_totals(built.shard_map) == before
        assert built.migrator.stats.moves == 1

    def test_move_to_unknown_node_rolls_back(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        epoch = built.shard_map.epoch
        with pytest.raises(DistributedError):
            built.migrator.run(MoveOp(0, "node-99"), ctx)
        assert built.shard_map.epoch == epoch
        # The claim was released: the shard migrates fine afterwards.
        built.migrator.run(SplitOp(0, 4), ctx)


class TestProtocol:
    def test_concurrent_migration_of_one_shard_is_refused(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        migration = built.migrator.begin(SplitOp(0, 4), ctx)
        with pytest.raises(MigrationInProgress):
            built.migrator.begin(SplitOp(0, 4), ctx)
        built.migrator.finish(migration, ctx)
        assert built.shard_map.epoch == 1

    def test_complete_requires_a_copied_migration(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        migration = built.migrator.run(SplitOp(0, 4), ctx)
        with pytest.raises(DistributedError, match="cannot complete"):
            built.migrator.complete(migration, ctx)

    def test_catch_up_replays_updates_past_the_copy_snapshot(
        self, stack, ctx
    ):
        built = stack(shard_count=4, rows=128)
        migration = built.migrator.begin(SplitOp(0, 4), ctx)
        # A query commits an update on the source while the copy is
        # already durable — exactly the window catch-up exists for.
        built.wal.log_begin(1, ctx)
        built.wal.log_update(1, "orders", "v", 3, 21.0, 1000.0, ctx)
        built.wal.log_commit(1, ctx)
        built.migrator.finish(migration, ctx)
        assert migration.caught_up == 1
        state = built.shard_map.state(0)
        assert state is not None
        assert state["v"][3] == 1000.0

    def test_migration_cycles_are_charged_honestly(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        report = built.skew.snapshot()
        built.planner.plan(report)
        assert ctx.counters.cycles == 0.0  # planning is free
        built.migrator.run(SplitOp(0, 4), ctx)
        assert ctx.counters.cycles > 0.0  # migrating is not
        assert built.migrator.stats.cycles == pytest.approx(
            ctx.counters.cycles
        )
        assert ctx.breakdown.parts.get("migration-copy", 0.0) > 0.0
