"""Shared fixtures for the rebalance tier: a migratable sharded stack."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.faults import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.rebalance import LiveMigrator, RebalancePlanner, SkewDetector
from repro.recovery import ReplicatedLog, WriteAheadLog
from repro.sharding import ShardingScheme, ShardMap


@pytest.fixture
def stack(platform):
    """Factory: a fully wired live-migration stack.

    Returns a function building a namespace of (cluster, dfs, columns,
    shard_map, wal, replicated, injector, metrics, migrator, skew,
    planner) for a given seed and cluster shape, so tests can shape
    what they need while sharing the platform fixture.
    """

    def build(
        seed: int = 0,
        node_count: int = 4,
        shard_count: int = 4,
        replication: int = 2,
        rows: int = 128,
    ) -> SimpleNamespace:
        injector = FaultInjector(seed=seed)
        injector.install(platform)
        cluster = Cluster(node_count)
        dfs = BlockStore(
            cluster, replication=replication, block_size=4096, injector=injector
        )
        positions = np.arange(rows)
        columns = {
            "k": ((positions * 13) % 101).astype(np.float64),
            "v": ((positions * 7) % 97).astype(np.float64),
        }
        shard_map = ShardMap(
            "orders",
            columns,
            cluster,
            dfs,
            shard_count,
            scheme=ShardingScheme.RANGE,
        )
        replicated = ReplicatedLog(dfs, name="orders")
        wal = WriteAheadLog(
            platform, group_commit=1, replicator=replicated.on_flush
        )
        metrics = MetricsRegistry()
        migrator = LiveMigrator(
            shard_map, wal, injector, replicated=replicated
        )
        return SimpleNamespace(
            injector=injector,
            cluster=cluster,
            dfs=dfs,
            columns=columns,
            shard_map=shard_map,
            wal=wal,
            replicated=replicated,
            metrics=metrics,
            migrator=migrator,
            skew=SkewDetector(metrics, shard_map),
            planner=RebalancePlanner(shard_map),
        )

    return build


def table_totals(shard_map) -> dict[str, float]:
    """Per-attribute sums over every live shard's serving state."""
    totals: dict[str, float] = {}
    for shard in shard_map.shards:
        if not shard.row_count:
            continue
        state = shard_map.state(shard.shard_id)
        assert state is not None, f"shard {shard.shard_id} has no serving state"
        for attr, values in state.items():
            totals[attr] = totals.get(attr, 0.0) + float(values.sum())
    return totals


def owned_positions(shard_map) -> np.ndarray:
    """Every live shard's owned row positions, sorted globally."""
    owned = [
        shard.positions
        for shard in shard_map.shards
        if shard.row_count
    ]
    return np.sort(np.concatenate(owned))
