"""SkewDetector: windows over the executor's shard-load counters."""

from __future__ import annotations

import pytest

from repro.rebalance import SkewDetector
from repro.sharding.executor import SHARD_LOAD_METRIC


def record(stack, shard_id: int, load: float) -> None:
    stack.metrics.counter(f"{SHARD_LOAD_METRIC}.{shard_id}").inc(load)


class TestSnapshot:
    def test_empty_window_reads_balanced(self, stack):
        report = stack(shard_count=4).skew.snapshot()
        assert report.total == 0
        assert report.ratio == 1.0

    def test_window_is_the_delta_since_last_snapshot(self, stack):
        built = stack(shard_count=4)
        record(built, 0, 300.0)
        record(built, 1, 100.0)
        first = built.skew.snapshot()
        assert first.loads[0] == 300.0
        assert first.hottest == 0
        # The baseline advanced: a fresh window starts from zero.
        record(built, 1, 50.0)
        second = built.skew.snapshot()
        assert second.loads == {0: 0.0, 1: 50.0, 2: 0.0, 3: 0.0}

    def test_idle_shards_count_as_zero_load(self, stack):
        built = stack(shard_count=4)
        record(built, 2, 400.0)
        report = built.skew.snapshot()
        # One hot shard over four live ones: max/mean is the shard count.
        assert report.ratio == pytest.approx(4.0)
        assert report.coldest != 2

    def test_non_resetting_snapshot_keeps_the_baseline(self, stack):
        built = stack(shard_count=2)
        record(built, 0, 10.0)
        peek = built.skew.snapshot(reset=False)
        again = built.skew.snapshot()
        assert peek.loads == again.loads

    def test_skewed_applies_the_threshold(self, stack):
        built = stack(shard_count=4)
        record(built, 0, 100.0)
        record(built, 1, 100.0)
        record(built, 2, 100.0)
        record(built, 3, 100.0)
        assert not built.skew.skewed(built.skew.snapshot())
        record(built, 0, 400.0)
        assert built.skew.skewed(built.skew.snapshot())

    def test_threshold_below_one_rejected(self, stack):
        built = stack()
        with pytest.raises(ValueError):
            SkewDetector(built.metrics, built.shard_map, threshold=0.5)


class TestFromWindows:
    """The detector can read the dimensional ``shard.load`` series."""

    def record_sample(self, registry, shard_id: int, load: float, cycle=0.0):
        registry.record(
            "shard.load", load, cycle=cycle, shard=str(shard_id)
        )

    def test_windowed_detector_matches_counter_detector(self, stack):
        from repro.obs.timeseries import WindowedRegistry

        built = stack(shard_count=4)
        registry = WindowedRegistry()
        windowed = SkewDetector.from_windows(registry, built.shard_map)
        # Identical traffic through both planes.
        for shard_id, load in ((0, 300.0), (1, 100.0)):
            record(built, shard_id, load)
            self.record_sample(registry, shard_id, load)
        counter_report = built.skew.snapshot()
        windowed_report = windowed.snapshot()
        assert windowed_report.loads == counter_report.loads
        assert windowed_report.ratio == counter_report.ratio
        assert windowed_report.hottest == counter_report.hottest

    def test_windowed_baseline_advances_like_the_counter_one(self, stack):
        from repro.obs.timeseries import WindowedRegistry

        built = stack(shard_count=2)
        registry = WindowedRegistry()
        detector = SkewDetector.from_windows(registry, built.shard_map)
        self.record_sample(registry, 0, 50.0)
        first = detector.snapshot()
        assert first.loads[0] == 50.0
        self.record_sample(registry, 1, 25.0, cycle=10.0)
        second = detector.snapshot()
        assert second.loads == {0: 0.0, 1: 25.0}

    def test_windowed_detection_threshold(self, stack):
        from repro.obs.timeseries import WindowedRegistry

        built = stack(shard_count=4)
        registry = WindowedRegistry()
        detector = SkewDetector.from_windows(registry, built.shard_map)
        for shard_id in range(4):
            self.record_sample(registry, shard_id, 100.0)
        assert not detector.skewed(detector.snapshot())
        self.record_sample(registry, 0, 400.0, cycle=20.0)
        assert detector.skewed(detector.snapshot())
