"""SkewDetector: windows over the executor's shard-load counters."""

from __future__ import annotations

import pytest

from repro.rebalance import SkewDetector
from repro.sharding.executor import SHARD_LOAD_METRIC


def record(stack, shard_id: int, load: float) -> None:
    stack.metrics.counter(f"{SHARD_LOAD_METRIC}.{shard_id}").inc(load)


class TestSnapshot:
    def test_empty_window_reads_balanced(self, stack):
        report = stack(shard_count=4).skew.snapshot()
        assert report.total == 0
        assert report.ratio == 1.0

    def test_window_is_the_delta_since_last_snapshot(self, stack):
        built = stack(shard_count=4)
        record(built, 0, 300.0)
        record(built, 1, 100.0)
        first = built.skew.snapshot()
        assert first.loads[0] == 300.0
        assert first.hottest == 0
        # The baseline advanced: a fresh window starts from zero.
        record(built, 1, 50.0)
        second = built.skew.snapshot()
        assert second.loads == {0: 0.0, 1: 50.0, 2: 0.0, 3: 0.0}

    def test_idle_shards_count_as_zero_load(self, stack):
        built = stack(shard_count=4)
        record(built, 2, 400.0)
        report = built.skew.snapshot()
        # One hot shard over four live ones: max/mean is the shard count.
        assert report.ratio == pytest.approx(4.0)
        assert report.coldest != 2

    def test_non_resetting_snapshot_keeps_the_baseline(self, stack):
        built = stack(shard_count=2)
        record(built, 0, 10.0)
        peek = built.skew.snapshot(reset=False)
        again = built.skew.snapshot()
        assert peek.loads == again.loads

    def test_skewed_applies_the_threshold(self, stack):
        built = stack(shard_count=4)
        record(built, 0, 100.0)
        record(built, 1, 100.0)
        record(built, 2, 100.0)
        record(built, 3, 100.0)
        assert not built.skew.skewed(built.skew.snapshot())
        record(built, 0, 400.0)
        assert built.skew.skewed(built.skew.snapshot())

    def test_threshold_below_one_rejected(self, stack):
        built = stack()
        with pytest.raises(ValueError):
            SkewDetector(built.metrics, built.shard_map, threshold=0.5)
