"""Crash-at-every-phase matrix: resume or roll back from the journal.

Every row of the protocol's crash-recovery contract
(docs/REBALANCING.md) gets a test: a coordinator death before the
``rebalance-begin`` marker, mid-copy, after ``rebalance-copied``, and
after ``rebalance-commit`` — plus the wire-fault path (catch-up
drops) and the exactly-once fault accounting for each.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DistributedError, RebalanceAborted
from repro.rebalance import (
    SITE_NET_DROP_CATCHUP,
    SITE_REBALANCE_CRASH_MID_COPY,
    SITE_REBALANCE_CRASH_PRE_CUTOVER,
    LiveMigrator,
    Migration,
    MigrationPhase,
    SplitOp,
    pending_migrations,
)
from repro.recovery.wal import LogRecordKind
from tests.rebalance.conftest import owned_positions, table_totals


class TestMidCopyCrash:
    def test_rolls_back_and_tallies_recovered(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        before_totals = table_totals(built.shard_map)
        shard_files = lambda: {  # noqa: E731 - journal segments vary
            path for path in built.dfs.paths() if path.startswith("shards/")
        }
        before_paths = shard_files()
        built.injector.arm(SITE_REBALANCE_CRASH_MID_COPY, 1.0)
        with pytest.raises(RebalanceAborted) as excinfo:
            built.migrator.begin(SplitOp(0, 4), ctx)
        # The re-raised abort is already attributed — not injected.
        assert not getattr(excinfo.value, "injected", False)
        assert built.shard_map.epoch == 0
        assert shard_files() == before_paths
        assert table_totals(built.shard_map) == before_totals
        assert built.migrator.stats.aborted == 1
        report = built.injector.report
        assert report.injected == report.recovered == 1
        assert report.unaccounted == 0

    def test_shard_is_migratable_after_the_rollback(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        built.injector.arm(SITE_REBALANCE_CRASH_MID_COPY, 1.0)
        with pytest.raises(RebalanceAborted):
            built.migrator.begin(SplitOp(0, 4), ctx)
        built.injector.disarm(SITE_REBALANCE_CRASH_MID_COPY)
        built.migrator.run(SplitOp(0, 4), ctx)
        assert built.shard_map.epoch == 1
        assert np.array_equal(owned_positions(built.shard_map), np.arange(128))


class TestPreCutoverCrash:
    def test_resumes_forward_from_the_journal(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        before_totals = table_totals(built.shard_map)
        built.injector.arm(SITE_REBALANCE_CRASH_PRE_CUTOVER, 1.0)
        migration = built.migrator.begin(SplitOp(0, 4), ctx)
        epoch = built.migrator.finish(migration, ctx)
        assert epoch == built.shard_map.epoch == 1
        assert migration.phase is MigrationPhase.COMMITTED
        assert built.migrator.stats.resumed == 1
        assert table_totals(built.shard_map) == before_totals
        report = built.injector.report
        assert report.injected == report.recovered == 1
        assert report.unaccounted == 0

    def test_resume_replays_catchup_updates(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        migration = built.migrator.begin(SplitOp(0, 4), ctx)
        built.wal.log_begin(1, ctx)
        built.wal.log_update(1, "orders", "v", 5, 35.0, 777.0, ctx)
        built.wal.log_commit(1, ctx)
        built.injector.arm(SITE_REBALANCE_CRASH_PRE_CUTOVER, 1.0)
        built.migrator.finish(migration, ctx)
        state = built.shard_map.state(0)
        assert state is not None and state["v"][5] == 777.0
        assert migration.caught_up >= 1


class TestCatchupDrops:
    def test_absorbed_drops_tally_retried(self, stack, ctx):
        built = stack(seed=3, shard_count=4, rows=128)
        built.injector.arm(SITE_NET_DROP_CATCHUP, 0.5)
        built.migrator.run(SplitOp(0, 4), ctx)
        report = built.injector.report
        assert report.injected == report.retried >= 1
        assert report.unaccounted == 0
        assert built.shard_map.epoch == 1

    def test_exhaustion_rolls_back_and_surfaces(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        built.injector.arm(SITE_NET_DROP_CATCHUP, 1.0)
        migration = built.migrator.begin(SplitOp(0, 4), ctx)
        with pytest.raises(DistributedError):
            built.migrator.finish(migration, ctx)
        assert migration.phase is MigrationPhase.ABORTED
        assert built.shard_map.epoch == 0
        assert np.array_equal(owned_positions(built.shard_map), np.arange(128))
        # The final error surfaces un-tallied; the caller attributes it.
        report = built.injector.report
        attempts = built.migrator.catchup_retry.max_attempts
        assert report.injected == attempts
        assert report.retried == attempts - 1
        assert report.unaccounted == 1
        report.record_surfaced()
        assert report.unaccounted == 0


class TestJournalDecisions:
    """A restarted coordinator (fresh migrator) consults the journal."""

    def test_begin_without_copied_rolls_back(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        label = "split(0->+4)@e0"
        built.wal.log_rebalance(LogRecordKind.REBALANCE_BEGIN, label, ctx)
        built.wal.flush(ctx)
        built.shard_map.begin_migration(0)
        orphan = Migration(
            op=SplitOp(0, 4),
            label=label,
            shard_ids=(0,),
            phase=MigrationPhase.BEGUN,
        )
        restarted = LiveMigrator(
            built.shard_map, built.wal, built.injector,
            replicated=built.replicated,
        )
        assert restarted.recover(orphan, ctx) is None
        assert orphan.phase is MigrationPhase.ABORTED
        assert built.shard_map.epoch == 0
        # The journal resolved: nothing pending survives the abort.
        assert pending_migrations(built.wal) == []

    def test_copied_resumes_forward_on_a_restarted_migrator(
        self, stack, ctx
    ):
        built = stack(shard_count=4, rows=128)
        before_totals = table_totals(built.shard_map)
        migration = built.migrator.begin(SplitOp(0, 4), ctx)
        # Coordinator death: staged memory is gone, files are durable.
        for fragment in migration.fragments:
            fragment.columns = None
        restarted = LiveMigrator(
            built.shard_map, built.wal, built.injector,
            replicated=built.replicated,
        )
        epoch = restarted.recover(migration, ctx)
        assert epoch == built.shard_map.epoch == 1
        assert restarted.stats.resumed == 1
        assert table_totals(built.shard_map) == before_totals
        assert np.array_equal(owned_positions(built.shard_map), np.arange(128))

    def test_committed_migration_recovers_to_its_epoch(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        migration = built.migrator.run(SplitOp(0, 4), ctx)
        restarted = LiveMigrator(
            built.shard_map, built.wal, built.injector,
            replicated=built.replicated,
        )
        assert restarted.recover(migration, ctx) == 1
        assert built.shard_map.epoch == 1
        assert restarted.stats.resumed == 0

    def test_nothing_durable_means_nothing_to_do(self, stack, ctx):
        built = stack(shard_count=4, rows=128)
        ghost = Migration(
            op=SplitOp(0, 4),
            label="split(0->+4)@e0",
            shard_ids=(0,),
            phase=MigrationPhase.BEGUN,
        )
        assert built.migrator.recover(ghost, ctx) is None
        assert built.shard_map.epoch == 0
        assert built.migrator.stats.aborted == 0
