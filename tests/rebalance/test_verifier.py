"""The rebalance chaos verifier: byte identity, determinism, accounting."""

from __future__ import annotations

from repro.rebalance import build_skewed_stream, run_rebalance_chaos

SMOKE = dict(query_count=24, row_count=512, interleave_count=24)


class TestSkewedStream:
    def test_stream_is_deterministic(self):
        first = build_skewed_stream(512, 16, seed=7, hot_fraction=0.8)
        second = build_skewed_stream(512, 16, seed=7, hot_fraction=0.8)
        assert len(first) == len(second) == 16
        for spec_a, spec_b in zip(first, second):
            assert spec_a.shape == spec_b.shape
            assert spec_a.positions == spec_b.positions

    def test_hot_fraction_targets_the_first_eighth(self):
        stream = build_skewed_stream(512, 32, seed=1, hot_fraction=1.0)
        for spec in stream:
            assert max(spec.positions) < 512 // 8


class TestChaosRun:
    def test_zero_fault_run_is_clean_and_rebalances(self):
        result = run_rebalance_chaos(seed=5, fault_rate=0.0, **SMOKE)
        assert result.ok
        assert result.mismatched == 0 and result.data_lost == 0
        assert result.committed > 0 and result.epoch > 0
        assert result.ratio_before > result.ratio_after
        assert result.resilience["injected"] == 0

    def test_chaos_run_keeps_byte_identity_and_accounting(self):
        result = run_rebalance_chaos(seed=5, fault_rate=0.25, **SMOKE)
        assert result.ok
        assert result.matched == result.queries
        assert result.final_checks_ok
        assert result.accounting_ok
        assert result.resilience["injected"] > 0

    def test_same_seed_runs_are_identical(self):
        first = run_rebalance_chaos(seed=23, fault_rate=0.25, **SMOKE)
        second = run_rebalance_chaos(seed=23, fault_rate=0.25, **SMOKE)
        assert first.resilience == second.resilience
        assert first.cycles == second.cycles
        assert first.epoch == second.epoch

    def test_migration_cycles_are_part_of_the_bill(self):
        result = run_rebalance_chaos(seed=5, fault_rate=0.0, **SMOKE)
        assert 0 < result.rebalance_cycles < result.cycles
        assert result.migrator["cycles"] == result.rebalance_cycles

    def test_to_dict_round_trips_the_tallies(self):
        result = run_rebalance_chaos(seed=5, fault_rate=0.1, **SMOKE)
        record = result.to_dict()
        assert record["seed"] == 5
        assert record["resilience"] == result.resilience
        assert record["ok"] == result.ok
