"""Bench schema + cross-run regression detection."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    make_bench_record,
    validate_bench_record,
)
from repro.obs.regress import compare_records
from repro.obs.regress.__main__ import main as regress_main


def record(metrics, tolerances=None, bench="demo", ok=True):
    return make_bench_record(bench, ok=ok, metrics=metrics, tolerances=tolerances)


class TestBenchSchema:
    def test_make_bench_record_shape(self):
        made = record({"speedup": 3.0}, {"speedup": {"direction": "higher_better"}})
        assert made["schema"] == BENCH_SCHEMA
        assert made["bench"] == "demo"
        assert made["ok"] is True
        assert made["metrics"] == {"speedup": 3.0}
        assert validate_bench_record(made) == []

    def test_payload_lands_at_top_level(self):
        made = make_bench_record(
            "demo", ok=True, metrics={}, grid=[1, 2], seeds=[5]
        )
        assert made["grid"] == [1, 2] and made["seeds"] == [5]

    def test_payload_collision_is_an_error(self):
        with pytest.raises(ValueError, match="collides"):
            make_bench_record("demo", ok=True, metrics={}, schema="x")

    def test_non_finite_metric_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            make_bench_record("demo", ok=True, metrics={"x": float("inf")})

    def test_validate_flags_each_violation(self):
        assert validate_bench_record([]) != []
        broken = {
            "schema": "other/9",
            "bench": "",
            "ok": "yes",
            "smoke": False,
            "metrics": {"m": "fast"},
            "tolerances": {"ghost": {"direction": "sideways"}},
        }
        problems = "\n".join(validate_bench_record(broken))
        for needle in ("schema", "bench", "ok", "metric 'm'", "ghost"):
            assert needle in problems

    def test_all_checked_in_writers_use_the_schema(self):
        """Every BENCH_* writer in the tree assembles its record through
        make_bench_record — grep-level pin that nothing regressed to an
        ad-hoc dict."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        writers = [
            path
            for path in root.rglob("*.py")
            if "BENCH_" in path.read_text(encoding="utf-8")
            and path.name in ("__main__.py", "sweeper.py", "verifier.py")
            and "json.dump" in path.read_text(encoding="utf-8")
        ]
        assert len(writers) >= 8
        for path in writers:
            # The record may be assembled in a sibling module (the
            # serving CLI dumps what its verifier built).
            package = "\n".join(
                sibling.read_text(encoding="utf-8")
                for sibling in path.parent.glob("*.py")
            )
            assert "make_bench_record" in package, path


class TestCompareRecords:
    def test_identical_artifacts_pass(self):
        base = record({"speedup": 3.0, "cycles": 1000.0})
        report = compare_records(base, json.loads(json.dumps(base)))
        assert report.ok
        assert report.regressions == []

    def test_twenty_percent_regression_flags(self):
        base = record({"speedup": 3.0}, {"speedup": {"rel": 0.10,
                                                     "direction": "higher_better"}})
        curr = record({"speedup": 2.4}, {"speedup": {"rel": 0.10,
                                                     "direction": "higher_better"}})
        report = compare_records(base, curr)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.name == "speedup"
        assert delta.rel_change == pytest.approx(-0.2)

    def test_direction_awareness(self):
        tolerances = {
            "speedup": {"rel": 0.10, "direction": "higher_better"},
            "cycles": {"rel": 0.10, "direction": "lower_better"},
            "count": {"rel": 0.10, "direction": "two_sided"},
        }
        base = record({"speedup": 2.0, "cycles": 100.0, "count": 50.0}, tolerances)
        # Improvements in the good direction never flag...
        better = record(
            {"speedup": 4.0, "cycles": 50.0, "count": 50.0}, tolerances
        )
        assert compare_records(base, better).ok
        # ...drift in the bad direction flags each metric its own way.
        worse = record(
            {"speedup": 1.0, "cycles": 200.0, "count": 80.0}, tolerances
        )
        flagged = {d.name for d in compare_records(base, worse).regressions}
        assert flagged == {"speedup", "cycles", "count"}

    def test_missing_metric_flags_as_shape_problem(self):
        base = record({"speedup": 2.0, "cycles": 100.0})
        curr = record({"speedup": 2.0})
        report = compare_records(base, curr)
        (delta,) = report.regressions
        assert delta.name == "cycles"
        assert "missing" in delta.reason

    def test_bench_mismatch_is_a_problem(self):
        report = compare_records(
            record({}, bench="serving"), record({}, bench="staging")
        )
        assert not report.ok
        assert any("mismatch" in problem for problem in report.problems)

    def test_malformed_artifact_is_a_problem_not_a_crash(self):
        report = compare_records({"schema": "nope"}, record({}))
        assert not report.ok
        assert any(problem.startswith("baseline:") for problem in report.problems)

    def test_zero_baseline_to_nonzero_flags(self):
        report = compare_records(record({"faults": 0.0}), record({"faults": 3.0}))
        assert not report.ok

    def test_render_mentions_verdict(self):
        report = compare_records(record({"x": 1.0}), record({"x": 1.0}))
        assert "verdict: OK" in report.render()


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_diff_exit_codes(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", record({"speedup": 3.0}))
        same = self._write(tmp_path, "same.json", record({"speedup": 3.0}))
        bad = self._write(
            tmp_path,
            "bad.json",
            record({"speedup": 1.0}, {"speedup": {"rel": 0.10,
                                                  "direction": "higher_better"}}),
        )
        assert regress_main([base, same]) == 0
        assert regress_main([base, bad]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_validate_mode(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.json", record({}))
        broken = self._write(tmp_path, "broken.json", {"schema": "nope"})
        assert regress_main(["--validate", good]) == 0
        assert regress_main(["--validate", good, broken]) == 1
        capsys.readouterr()
