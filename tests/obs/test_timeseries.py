"""Windowed dimensional time series: rings, windows, closure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.event import PerfCounters
from repro.obs.timeseries import (
    COUNTER_SERIES,
    LABEL_KEYS,
    TimeSeries,
    WindowedRegistry,
    aggregate_windows,
    default_metrics,
    windowed_metrics,
)


class TestTimeSeries:
    def test_counter_rejects_negative_delta(self):
        series = TimeSeries("events", frozenset())
        with pytest.raises(ValueError):
            series.append(10.0, -1.0)

    def test_gauge_accepts_any_value(self):
        series = TimeSeries("level", frozenset(), kind="gauge")
        series.append(5.0, -3.0)
        assert series.total == -3.0

    def test_running_aggregates_survive_eviction(self):
        series = TimeSeries("events", frozenset(), capacity=4)
        for cycle in range(10):
            series.append(float(cycle), 1.0)
        assert series.total == 10.0
        assert series.count == 10
        assert series.evicted == 6
        assert series.evicted_value == 6.0
        # The ring only shows the newest four samples, in cycle order.
        assert series.samples() == [(6.0, 1.0), (7.0, 1.0), (8.0, 1.0), (9.0, 1.0)]

    def test_unknown_kind_and_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("x", frozenset(), kind="summary")
        with pytest.raises(ValueError):
            TimeSeries("x", frozenset(), capacity=0)


class TestLabels:
    def test_unknown_label_key_is_a_hard_error(self):
        registry = WindowedRegistry()
        with pytest.raises(ValueError, match="unknown label keys"):
            registry.record("events", 1.0, cycle=0.0, region="us-east")

    def test_vocabulary_keys_all_accepted(self):
        registry = WindowedRegistry()
        for key in sorted(LABEL_KEYS):
            registry.record("events", 1.0, cycle=0.0, **{key: "a"})
        assert registry.total("events") == float(len(LABEL_KEYS))

    def test_matching_filters_on_label_subset(self):
        registry = WindowedRegistry()
        registry.record("events", 1.0, cycle=0.0, tenant="t0", shard="0")
        registry.record("events", 2.0, cycle=0.0, tenant="t0", shard="1")
        registry.record("events", 4.0, cycle=0.0, tenant="t1", shard="0")
        assert registry.total("events", tenant="t0") == 3.0
        assert registry.total("events", shard="0") == 5.0
        assert registry.total("events") == 7.0

    def test_kind_is_fixed_at_first_use(self):
        registry = WindowedRegistry()
        registry.record("latency", 10.0, cycle=0.0, kind="gauge")
        with pytest.raises(ValueError, match="already exists as kind"):
            registry.record("latency", 1.0, cycle=1.0, kind="counter")


class TestWindows:
    def test_tumbling_windows_partition_the_timeline(self):
        registry = WindowedRegistry()
        for cycle in (0.0, 10.0, 25.0, 99.0):
            registry.record("events", 1.0, cycle=cycle)
        windows = registry.windows("events", width=50.0, end=99.0)
        assert len(windows) == 2
        assert [window.sum for window in windows] == [3.0, 1.0]
        assert windows[0].start == 0.0 and windows[0].end == 50.0
        assert windows[1].start == 50.0 and windows[1].end == 100.0

    def test_sliding_windows_overlap(self):
        registry = WindowedRegistry()
        for cycle in (0.0, 40.0, 80.0):
            registry.record("events", 1.0, cycle=cycle)
        windows = registry.windows("events", width=50.0, stride=25.0, end=80.0)
        # Strided starts: 0, 25, 50 — the last window contains end=80.
        assert [(w.start, w.end) for w in windows] == [
            (0.0, 50.0),
            (25.0, 75.0),
            (50.0, 100.0),
        ]
        assert [window.sum for window in windows] == [2.0, 1.0, 1.0]

    def test_gauge_window_percentiles_match_histogram_math(self):
        registry = WindowedRegistry()
        for index, value in enumerate((10.0, 20.0, 30.0, 40.0)):
            registry.record(
                "latency", value, cycle=float(index), kind="gauge"
            )
        (window,) = registry.windows("latency", width=100.0, end=50.0)
        assert window.count == 4
        assert window.mean == 25.0
        assert window.p50 == pytest.approx(25.0)
        assert window.p95 == pytest.approx(38.5)

    def test_rate_is_sum_over_width(self):
        windows = aggregate_windows([(5.0, 10.0)], width=100.0, stride=100.0, end=5.0)
        assert windows[0].rate == pytest.approx(0.1)

    def test_bad_width_and_stride_rejected(self):
        registry = WindowedRegistry()
        with pytest.raises(ValueError):
            registry.windows("events", width=0.0)
        with pytest.raises(ValueError):
            registry.windows("events", width=10.0, stride=20.0)

    def test_clock_clamps_stale_stamps(self):
        """A long-lived scope's counter lags the loop's *now*; the clamp
        keeps its emissions from landing in already-closed windows."""
        registry = WindowedRegistry()
        registry.advance_clock(1_000.0)
        registry.record("events", 1.0, cycle=5.0)
        (series,) = registry.matching("events")
        assert series.samples() == [(1_000.0, 1.0)]


class TestClosure:
    def test_platform_series_close_against_perfcounters(self):
        registry = WindowedRegistry()
        totals = PerfCounters()
        for cycle in (100.0, 250.0, 900.0):
            delta = PerfCounters(cycles=cycle / 10.0, pcie_bytes=64, transfers=1)
            registry.sample_counters(delta, cycle)
            totals.merge(delta)
        assert registry.verify_closure(totals) == []

    def test_lost_increment_is_detected(self):
        registry = WindowedRegistry()
        totals = PerfCounters()
        delta = PerfCounters(pcie_bytes=64)
        registry.sample_counters(delta, 10.0)
        totals.merge(delta)
        totals.pcie_bytes += 64  # charged but never emitted
        problems = registry.verify_closure(totals)
        assert any("platform.pcie_bytes" in problem for problem in problems)

    def test_event_sourced_series_close_via_counter_series_map(self):
        registry = WindowedRegistry()
        totals = PerfCounters(staging_hits=2, staging_misses=1, faults_injected=1)
        registry.record("staging.hits", 1.0, cycle=10.0, layer="staging")
        registry.record("staging.hits", 1.0, cycle=20.0, layer="staging")
        registry.record("staging.misses", 1.0, cycle=5.0, layer="staging")
        registry.record("fault.injected", 1.0, cycle=30.0, fault_site="x.y")
        assert registry.verify_closure(totals) == []
        totals.staging_hits += 1
        assert registry.verify_closure(totals) != []

    def test_eviction_breaks_the_gate(self):
        registry = WindowedRegistry(ring_capacity=2)
        totals = PerfCounters(faults_injected=3)
        for cycle in (1.0, 2.0, 3.0):
            registry.record("fault.injected", 1.0, cycle=cycle)
        problems = registry.verify_closure(totals)
        assert any("ring evicted" in problem for problem in problems)

    def test_counter_series_map_names_real_fields(self):
        field_names = set(PerfCounters().snapshot())
        assert set(COUNTER_SERIES.values()) <= field_names

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e7),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=64,
        )
    )
    def test_window_sums_close_for_any_sample_stream(self, stream):
        """The closure property: for any counter stream, tumbling-window
        sums over the full timeline equal the running total exactly."""
        registry = WindowedRegistry()
        totals = PerfCounters()
        for cycle, hits in stream:
            delta = PerfCounters(staging_hits=hits)
            if hits:
                registry.record(
                    "staging.hits", float(hits), cycle=cycle, layer="staging"
                )
            totals.merge(delta)
        assert registry.verify_closure(totals) == []
        end = max((cycle for cycle, __ in stream), default=0.0)
        windows = registry.windows("staging.hits", width=max(end / 7.0, 1.0))
        assert sum(w.sum for w in windows) == pytest.approx(
            registry.total("staging.hits")
        )


class TestObserveQuery:
    def test_observe_query_still_feeds_base_aggregation(self):
        registry = WindowedRegistry()
        registry.advance_clock(500.0)
        counters = PerfCounters(cycles=120.0, pcie_bytes=256, transfers=2)
        snapshot = registry.observe_query("q0", counters)
        assert snapshot["cycles"] == 120.0
        assert registry.totals.pcie_bytes == 256
        assert registry.histogram("query.cycles").values == [120.0]
        # ...and lands platform.* samples stamped at the loop clock.
        (series,) = registry.matching("platform.pcie_bytes")
        assert series.samples() == [(500.0, 256.0)]
        assert registry.verify_closure(counters) == []


class TestDefaultRegistry:
    def test_windowed_metrics_installs_and_restores(self):
        assert default_metrics() is None
        with windowed_metrics() as registry:
            assert default_metrics() is registry
            from repro.hardware.platform import Platform

            platform = Platform.paper_testbed()
            assert platform.metrics is registry
        assert default_metrics() is None
