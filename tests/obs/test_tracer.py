"""Tracer span/event recording and the nesting invariant."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.hardware.event import PerfCounters
from repro.obs.tracer import (
    Span,
    Tracer,
    default_tracer,
    nesting_violations,
    set_default_tracer,
    tracing,
)


class TestSpanRecording:
    def test_span_duration_is_charged_cycles(self):
        tracer = Tracer()
        counters = PerfCounters()
        span = tracer.begin("scan", "operator", counters)
        counters.charge(1234.0)
        tracer.end(span, counters)
        assert span.cycles == 1234.0
        assert tracer.roots == [span]

    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        counters = PerfCounters()
        with tracer.span("query", "query", counters) as root:
            counters.charge(10)
            with tracer.span("kernel", "kernel", counters) as child:
                counters.charge(90)
        assert root.children == [child]
        assert child.begin == 10 and child.end == 100
        assert root.self_cycles == 10.0

    def test_end_of_non_innermost_span_raises(self):
        tracer = Tracer()
        counters = PerfCounters()
        outer = tracer.begin("outer", "query", counters)
        tracer.begin("inner", "operator", counters)
        with pytest.raises(ExecutionError):
            tracer.end(outer, counters)

    def test_span_context_manager_closes_on_error(self):
        tracer = Tracer()
        counters = PerfCounters()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed", "operator", counters):
                counters.charge(7)
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.roots[0].end == 7

    def test_instant_events_and_categories(self):
        tracer = Tracer()
        counters = PerfCounters(cycles=55.0)
        event = tracer.instant("fault(pcie)", "fault", counters, site="pcie")
        assert event.ts == 55.0 and event.attrs == {"site": "pcie"}
        with tracer.span("q", "query", counters):
            pass
        assert tracer.categories() == {"fault", "query"}

    def test_annotate_targets_innermost_span(self):
        tracer = Tracer()
        counters = PerfCounters()
        with tracer.span("q", "query", counters):
            with tracer.span("op", "operator", counters) as inner:
                tracer.annotate(served_by="gpu")
        assert inner.attrs == {"served_by": "gpu"}
        tracer.annotate(ignored=True)  # no open span: no-op, no raise

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        counters = PerfCounters()
        with tracer.span("a", "query", counters):
            with tracer.span("b", "operator", counters):
                with tracer.span("c", "kernel", counters):
                    pass
            with tracer.span("d", "operator", counters):
                pass
        assert [span.name for span in tracer.spans()] == ["a", "b", "c", "d"]


class TestNestingValidator:
    def test_clean_tree_has_no_violations(self):
        tracer = Tracer()
        counters = PerfCounters()
        with tracer.span("q", "query", counters):
            counters.charge(5)
            with tracer.span("op", "operator", counters):
                counters.charge(10)
            counters.charge(5)
        assert nesting_violations(tracer.roots[0]) == []

    def test_open_span_is_flagged(self):
        span = Span(name="stuck", category="operator", begin=0.0)
        assert nesting_violations(span) == ["stuck: span never closed"]

    def test_escaping_child_is_flagged(self):
        parent = Span(name="p", category="query", begin=0.0, end=10.0)
        parent.children.append(
            Span(name="c", category="operator", begin=5.0, end=20.0)
        )
        assert any("escapes parent" in p for p in nesting_violations(parent))

    def test_overlapping_siblings_are_flagged(self):
        parent = Span(name="p", category="query", begin=0.0, end=100.0)
        parent.children.append(
            Span(name="a", category="operator", begin=0.0, end=60.0)
        )
        parent.children.append(
            Span(name="b", category="operator", begin=40.0, end=90.0)
        )
        assert any("before sibling" in p for p in nesting_violations(parent))


class TestDefaultTracer:
    def test_tracing_installs_and_restores(self):
        assert default_tracer() is None
        with tracing() as active:
            assert default_tracer() is active
            nested = Tracer()
            with tracing(nested):
                assert default_tracer() is nested
            assert default_tracer() is active
        assert default_tracer() is None

    def test_set_default_returns_previous(self):
        first = Tracer()
        assert set_default_tracer(first) is None
        try:
            second = Tracer()
            assert set_default_tracer(second) is first
        finally:
            set_default_tracer(None)

    def test_new_platform_picks_up_default(self):
        from repro.hardware.platform import Platform

        with tracing() as active:
            platform = Platform.paper_testbed()
        assert platform.tracer is active
        assert Platform.paper_testbed().tracer is None


@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(["open", "close"]),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        ),
        max_size=60,
    )
)
def test_property_spans_on_monotone_clock_always_nest(steps):
    """Any open/close sequence under a non-decreasing clock nests cleanly.

    This is the structural guarantee behind the simulated timeline: the
    tracer reads cycles that only ever grow, so escapes, overlaps and
    out-of-order siblings cannot occur by construction.
    """
    tracer = Tracer()
    counters = PerfCounters()
    open_spans = []
    for action, charge in steps:
        counters.charge(charge)
        if action == "open":
            open_spans.append(
                tracer.begin(f"s{len(open_spans)}", "operator", counters)
            )
        elif open_spans:
            tracer.end(open_spans.pop(), counters)
    while open_spans:
        counters.charge(1.0)
        tracer.end(open_spans.pop(), counters)
    for root in tracer.roots:
        assert nesting_violations(root) == []
