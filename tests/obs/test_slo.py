"""SLO burn-rate alerting: spec validation, discrimination, determinism."""

import pytest

from repro.obs.slo import (
    DEFAULT_POLICIES,
    PAGE,
    TICKET,
    Alert,
    BurnRatePolicy,
    SloEvaluator,
    SloSpec,
    evaluate_slos,
)
from repro.obs.timeseries import WindowedRegistry


def latency_spec(threshold=100.0, objective=0.95):
    return SloSpec(
        name="p-latency",
        kind="latency",
        metric="serving.latency",
        objective=objective,
        threshold=threshold,
    )


def ratio_spec(objective=0.95):
    return SloSpec(
        name="shed-rate",
        kind="event_ratio",
        metric="serving.served",
        bad_metric="serving.shed",
        objective=objective,
    )


def record_latencies(registry, latencies, spacing=100.0):
    for index, value in enumerate(latencies):
        registry.record(
            "serving.latency",
            value,
            cycle=index * spacing,
            kind="gauge",
            tenant="t0",
        )


class TestSloSpec:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec("x", "availability", "m", objective=0.9)

    def test_objective_must_be_a_fraction(self):
        for objective in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError, match="objective"):
                SloSpec("x", "latency", "m", objective=objective, threshold=1.0)

    def test_latency_needs_threshold_and_ratio_needs_bad_metric(self):
        with pytest.raises(ValueError, match="threshold"):
            SloSpec("x", "latency", "m", objective=0.9)
        with pytest.raises(ValueError, match="bad_metric"):
            SloSpec("x", "event_ratio", "m", objective=0.9)

    def test_budget_is_one_minus_objective(self):
        assert latency_spec(objective=0.99).budget == pytest.approx(0.01)

    def test_latency_bad_fraction(self):
        registry = WindowedRegistry()
        record_latencies(registry, [50.0, 50.0, 150.0, 250.0])
        spec = latency_spec(threshold=100.0)
        assert spec.bad_fraction(registry, 0.0, 1_000.0) == pytest.approx(0.5)
        # Idle ranges spend no budget.
        assert spec.bad_fraction(registry, 10_000.0, 20_000.0) == 0.0

    def test_event_ratio_bad_fraction(self):
        registry = WindowedRegistry()
        registry.record("serving.served", 3.0, cycle=10.0, tenant="t0")
        registry.record("serving.shed", 1.0, cycle=20.0, tenant="t0")
        spec = ratio_spec()
        assert spec.bad_fraction(registry, 0.0, 100.0) == pytest.approx(0.25)


class TestBurnRatePolicy:
    def test_window_ordering_enforced(self):
        with pytest.raises(ValueError):
            BurnRatePolicy("x", fast_fraction=0.5, slow_fraction=0.25)
        with pytest.raises(ValueError):
            BurnRatePolicy("x", burn=0.0)

    def test_default_pairing_is_page_then_ticket(self):
        assert DEFAULT_POLICIES == (PAGE, TICKET)
        assert PAGE.burn > TICKET.burn


class TestEvaluator:
    def test_healthy_run_stays_silent(self):
        registry = WindowedRegistry()
        record_latencies(registry, [50.0] * 40, spacing=250.0)
        alerts = evaluate_slos(registry, [latency_spec()], horizon=10_000.0)
        assert alerts == []

    def test_sustained_violation_fires(self):
        registry = WindowedRegistry()
        # Every sample blows the threshold: burn = 1 / 0.05 = 20 on
        # every window, above both policies' thresholds.
        record_latencies(registry, [500.0] * 40, spacing=250.0)
        alerts = evaluate_slos(registry, [latency_spec()], horizon=10_000.0)
        severities = {alert.severity for alert in alerts}
        assert severities == {"page", "ticket"}

    def test_rising_edge_fires_once_per_episode(self):
        registry = WindowedRegistry()
        record_latencies(registry, [500.0] * 40, spacing=250.0)
        alerts = evaluate_slos(
            registry, [latency_spec()], horizon=10_000.0, policies=(PAGE,)
        )
        # One continuous episode, one page — no re-fire per stride.
        # The first stride boundary is one fast window in.
        assert len(alerts) == 1
        assert alerts[0].cycle == pytest.approx(10_000.0 * PAGE.fast_fraction)

    def test_recovered_then_relapsed_episode_fires_twice(self):
        registry = WindowedRegistry()
        bad, good = 500.0, 10.0
        pattern = [bad] * 10 + [good] * 20 + [bad] * 10
        record_latencies(registry, pattern, spacing=250.0)
        alerts = evaluate_slos(
            registry, [latency_spec()], horizon=10_000.0, policies=(PAGE,)
        )
        assert len(alerts) == 2

    def test_alert_stream_is_deterministic(self):
        def build():
            registry = WindowedRegistry()
            record_latencies(registry, [500.0, 50.0] * 20, spacing=250.0)
            registry.record("serving.served", 1.0, cycle=100.0, tenant="t0")
            registry.record("serving.shed", 5.0, cycle=200.0, tenant="t0")
            return evaluate_slos(
                registry, [latency_spec(), ratio_spec()], horizon=10_000.0
            )

        first = [alert.key() for alert in build()]
        second = [alert.key() for alert in build()]
        assert first == second and first

    def test_event_ratio_overload_fires_and_healthy_does_not(self):
        overloaded = WindowedRegistry()
        healthy = WindowedRegistry()
        for cycle in range(0, 10_000, 100):
            overloaded.record("serving.served", 1.0, cycle=float(cycle))
            overloaded.record("serving.shed", 1.0, cycle=float(cycle))
            healthy.record("serving.served", 1.0, cycle=float(cycle))
        spec = ratio_spec()
        assert evaluate_slos(overloaded, [spec], horizon=10_000.0)
        assert evaluate_slos(healthy, [spec], horizon=10_000.0) == []

    def test_labels_scope_the_evaluation(self):
        registry = WindowedRegistry()
        for cycle in range(0, 10_000, 100):
            registry.record("serving.latency", 500.0, cycle=float(cycle),
                            kind="gauge", tenant="noisy")
            registry.record("serving.latency", 10.0, cycle=float(cycle),
                            kind="gauge", tenant="quiet")
        scoped = SloSpec(
            "quiet-latency", "latency", "serving.latency",
            objective=0.95, threshold=100.0, labels={"tenant": "quiet"},
        )
        assert evaluate_slos(registry, [scoped], horizon=10_000.0) == []
        unscoped = latency_spec()
        assert evaluate_slos(registry, [unscoped], horizon=10_000.0)

    def test_bad_horizon_rejected(self):
        evaluator = SloEvaluator(WindowedRegistry(), [latency_spec()])
        with pytest.raises(ValueError):
            evaluator.evaluate(0.0)

    def test_alert_key_rounds_burns(self):
        alert = Alert(
            slo="s", severity="page", cycle=10.0,
            burn_fast=1.23456789012, burn_slow=2.0,
            budget=0.05, threshold_burn=10.0,
        )
        assert alert.key() == ("s", "page", 10.0, 1.234567890, 2.0)
