"""The zero-observer-effect contract: tracing changes no simulated cycle.

These tests run real drivers twice — once traced, once untraced — and
compare the simulated results byte for byte.  Any divergence means an
instrumentation hook charged cycles, drew randomness or otherwise
perturbed the run, which the observability layer forbids outright.
"""

import json

from repro.obs.tracer import Tracer, nesting_violations


class TestWorkloadIdentity:
    def test_probe_workload_snapshots_are_byte_identical(self):
        from repro.obs.__main__ import run_figure2_workload

        tracer = Tracer()
        traced = run_figure2_workload(rows=50_000, tracer=tracer)
        untraced = run_figure2_workload(rows=50_000, tracer=None)
        assert json.dumps(traced["snapshot"], sort_keys=True) == json.dumps(
            untraced["snapshot"], sort_keys=True
        )
        assert traced["breakdown"] == untraced["breakdown"]
        # The traced run actually recorded something.
        assert tracer.roots and tracer.events

    def test_probe_workload_covers_all_required_layers(self):
        from repro.obs.__main__ import REQUIRED_SPAN_LAYERS, run_figure2_workload

        tracer = Tracer()
        run_figure2_workload(rows=50_000, tracer=tracer)
        span_layers = {span.category for span in tracer.spans()}
        assert set(REQUIRED_SPAN_LAYERS) <= span_layers
        instant_layers = {event.category for event in tracer.events}
        assert {"staging", "fault"} <= instant_layers
        for root in tracer.roots:
            assert nesting_violations(root) == []

    def test_untraced_run_records_nothing(self):
        from repro.obs.__main__ import run_figure2_workload
        from repro.obs.tracer import default_tracer

        before = default_tracer()
        run_figure2_workload(rows=50_000, tracer=None)
        assert default_tracer() is before


class TestFigure2DriverIdentity:
    def test_panel3_traced_equals_untraced(self):
        """The Fig. 2 panel 3 driver builds its own platforms per point;
        the process-wide default tracer reaches them — without changing
        a single measured cycle."""
        from repro.bench.figure2 import panel3_sum_all_transfer_included
        from repro.obs.tracer import tracing

        rows = (100_000,)
        baseline = panel3_sum_all_transfer_included(row_counts=rows)
        with tracing() as tracer:
            traced = panel3_sum_all_transfer_included(row_counts=rows)
        assert traced == baseline
        assert any(span.category == "pcie" for span in tracer.spans())
