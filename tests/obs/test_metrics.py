"""MetricsRegistry aggregation and derived scheduler-readable rates."""

import pytest

from repro.hardware.event import PerfCounters
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increases_and_rejects_negative(self):
        counter = Counter("c")
        assert counter.inc() == 1.0
        assert counter.inc(4.0) == 5.0
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_holds_latest(self):
        gauge = Gauge("g")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value == 0.75

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0
        assert summary["p95"] == pytest.approx(2.9)
        assert summary["p99"] == pytest.approx(2.98)

    def test_empty_histogram_summary_is_zeros(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.0

    def test_percentile_interpolates_between_ranks(self):
        histogram = Histogram("h")
        # Unsorted on purpose: percentile must sort internally.
        for value in (40.0, 10.0, 30.0, 20.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == 10.0
        assert histogram.percentile(100.0) == 40.0
        assert histogram.percentile(50.0) == pytest.approx(25.0)
        # rank = 3 * 0.25 = 0.75 -> between 10 and 20.
        assert histogram.percentile(25.0) == pytest.approx(17.5)

    def test_percentile_matches_numpy_linear_method(self):
        import numpy as np

        histogram = Histogram("h")
        values = [float((value * 37) % 101) for value in range(23)]
        for value in values:
            histogram.observe(value)
        for q in (0.0, 12.5, 50.0, 95.0, 99.0, 100.0):
            assert histogram.percentile(q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_percentile_of_singleton_is_that_value(self):
        histogram = Histogram("h")
        histogram.observe(7.0)
        assert histogram.percentile(99.0) == 7.0

    def test_percentile_rejects_out_of_range(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)
        with pytest.raises(ValueError):
            histogram.percentile(100.1)

    def test_percentile_of_empty_histogram_is_zero(self):
        assert Histogram("h").percentile(50.0) == 0.0


class TestHistogramMerge:
    def test_merge_is_exact_concatenation(self):
        left = Histogram("left")
        right = Histogram("right")
        for value in (1.0, 5.0, 9.0):
            left.observe(value)
        for value in (2.0, 4.0):
            right.observe(value)
        assert left.merge(right) is left  # chainable
        assert left.values == [1.0, 5.0, 9.0, 2.0, 4.0]
        assert right.values == [2.0, 4.0]  # source untouched

    def test_merged_percentiles_match_numpy_over_concatenation(self):
        import numpy as np

        shards = [
            [float((value * 31 + shard * 7) % 97) for value in range(17)]
            for shard in range(4)
        ]
        merged = Histogram("cluster")
        for samples in shards:
            part = Histogram("part")
            for value in samples:
                part.observe(value)
            merged.merge(part)
        flat = [value for samples in shards for value in samples]
        for q in (50.0, 95.0, 99.0):
            assert merged.percentile(q) == pytest.approx(
                float(np.percentile(flat, q))
            )

    def test_registry_cluster_aggregation(self):
        registry = MetricsRegistry()
        registry.histogram("shard-latency.0").observe(10.0)
        registry.histogram("shard-latency.0").observe(30.0)
        registry.histogram("shard-latency.1").observe(20.0)
        registry.histogram("unrelated").observe(99.0)
        by_prefix = registry.histograms_with_prefix("shard-latency")
        assert list(by_prefix) == ["shard-latency.0", "shard-latency.1"]
        cluster = registry.merged_histogram("shard-latency", "cluster")
        assert sorted(cluster.values) == [10.0, 20.0, 30.0]
        # A read-out, not a sink: never registered.
        assert "cluster" not in registry.dump()["histograms"]

    def test_prefix_filter_requires_the_dot(self):
        registry = MetricsRegistry()
        registry.histogram("shard-latency.0").observe(1.0)
        registry.histogram("shard-latency-extra.0").observe(2.0)
        assert list(registry.histograms_with_prefix("shard-latency")) == [
            "shard-latency.0"
        ]


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_observe_query_merges_totals_and_histograms(self):
        registry = MetricsRegistry()
        registry.observe_query("q1", PerfCounters(cycles=100.0, pcie_bytes=8))
        registry.observe_query("q2", PerfCounters(cycles=300.0, pcie_bytes=24))
        assert registry.totals.cycles == 400.0
        assert registry.totals.pcie_bytes == 32
        assert registry.histogram("query.cycles").summary()["mean"] == 200.0
        queries = registry.dump()["queries"]
        assert [entry["query"] for entry in queries] == ["q1", "q2"]

    def test_derived_rates_from_counters_alone(self):
        registry = MetricsRegistry()
        registry.observe_query(
            "q",
            PerfCounters(
                staging_hits=3, staging_misses=1, faults_injected=2, fault_retries=2
            ),
        )
        rates = registry.derive_rates()
        assert rates["staging_hit_rate"] == pytest.approx(0.75)
        assert rates["fault_retry_rate"] == pytest.approx(1.0)
        assert "pcie_bandwidth_utilization" not in rates  # no platform given
        assert registry.gauge("staging_hit_rate").value == pytest.approx(0.75)

    def test_rates_default_to_zero_when_nothing_happened(self):
        rates = MetricsRegistry().derive_rates()
        assert rates["staging_hit_rate"] == 0.0
        assert rates["fault_retry_rate"] == 0.0

    def test_pcie_utilization_needs_platform(self):
        from repro.hardware.platform import Platform

        platform = Platform.paper_testbed()
        registry = MetricsRegistry()
        # One second of simulated time moving half the rated bandwidth.
        seconds = 1.0
        cycles = platform.cpu.frequency_hz * seconds
        payload = int(platform.interconnect.bandwidth * seconds / 2)
        registry.observe_query(
            "q", PerfCounters(cycles=cycles, pcie_bytes=payload)
        )
        rates = registry.derive_rates(platform=platform)
        assert rates["pcie_bandwidth_utilization"] == pytest.approx(0.5, rel=1e-6)

    def test_wal_group_commit_size(self):
        from repro.execution.context import ExecutionContext
        from repro.hardware.platform import Platform
        from repro.recovery.wal import WriteAheadLog

        platform = Platform.paper_testbed()
        ctx = ExecutionContext(platform)
        wal = WriteAheadLog(platform, group_commit=4)
        for txn in range(1, 9):
            wal.log_begin(txn, ctx)
            wal.log_commit(txn, ctx)
        registry = MetricsRegistry()
        registry.observe_query("oltp", ctx.counters)
        rates = registry.derive_rates(wal=wal)
        # 16 records made durable by 2 group-commit fsyncs.
        assert rates["wal_group_commit_records"] == pytest.approx(8.0)

    def test_dump_is_plain_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        dump = registry.dump()
        assert list(dump["counters"]) == ["a", "b"]
        assert set(dump) == {"counters", "gauges", "histograms", "totals", "queries"}
