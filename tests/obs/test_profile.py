"""The explain() report, ASCII span trees and per-layer attribution."""

import pytest

from repro.execution.context import ExecutionContext
from repro.hardware.platform import Platform
from repro.obs.profile import explain, layer_attribution, render_span_tree
from repro.obs.tracer import Tracer


def traced_context() -> tuple[ExecutionContext, Tracer]:
    """A context whose tracer saw a query -> operator -> kernel stack."""
    platform = Platform.paper_testbed()
    tracer = Tracer()
    platform.tracer = tracer
    ctx = ExecutionContext(platform)
    with ctx.span("q1", "query"):
        ctx.charge("scan", 1_000_000)
        with ctx.span("device-sum(i_price)", "operator", on_device=True):
            ctx.charge("scan", 2_000_000)
            with ctx.span("gpu-reduce", "kernel"):
                ctx.charge("kernel", 1_000_000)
        tracer.instant("staging-hit", "staging", ctx.counters)
    return ctx, tracer


class TestRenderSpanTree:
    def test_tree_shows_names_layers_and_shares(self):
        _, tracer = traced_context()
        root = tracer.roots[0]
        lines = render_span_tree(root, root.cycles)
        assert "q1 [query]" in lines[0] and "100.0%" in lines[0]
        assert lines[1].startswith("├─ ") or lines[1].startswith("└─ ")
        assert any("gpu-reduce [kernel]" in line and "25.0%" in line for line in lines)

    def test_shown_attrs_are_inlined(self):
        _, tracer = traced_context()
        root = tracer.roots[0]
        lines = render_span_tree(root, root.cycles)
        assert any("{on_device=True}" in line for line in lines)

    def test_zero_total_renders_zero_share(self):
        from repro.obs.tracer import Span

        span = Span(name="empty", category="query", begin=0.0, end=0.0)
        assert "0.0%" in render_span_tree(span, 0.0)[0]


class TestLayerAttribution:
    def test_self_time_partitions_the_total(self):
        _, tracer = traced_context()
        attribution = layer_attribution(tracer)
        assert attribution == {
            "query": 1_000_000.0,
            "operator": 2_000_000.0,
            "kernel": 1_000_000.0,
        }
        assert sum(attribution.values()) == tracer.roots[0].cycles

    def test_empty_tracer_attributes_nothing(self):
        assert layer_attribution(Tracer()) == {}


class TestExplain:
    def test_report_heads_with_total_and_dominant_part(self):
        ctx, tracer = traced_context()
        report = explain(ctx, tracer)
        assert "query profile: 4000000 simulated cycles" in report
        assert "dominant cost: scan" in report
        assert "per-layer attribution (self time):" in report
        assert "instant events: 1" in report

    def test_uses_platform_tracer_when_not_passed(self):
        ctx, tracer = traced_context()
        assert explain(ctx) == explain(ctx, tracer)

    def test_untraced_context_raises(self):
        ctx = ExecutionContext(Platform.paper_testbed())
        with pytest.raises(ValueError):
            explain(ctx)

    def test_real_device_query_explains_transfer_dominance(self):
        """The paper's Fig. 2 headline — transfer dominates a cold device
        sum — falls straight out of the generated report."""
        from repro.bench.figure2 import build_column_store
        from repro.execution.device import device_sum_column
        from repro.workload.tpcc import item_relation

        platform = Platform.paper_testbed()
        tracer = Tracer()
        platform.tracer = tracer
        ctx = ExecutionContext(platform)
        store = build_column_store(platform, item_relation(100_000))
        device_sum_column(store, "i_price", ctx)
        report = explain(ctx)
        assert "device-sum(i_price) [operator]" in report
        assert "pcie-burst [pcie]" in report
        assert "gpu-reduce(i_price) [kernel]" in report
        attribution = layer_attribution(tracer)
        assert attribution["pcie"] > attribution["kernel"]
