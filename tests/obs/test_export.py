"""Chrome/Perfetto trace export and the CI schema gate."""

import json

import pytest

from repro.hardware.event import PerfCounters
from repro.obs.export import (
    CHROME_REQUIRED_KEYS,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer


def traced_run() -> Tracer:
    """A small two-layer trace with one instant event."""
    tracer = Tracer()
    counters = PerfCounters()
    with tracer.span("q", "query", counters):
        counters.charge(2_600_000)  # 1 ms at 2.6 GHz
        with tracer.span("k", "kernel", counters, chunks=2):
            counters.charge(2_600_000)
        tracer.instant("fault(pcie)", "fault", counters, site="pcie")
    return tracer


class TestChromeTraceEvents:
    def test_required_keys_on_every_event(self):
        events = chrome_trace_events(traced_run(), frequency_hz=2.6e9)
        for event in events:
            assert all(key in event for key in CHROME_REQUIRED_KEYS)

    def test_cycles_map_to_microseconds(self):
        events = chrome_trace_events(traced_run(), frequency_hz=2.6e9)
        query = next(e for e in events if e["name"] == "q")
        kernel = next(e for e in events if e["name"] == "k")
        assert query["ts"] == pytest.approx(0.0)
        assert query["dur"] == pytest.approx(2000.0)  # 2 ms inclusive
        assert kernel["ts"] == pytest.approx(1000.0)
        assert kernel["dur"] == pytest.approx(1000.0)

    def test_one_thread_row_per_category_with_names(self):
        events = chrome_trace_events(traced_run(), frequency_hz=2.6e9)
        names = {
            e["tid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        by_category = {
            e["cat"]: e["tid"] for e in events if e["ph"] in ("X", "i")
        }
        assert set(names.values()) == {"query", "kernel", "fault"}
        for category, tid in by_category.items():
            assert names[tid] == category

    def test_instant_events_carry_scope(self):
        events = chrome_trace_events(traced_run(), frequency_hz=2.6e9)
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["args"] == {"site": "pcie"}

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        tracer.begin("stuck", "operator", PerfCounters())
        assert chrome_trace_events(tracer, frequency_hz=1e9) == []

    def test_non_scalar_attrs_become_repr(self):
        tracer = Tracer()
        counters = PerfCounters()
        with tracer.span("q", "query", counters, shape=(1, 2)):
            pass
        event = next(
            e
            for e in chrome_trace_events(tracer, frequency_hz=1e9)
            if e["ph"] == "X"
        )
        assert event["args"]["shape"] == "(1, 2)"

    def test_bad_frequency_raises(self):
        with pytest.raises(ValueError):
            chrome_trace_events(Tracer(), frequency_hz=0)


class TestWriteAndValidate:
    def test_written_file_is_perfetto_object_form(self, tmp_path):
        path = tmp_path / "trace.json"
        events = write_chrome_trace(
            str(path), traced_run(), 2.6e9, workload="unit"
        )
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["traceEvents"] == events
        assert record["displayTimeUnit"] == "ms"
        assert record["metadata"] == {"frequency_hz": 2.6e9, "workload": "unit"}

    def test_emitted_trace_validates_clean(self):
        events = chrome_trace_events(traced_run(), frequency_hz=2.6e9)
        assert validate_chrome_trace(events) == []

    def test_validator_flags_missing_keys(self):
        problems = validate_chrome_trace([{"name": "x", "ph": "X"}])
        assert problems and "missing keys" in problems[0]

    def test_validator_flags_backwards_timestamps(self):
        events = [
            {"name": "a", "ph": "i", "ts": 10.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "i", "ts": 5.0, "pid": 1, "tid": 1},
        ]
        problems = validate_chrome_trace(events)
        assert problems and "goes backwards" in problems[0]

    def test_validator_flags_negative_duration(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": -1.0, "pid": 1, "tid": 1}
        ]
        problems = validate_chrome_trace(events)
        assert problems and "dur" in problems[0]
