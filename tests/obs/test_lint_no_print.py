"""Lint: no bare ``print()`` in library code — use ``repro.obs.logging``.

CLI entry points (``__main__.py`` modules) may print; everything else in
``src/repro/`` must go through the structured logger so output can be
silenced, redirected or captured uniformly.  The check is AST-based so
that docstrings and comments mentioning print are not false positives.
"""

import ast
from pathlib import Path

import repro


def print_calls(path: Path) -> list[int]:
    """Line numbers of bare ``print(...)`` calls in *path*."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            lines.append(node.lineno)
    return lines


def test_no_bare_print_outside_cli_entry_points():
    src_root = Path(repro.__file__).resolve().parent
    offenders = []
    for path in sorted(src_root.rglob("*.py")):
        if path.name == "__main__.py":
            continue  # CLI entry points own their stdout
        for lineno in print_calls(path):
            relative = path.relative_to(src_root.parent).as_posix()
            offenders.append(f"{relative}:{lineno}")
    assert not offenders, (
        "bare print() in library code; route through "
        "repro.obs.logging.get_logger() instead:\n" + "\n".join(offenders)
    )


def test_lint_helper_finds_prints(tmp_path):
    sample = tmp_path / "sample.py"
    sample.write_text(
        '"""print in a docstring is fine."""\n'
        "# print in a comment is fine\n"
        "def run(printer):\n"
        "    printer('not a print call')\n"
        "    print('flagged')\n",
        encoding="utf-8",
    )
    assert print_calls(sample) == [5]
