"""Tests for the ``repro.obs`` observability layer."""
