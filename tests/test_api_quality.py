"""Library-wide API quality gates: docstrings and exports.

Every public module, class, function and method in ``repro`` must carry
a docstring — the documentation deliverable, enforced.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in _public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # Overrides inherit the base method's documentation.
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and getattr(getattr(base, method_name), "__doc__", None)
                    for base in member.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_all_exports_resolve():
    for module in MODULES:
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"
