"""The acceptance matrix: every CI seed x every crash site, verified.

Each cell runs one full doomed-run / crash / recover / oracle cycle via
:func:`repro.recovery.verifier.run_crash_recover` and asserts the
tentpole's three claims: the crash actually happened, the recovered
state equals the committed-prefix oracle exactly, and the resilience
accounting balances with the crash recorded as *recovered*.
"""

import dataclasses

import pytest

from repro.recovery.verifier import CRASH_SITES, run_crash_recover

SEEDS = (5, 23, 101)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("site", sorted(CRASH_SITES))
def test_crash_recover_cell(seed, site):
    result = run_crash_recover(seed, site)
    # The probability tuning must actually crash the run...
    assert result.crashed, f"seed {seed} never hit {site}"
    assert result.queries_executed < 160  # died mid-stream, not after it
    # ...recovery must restore exactly the committed prefix...
    assert result.state_matches
    # ...and the accounting must balance: the one injected crash is
    # absorbed as `recovered`, nothing is left dangling.
    assert result.unaccounted_faults == 0
    snap = result.resilience
    assert snap["injected"] == (
        snap["retried"]
        + snap["fallen_back"]
        + snap["recovered"]
        + snap["surfaced"]
    )
    assert snap["recovered"] >= 1
    assert result.recovery_cycles > 0


@pytest.mark.parametrize("site", sorted(CRASH_SITES))
def test_crash_recover_is_deterministic(site):
    """Same (seed, site) -> field-for-field identical results."""
    first = run_crash_recover(23, site)
    second = run_crash_recover(23, site)
    assert first == second  # includes recovery_cycles: identical charge


def test_torn_append_produces_and_undoes_losers():
    """The torn-COMMIT window is the only loser source; exercise it."""
    results = [run_crash_recover(seed, "torn-append") for seed in SEEDS]
    assert any(r.loser_txns > 0 for r in results)
    for result in results:
        assert result.undo_updates >= result.loser_txns  # every loser rolled back
        assert result.state_matches


def test_post_commit_crash_replays_from_log():
    """Commits durable after the last checkpoint must come from replay."""
    result = run_crash_recover(5, "post-commit")
    assert result.replayed_txns > 0
    assert result.loser_txns == 0  # the flush succeeded; no torn commit


def test_unknown_crash_site_rejected():
    with pytest.raises(KeyError, match="unknown crash site"):
        run_crash_recover(5, "no-such-site")


def test_result_round_trips_to_dict():
    result = run_crash_recover(5, "post-commit")
    record = result.to_dict()
    assert record["seed"] == 5
    assert set(record) == {
        field.name for field in dataclasses.fields(result)
    }
