"""CheckpointStore tests: capture protocol, selection, torn-end invalidation."""

import numpy as np
import pytest

from repro.errors import EngineCrashed, RecoveryError
from repro.execution import ExecutionContext
from repro.faults import SITE_WAL_TORN_WRITE, FaultInjector
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.wal import LogRecordKind, WriteAheadLog

ROWS = 60


@pytest.fixture
def loaded_engine(platform):
    from repro.engines.h2o import H2OEngine
    from repro.workload.tpcc import generate_items, item_schema

    engine = H2OEngine(platform)
    engine.create("item", item_schema())
    engine.load("item", generate_items(ROWS))
    return engine


class TestTake:
    def test_take_brackets_image_with_log_markers(self, loaded_engine, platform, ctx):
        wal = WriteAheadLog(platform)
        store = CheckpointStore(platform)
        checkpoint = store.take(loaded_engine, "item", wal, ctx)
        assert checkpoint.begin_lsn < checkpoint.end_lsn
        kinds = [record.kind for record in wal.durable_records()]
        assert kinds == [
            LogRecordKind.CHECKPOINT_BEGIN,
            LogRecordKind.CHECKPOINT_END,
        ]
        assert store.checkpoints("item") == (checkpoint,)

    def test_image_matches_engine_contents(self, loaded_engine, platform, ctx):
        from repro.workload.tpcc import generate_items

        wal = WriteAheadLog(platform)
        checkpoint = CheckpointStore(platform).take(loaded_engine, "item", wal, ctx)
        expected = generate_items(ROWS)
        assert checkpoint.row_count == ROWS
        for name, column in expected.items():
            np.testing.assert_array_equal(checkpoint.columns[name], column)

    def test_take_charges_capture_and_disk_write(self, loaded_engine, platform, ctx):
        wal = WriteAheadLog(platform)
        before = ctx.counters.cycles
        checkpoint = CheckpointStore(platform).take(loaded_engine, "item", wal, ctx)
        assert ctx.counters.cycles > before
        assert ctx.breakdown.parts["checkpoint-write(item)"] > 0
        assert checkpoint.nbytes > 0

    def test_take_records_live_mvcc_metadata(self, platform, ctx):
        # A live snapshot with copied pages must be visible in the image
        # metadata (fuzzy checkpoints coexist with MVCC readers).
        from repro.core.reference_engine import ReferenceEngine
        from repro.workload.tpcc import generate_items, item_schema

        engine = ReferenceEngine(platform, delta_tile_rows=128)
        engine.create("item", item_schema())
        engine.load("item", generate_items(ROWS))
        snapshot = engine.analytic_snapshot("item", ctx)
        engine.update("item", 0, "i_price", 9.5, ctx)
        wal = WriteAheadLog(platform)
        checkpoint = CheckpointStore(platform).take(engine, "item", wal, ctx)
        assert checkpoint.live_snapshots == 1
        assert checkpoint.preserved_pages >= 1
        snapshot.release()


class TestSelection:
    def test_latest_complete_prefers_newest_durable(
        self, loaded_engine, platform, ctx
    ):
        wal = WriteAheadLog(platform)
        store = CheckpointStore(platform)
        store.take(loaded_engine, "item", wal, ctx)
        second = store.take(loaded_engine, "item", wal, ctx)
        assert store.latest_complete("item", wal.durable_records()) is second

    def test_no_checkpoint_raises_recovery_error(self, platform):
        store = CheckpointStore(platform)
        with pytest.raises(RecoveryError):
            store.latest_complete("item", ())

    def test_torn_end_marker_invalidates_checkpoint(
        self, loaded_engine, platform, ctx
    ):
        wal = WriteAheadLog(platform)
        store = CheckpointStore(platform)
        first = store.take(loaded_engine, "item", wal, ctx)
        # The second checkpoint's flush tears its END marker: the image
        # is in the store but recovery must fall back to the first.
        FaultInjector(seed=1).arm(
            SITE_WAL_TORN_WRITE, 1.0, max_faults=1
        ).install(platform)
        with pytest.raises(EngineCrashed):
            store.take(loaded_engine, "item", wal, ctx)
        assert len(store.checkpoints("item")) == 2
        assert store.latest_complete("item", wal.durable_records()) is first
