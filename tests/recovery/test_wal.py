"""WriteAheadLog unit tests: charging, group commit, torn writes, crash."""

import pytest

from repro.errors import EngineCrashed, WalError
from repro.execution import ExecutionContext
from repro.faults import SITE_WAL_TORN_WRITE, FaultInjector
from repro.recovery.wal import LogRecordKind, WriteAheadLog


class TestAppend:
    def test_append_buffers_and_charges_memory_copy(self, platform, ctx):
        wal = WriteAheadLog(platform)
        record = wal.log_begin(1, ctx)
        assert record.lsn == 1
        assert wal.tail_records == 1
        assert wal.durable_records() == ()
        assert ctx.breakdown.parts["wal-append"] > 0
        assert ctx.counters.cycles > 0

    def test_lsns_are_monotonic_across_kinds(self, platform, ctx):
        wal = WriteAheadLog(platform)
        lsns = [
            wal.log_begin(1, ctx).lsn,
            wal.log_update(1, "t", "price", 0, 1.0, 2.0, ctx).lsn,
            wal.log_abort(1, ctx).lsn,
            wal.log_checkpoint_begin(1, ctx).lsn,
            wal.log_checkpoint_end(1, ctx).lsn,
            wal.log_reorg(LogRecordKind.REORG_BEGIN, "t", ctx).lsn,
        ]
        assert lsns == [1, 2, 3, 4, 5, 6]
        assert wal.last_lsn == 6

    def test_update_record_carries_both_images(self, platform, ctx):
        wal = WriteAheadLog(platform)
        record = wal.log_update(7, "item", "i_price", 3, 10.0, 42.0, ctx)
        assert record.kind is LogRecordKind.UPDATE
        assert (record.before, record.after) == (10.0, 42.0)
        assert (record.relation, record.attribute, record.position) == (
            "item",
            "i_price",
            3,
        )

    def test_non_reorg_kind_rejected_by_log_reorg(self, platform, ctx):
        wal = WriteAheadLog(platform)
        with pytest.raises(WalError):
            wal.log_reorg(LogRecordKind.COMMIT, "t", ctx)

    def test_group_commit_must_be_positive(self, platform):
        with pytest.raises(WalError):
            WriteAheadLog(platform, group_commit=0)


class TestGroupCommit:
    def test_flush_every_nth_commit(self, platform, ctx):
        wal = WriteAheadLog(platform, group_commit=3)
        outcomes = []
        for txn in range(6):
            wal.log_begin(txn, ctx)
            outcomes.append(wal.log_commit(txn, ctx))
        # Only the 3rd and 6th commits trigger the group flush.
        assert outcomes == [False, False, True, False, False, True]
        assert wal.flush_count == 2
        assert wal.tail_records == 0
        assert len(wal.durable_records()) == 12

    def test_flush_charges_one_fsync_for_the_batch(self, platform, ctx):
        wal = WriteAheadLog(platform, group_commit=8)
        for txn in range(3):
            wal.log_begin(txn, ctx)
        before = ctx.counters.cycles
        flushed = wal.flush(ctx)
        assert flushed == 3
        assert ctx.counters.cycles > before
        assert ctx.breakdown.parts["wal-fsync"] > 0
        assert wal.durable_bytes == sum(r.nbytes for r in wal.durable_records())

    def test_empty_flush_is_free(self, platform, ctx):
        wal = WriteAheadLog(platform)
        before = ctx.counters.cycles
        assert wal.flush(ctx) == 0
        assert ctx.counters.cycles == before
        assert wal.flush_count == 0

    def test_group_commit_one_is_force_at_commit(self, platform, ctx):
        wal = WriteAheadLog(platform, group_commit=1)
        wal.log_begin(0, ctx)
        assert wal.log_commit(0, ctx) is True
        assert wal.tail_records == 0


class TestTornWrite:
    def test_torn_flush_raises_and_terminates_durable_prefix(self, platform, ctx):
        FaultInjector(seed=1).arm(SITE_WAL_TORN_WRITE, 1.0).install(platform)
        wal = WriteAheadLog(platform, group_commit=8)
        wal.log_begin(0, ctx)
        wal.log_update(0, "t", "price", 0, 1.0, 2.0, ctx)
        wal.log_commit(0, ctx)
        with pytest.raises(EngineCrashed) as excinfo:
            wal.flush(ctx)
        assert excinfo.value.injected is True
        # The batch reached the platter but the trailing record is torn:
        # the checksum-valid prefix stops just before it.
        assert wal.torn_records == 1
        durable = wal.durable_records()
        assert len(durable) == 2
        assert durable[-1].kind is LogRecordKind.UPDATE
        assert wal.crashed

    def test_torn_flush_still_charges_the_fsync(self, platform, ctx):
        FaultInjector(seed=1).arm(SITE_WAL_TORN_WRITE, 1.0).install(platform)
        wal = WriteAheadLog(platform)
        wal.log_begin(0, ctx)
        before = ctx.counters.cycles
        with pytest.raises(EngineCrashed):
            wal.flush(ctx)
        assert ctx.counters.cycles > before  # the seek was burned anyway


class TestCrash:
    def test_crash_drops_tail_keeps_durable_prefix(self, platform, ctx):
        wal = WriteAheadLog(platform, group_commit=8)
        wal.log_begin(0, ctx)
        wal.flush(ctx)
        wal.log_begin(1, ctx)  # volatile: dies with the process
        wal.crash()
        assert wal.tail_records == 0
        assert [r.txn_id for r in wal.durable_records()] == [0]
        assert wal.crashed

    def test_crashed_log_rejects_appends_and_flushes(self, platform, ctx):
        wal = WriteAheadLog(platform)
        wal.crash()
        with pytest.raises(WalError):
            wal.log_begin(0, ctx)
        with pytest.raises(WalError):
            wal.flush(ctx)

    def test_crash_is_idempotent(self, platform, ctx):
        wal = WriteAheadLog(platform)
        wal.log_begin(0, ctx)
        wal.flush(ctx)
        wal.crash()
        wal.crash()
        assert len(wal.durable_records()) == 1


class TestEncoding:
    def test_encode_roundtrips_payload_fields(self, platform, ctx):
        wal = WriteAheadLog(platform)
        record = wal.log_update(3, "item", "i_price", 9, 1.5, 2.5, ctx)
        decoded = eval(record.encode().decode())  # repr-encoded tuple
        assert decoded[0] == record.lsn
        assert decoded[1] == LogRecordKind.UPDATE.value
        assert decoded[5] == 9

    def test_nbytes_includes_header(self, platform, ctx):
        from repro.recovery.wal import RECORD_HEADER_BYTES

        wal = WriteAheadLog(platform)
        record = wal.log_begin(1, ctx)
        assert record.nbytes == RECORD_HEADER_BYTES + len(record.encode())
