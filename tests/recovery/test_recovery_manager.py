"""RecoveryManager tests: a hand-built ARIES-lite scenario, pinned pass by pass.

The scenario (group_commit=1 so every commit is individually durable):

* checkpoint 0 right after bulk load (the protocol's durability point);
* txn 1 commits an update at row 3;
* txn 2 commits an update at row 5;
* txn 3 updates row 7, its BEGIN/UPDATE are flushed — and then the
  process dies before the COMMIT ever reaches the log: txn 3 is the
  loser whose effects recovery must undo.
"""

import pytest

from repro.errors import RecoveryError
from repro.execution import ExecutionContext
from repro.faults.report import ResilienceReport
from repro.hardware import Platform
from repro.perf import active_cost_cache
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.manager import RecoveryManager
from repro.recovery.wal import WriteAheadLog
from repro.workload.tpcc import generate_items, item_schema

ROWS = 50
LOSER_POSITION = 7


def build_engine(platform):
    from repro.engines.h2o import H2OEngine

    engine = H2OEngine(platform)
    engine.create("item", item_schema())
    return engine


def crashed_artifacts(platform):
    """Run the scenario above; return (wal, store, original_columns)."""
    columns = generate_items(ROWS)
    engine = build_engine(platform)
    engine.load("item", {name: column.copy() for name, column in columns.items()})
    wal = WriteAheadLog(platform, group_commit=1)
    store = CheckpointStore(platform)
    ctx = ExecutionContext(platform)
    store.take(engine, "item", wal, ctx)

    for txn_id, position in ((1, 3), (2, 5)):
        wal.log_begin(txn_id, ctx)
        before = engine.sum_at("item", "i_price", [position], ctx)
        wal.log_update(txn_id, "item", "i_price", position, before, 100.0 + txn_id, ctx)
        engine.update("item", position, "i_price", 100.0 + txn_id, ctx)
        wal.log_commit(txn_id, ctx)

    # The loser: durable BEGIN + UPDATE, no COMMIT.
    wal.log_begin(3, ctx)
    before = engine.sum_at("item", "i_price", [LOSER_POSITION], ctx)
    wal.log_update(3, "item", "i_price", LOSER_POSITION, before, -1.0, ctx)
    engine.update("item", LOSER_POSITION, "i_price", -1.0, ctx)
    wal.flush(ctx)
    wal.crash()
    return wal, store, columns


class TestRecover:
    def test_committed_prefix_restored_loser_undone(self, platform):
        wal, store, columns = crashed_artifacts(platform)
        rebooted = Platform.paper_testbed()
        ctx = ExecutionContext(rebooted)
        engine, result = RecoveryManager(wal, store).recover(
            lambda: build_engine(rebooted), "item", ctx
        )
        assert result.committed_txns == 2
        assert result.loser_txns == 1
        assert result.redo_updates == 3  # history repeated, loser included
        assert result.undo_updates == 1
        assert result.replayed_txns == 2
        probe = ExecutionContext(rebooted)
        assert engine.sum_at("item", "i_price", [3], probe) == pytest.approx(101.0)
        assert engine.sum_at("item", "i_price", [5], probe) == pytest.approx(102.0)
        # The loser's write is gone: row 7 is back to its loaded value.
        assert engine.sum_at("item", "i_price", [LOSER_POSITION], probe) == (
            pytest.approx(float(columns["i_price"][LOSER_POSITION]))
        )

    def test_recovery_is_cycle_charged_and_deterministic(self, platform):
        wal, store, _ = crashed_artifacts(platform)
        results = []
        for _ in range(2):
            rebooted = Platform.paper_testbed()
            ctx = ExecutionContext(rebooted)
            _, result = RecoveryManager(wal, store).recover(
                lambda: build_engine(rebooted), "item", ctx
            )
            assert result.cycles > 0
            assert ctx.breakdown.parts["recovery-analysis(log-scan)"] > 0
            assert ctx.breakdown.parts["recovery-load(item)"] > 0
            results.append(result)
        # Same durable artifacts -> identical replay, identical charge.
        assert results[0] == results[1]

    def test_recovery_invalidates_cost_cache(self, platform):
        # Satellite: memoized costings keyed on pre-crash geometry must
        # not survive a replay that rebuilt the layouts.
        wal, store, _ = crashed_artifacts(platform)
        cache = active_cost_cache()
        assert cache is not None, "tier-1 runs with the default cache installed"
        before = cache.invalidations
        rebooted = Platform.paper_testbed()
        RecoveryManager(wal, store).recover(
            lambda: build_engine(rebooted), "item", ExecutionContext(rebooted)
        )
        assert cache.invalidations > before

    def test_recovery_tallies_into_resilience_report(self, platform):
        wal, store, _ = crashed_artifacts(platform)
        report = ResilienceReport()
        rebooted = Platform.paper_testbed()
        _, result = RecoveryManager(wal, store).recover(
            lambda: build_engine(rebooted),
            "item",
            ExecutionContext(rebooted),
            report=report,
        )
        assert report.replayed_txns == result.replayed_txns == 2
        assert report.recovery_cycles == pytest.approx(result.cycles)

    def test_build_engine_must_create_the_relation(self, platform):
        from repro.engines.h2o import H2OEngine

        wal, store, _ = crashed_artifacts(platform)
        rebooted = Platform.paper_testbed()
        with pytest.raises(RecoveryError, match="must create relation"):
            RecoveryManager(wal, store).recover(
                lambda: H2OEngine(rebooted),  # forgot create()
                "item",
                ExecutionContext(rebooted),
            )
