"""ReplicatedLog tests: segment shipping, lag-by-one, node-loss survival."""

import pytest

from repro.distributed.cluster import Cluster
from repro.distributed.dfs import BlockStore
from repro.errors import EngineCrashed
from repro.execution import ExecutionContext
from repro.faults import SITE_WAL_TORN_WRITE, FaultInjector
from repro.recovery.replicated import ReplicatedLog
from repro.recovery.wal import WriteAheadLog


@pytest.fixture
def dfs():
    return BlockStore(Cluster(node_count=4), replication=3)


def replicated_wal(platform, dfs, group_commit=2):
    replicated = ReplicatedLog(dfs, name="item")
    wal = WriteAheadLog(
        platform, group_commit=group_commit, replicator=replicated.on_flush
    )
    return wal, replicated


def commit_txns(wal, ctx, count, start=0):
    for txn in range(start, start + count):
        wal.log_begin(txn, ctx)
        wal.log_commit(txn, ctx)


class TestShipping:
    def test_every_flush_ships_one_segment(self, platform, ctx, dfs):
        wal, replicated = replicated_wal(platform, dfs, group_commit=2)
        commit_txns(wal, ctx, 6)  # 3 group flushes
        assert wal.flush_count == 3
        assert replicated.segments == 3
        assert replicated.shipped_bytes > 0
        assert sorted(dfs.paths()) == [
            "wal/item/00000000",
            "wal/item/00000001",
            "wal/item/00000002",
        ]

    def test_segments_are_replicated_at_store_factor(self, platform, ctx, dfs):
        wal, _ = replicated_wal(platform, dfs)
        commit_txns(wal, ctx, 2)
        for block in dfs.file("wal/item/00000000").blocks:
            assert len(block.replicas) == 3

    def test_read_back_verifies_shipped_bytes(self, platform, ctx, dfs):
        wal, replicated = replicated_wal(platform, dfs)
        commit_txns(wal, ctx, 4)
        payloads = replicated.read_back(dfs.cluster.nodes[0])
        assert len(payloads) == replicated.segments
        assert all(payloads)


class TestTornFlush:
    def test_replica_lags_by_at_most_the_torn_segment(self, platform, ctx, dfs):
        """A torn flush dies mid-fsync, before shipping: the replicated
        copy lags the local durable log by exactly that one segment."""
        wal, replicated = replicated_wal(platform, dfs, group_commit=2)
        commit_txns(wal, ctx, 2)  # segment 0 ships cleanly
        FaultInjector(seed=1).arm(
            SITE_WAL_TORN_WRITE, 1.0, max_faults=1
        ).install(platform)
        with pytest.raises(EngineCrashed):
            commit_txns(wal, ctx, 2, start=2)
        assert wal.flush_count == 2  # the torn batch did hit the platter
        assert replicated.segments == 1  # ...but never shipped
        # What did ship is still intact and verifiable.
        replicated.read_back(dfs.cluster.nodes[0])


class TestNodeLoss:
    def test_survives_fail_node_and_re_replicate(self, platform, ctx, dfs):
        wal, replicated = replicated_wal(platform, dfs)
        commit_txns(wal, ctx, 6)
        lost = dfs.fail_node("node1")
        assert lost > 0
        assert dfs.under_replicated()
        created = dfs.re_replicate()
        assert created == lost
        assert not dfs.under_replicated()
        # The re-replicated stream still verifies byte for byte, even
        # read from the node that just lost everything.
        replicated.read_back(dfs.cluster.node("node1"))


class TestES2Wiring:
    def test_make_replicated_wal_ships_into_engine_dfs(self, platform, ctx):
        from repro.engines.es2 import ES2Engine

        engine = ES2Engine(platform, partition_rows=128)
        wal, replicated = engine.make_replicated_wal("item", group_commit=2)
        assert replicated.dfs is engine.dfs
        commit_txns(wal, ctx, 2)
        assert replicated.segments == 1
        assert "wal/item/00000000" in engine.dfs.paths()
        replicated.read_back(engine.coordinator)
