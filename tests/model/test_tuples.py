"""Unit tests for tuple codecs and structured arrays."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.model.datatypes import FLOAT64, INT64, char
from repro.model.schema import Schema
from repro.model.tuples import (
    RecordCodec,
    rows_to_structured,
    structured_dtype,
    structured_to_rows,
)


@pytest.fixture
def schema():
    return Schema.of(("id", INT64), ("tag", char(4)), ("price", FLOAT64))


class TestRecordCodec:
    def test_roundtrip(self, schema):
        codec = RecordCodec(schema)
        row = (42, "ab", 9.75)
        assert codec.decode(codec.encode(row)) == row

    def test_record_width(self, schema):
        assert RecordCodec(schema).record_width == schema.record_width

    def test_encode_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            RecordCodec(schema).encode((1, "a"))

    def test_decode_short_buffer(self, schema):
        with pytest.raises(SchemaError):
            RecordCodec(schema).decode(b"\x00" * 3)

    def test_decode_field(self, schema):
        codec = RecordCodec(schema)
        data = codec.encode((7, "zz", 1.5))
        assert codec.decode_field(data, "price") == 1.5
        assert codec.decode_field(data, "id") == 7


class TestStructured:
    def test_dtype_is_packed(self, schema):
        assert structured_dtype(schema).itemsize == schema.record_width

    def test_rows_roundtrip(self, schema):
        rows = [(1, "aa", 1.0), (2, "bb", 2.0)]
        array = rows_to_structured(schema, rows)
        assert structured_to_rows(schema, array) == rows

    def test_structured_bytes_are_nsm(self, schema):
        rows = [(1, "aa", 1.0), (2, "bb", 2.0)]
        array = rows_to_structured(schema, rows)
        codec = RecordCodec(schema)
        assert array.tobytes() == codec.encode(rows[0]) + codec.encode(rows[1])

    def test_ragged_row_rejected(self, schema):
        with pytest.raises(SchemaError):
            rows_to_structured(schema, [(1, "aa")])


@given(
    st.lists(
        st.tuples(
            st.integers(-(2**31), 2**31 - 1),
            st.text(alphabet="abcdefgh", max_size=4),
            st.floats(allow_nan=False, width=32),
        ),
        max_size=20,
    )
)
def test_structured_roundtrip_property(rows):
    schema = Schema.of(("id", INT64), ("tag", char(4)), ("price", FLOAT64))
    array = rows_to_structured(schema, rows)
    decoded = structured_to_rows(schema, array)
    assert len(decoded) == len(rows)
    for got, want in zip(decoded, rows):
        assert got[0] == want[0]
        assert got[1] == want[1]
        assert got[2] == pytest.approx(want[2])
