"""Unit tests for logical relations and row ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.model.datatypes import INT32
from repro.model.relation import Relation, RowRange
from repro.model.schema import Schema


class TestRowRange:
    def test_count(self):
        assert RowRange(3, 10).count == 7

    def test_contains_boundaries(self):
        r = RowRange(3, 10)
        assert r.contains(3)
        assert r.contains(9)
        assert not r.contains(10)
        assert not r.contains(2)

    def test_invalid_range_rejected(self):
        with pytest.raises(SchemaError):
            RowRange(5, 4)
        with pytest.raises(SchemaError):
            RowRange(-1, 4)

    def test_empty_range_allowed(self):
        assert RowRange(5, 5).count == 0

    def test_overlaps(self):
        assert RowRange(0, 5).overlaps(RowRange(4, 8))
        assert not RowRange(0, 5).overlaps(RowRange(5, 8))

    def test_intersection(self):
        assert RowRange(0, 5).intersection(RowRange(3, 8)) == RowRange(3, 5)
        assert RowRange(0, 3).intersection(RowRange(3, 8)) is None

    def test_split_exact(self):
        parts = RowRange(0, 9).split(3)
        assert parts == [RowRange(0, 3), RowRange(3, 6), RowRange(6, 9)]

    def test_split_remainder(self):
        parts = RowRange(0, 10).split(4)
        assert parts[-1] == RowRange(8, 10)

    def test_split_invalid_chunk(self):
        with pytest.raises(SchemaError):
            RowRange(0, 10).split(0)


class TestRelation:
    def test_rows_range(self):
        relation = Relation("r", Schema.of(("x", INT32)), 7)
        assert relation.rows == RowRange(0, 7)

    def test_nsm_bytes(self):
        relation = Relation("r", Schema.of(("x", INT32)), 10)
        assert relation.nsm_bytes == 40

    def test_resized_preserves_identity(self):
        relation = Relation("r", Schema.of(("x", INT32)), 7)
        grown = relation.resized(9)
        assert grown.name == "r" and grown.row_count == 9
        assert relation.row_count == 7  # immutable

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", Schema.of(("x", INT32)), 1)

    def test_negative_rows_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", Schema.of(("x", INT32)), -1)


@given(st.integers(0, 1000), st.integers(1, 50))
def test_split_partitions_exactly(total, chunk):
    parts = RowRange(0, total).split(chunk)
    assert sum(p.count for p in parts) == total
    cursor = 0
    for part in parts:
        assert part.start == cursor
        cursor = part.stop
    for part in parts:
        assert part.count <= chunk
