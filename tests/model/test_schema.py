"""Unit tests for schemas: offsets, projections, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.model.datatypes import FLOAT64, INT32, INT64, char
from repro.model.schema import Schema


@pytest.fixture
def schema():
    return Schema.of(("id", INT64), ("name", char(6)), ("price", FLOAT64))


class TestGeometry:
    def test_record_width_sums_attribute_widths(self, schema):
        assert schema.record_width == 8 + 6 + 8

    def test_offsets_are_cumulative(self, schema):
        assert schema.offset_of("id") == 0
        assert schema.offset_of("name") == 8
        assert schema.offset_of("price") == 14

    def test_arity(self, schema):
        assert schema.arity == 3

    def test_names_order(self, schema):
        assert schema.names == ("id", "name", "price")

    def test_position_of(self, schema):
        assert schema.position_of("price") == 2

    def test_contains(self, schema):
        assert "name" in schema
        assert "missing" not in schema

    def test_len_and_iter(self, schema):
        assert len(schema) == 3
        assert [a.name for a in schema] == ["id", "name", "price"]


class TestValidation:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("x", INT32), ("x", INT64))

    def test_unknown_attribute_lookup(self, schema):
        with pytest.raises(SchemaError):
            schema.offset_of("nope")

    def test_validate_row_arity(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row((1, "a"))

    def test_validate_row_ok(self, schema):
        schema.validate_row((1, "abc", 2.5))

    def test_validate_row_bad_value(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row((1, "way too long a name", 2.5))


class TestProjection:
    def test_project_reorders(self, schema):
        projected = schema.project(["price", "id"])
        assert projected.names == ("price", "id")
        assert projected.record_width == 16

    def test_project_empty_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.project([])

    def test_project_unknown_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.project(["ghost"])

    def test_project_duplicate_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.project(["id", "id"])


@given(st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5, unique=True))
def test_projection_width_property(names):
    schema = Schema.of(
        ("a", INT32), ("b", INT64), ("c", FLOAT64), ("d", char(3)), ("e", char(7))
    )
    projected = schema.project(names)
    assert projected.record_width == sum(schema.attribute(n).width for n in names)
    assert projected.names == tuple(names)
