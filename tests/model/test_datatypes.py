"""Unit tests for fixed-width data types."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.model.datatypes import FLOAT64, INT32, INT64, char


class TestWidths:
    def test_int32_width(self):
        assert INT32.width == 4

    def test_int64_width(self):
        assert INT64.width == 8

    def test_float64_width(self):
        assert FLOAT64.width == 8

    def test_char_width(self):
        assert char(13).width == 13

    def test_char_rejects_zero_width(self):
        with pytest.raises(SchemaError):
            char(0)

    def test_char_rejects_negative_width(self):
        with pytest.raises(SchemaError):
            char(-3)


class TestEncodeDecode:
    def test_int32_roundtrip(self):
        assert INT32.decode(INT32.encode(-12345)) == -12345

    def test_int64_roundtrip(self):
        assert INT64.decode(INT64.encode(2**40)) == 2**40

    def test_float64_roundtrip(self):
        assert FLOAT64.decode(FLOAT64.encode(3.14159)) == 3.14159

    def test_char_roundtrip(self):
        c = char(8)
        assert c.decode(c.encode("abc")) == "abc"

    def test_char_pads_to_width(self):
        assert len(char(8).encode("ab")) == 8

    def test_char_rejects_overflow(self):
        with pytest.raises(SchemaError):
            char(2).validate("toolong")

    def test_int32_encode_is_little_endian(self):
        assert INT32.encode(1) == b"\x01\x00\x00\x00"

    def test_encoded_length_matches_width(self):
        for dtype, value in ((INT32, 7), (INT64, 7), (FLOAT64, 7.0), (char(5), "x")):
            assert len(dtype.encode(value)) == dtype.width

    def test_int32_overflow_rejected(self):
        with pytest.raises(SchemaError):
            INT32.validate(2**40)

    def test_validate_rejects_non_numeric(self):
        with pytest.raises(SchemaError):
            INT64.validate("not a number")


class TestNumpyDtypes:
    def test_int32_numpy(self):
        assert INT32.numpy_dtype().itemsize == 4

    def test_char_numpy(self):
        assert char(6).numpy_dtype().itemsize == 6

    def test_numpy_widths_match_declared(self):
        for dtype in (INT32, INT64, FLOAT64, char(3), char(17)):
            assert dtype.numpy_dtype().itemsize == dtype.width


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int32_roundtrip_property(value):
    assert INT32.decode(INT32.encode(value)) == value


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_int64_roundtrip_property(value):
    assert INT64.decode(INT64.encode(value)) == value


@given(st.floats(allow_nan=False))
def test_float64_roundtrip_property(value):
    assert FLOAT64.decode(FLOAT64.encode(value)) == value


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=8))
def test_char_roundtrip_property(value):
    c = char(8)
    assert c.decode(c.encode(value)) == value.rstrip("\x00")
