#!/usr/bin/env python3
"""Detaching analytics from transactions: fork + copy-on-write.

Challenge (b.iii) of the paper: HTAP must run "long-running ad-hoc
analytic queries and massive short-living write-intensive transactional
queries ... without interferences".  This example drives a write storm
against the reference engine while a long-running analytic snapshot
stays perfectly consistent, then quantifies why copy-on-write beats the
naive detach-by-copy strategy across write rates.

Run:  python examples/snapshot_isolation.py
"""

from repro import ExecutionContext, Platform, ReferenceEngine
from repro.bench.ablations import snapshot_isolation_sweep
from repro.core.report import render_table
from repro.workload import generate_items, item_schema

ROWS = 100_000


def main() -> None:
    platform = Platform.paper_testbed()
    engine = ReferenceEngine(platform, auto_place=False)
    engine.create("item", item_schema())
    engine.load("item", generate_items(ROWS))

    ctx = ExecutionContext(platform)
    baseline = engine.sum("item", "i_price", ctx)
    print(f"live sum before the storm: {baseline:,.2f}")

    # The analyst forks a snapshot; the fork is a page-table copy.
    fork_ctx = ExecutionContext(platform)
    snapshot = engine.analytic_snapshot("item", fork_ctx)
    print(f"fork cost: {fork_ctx.seconds() * 1e6:.1f} simulated us "
          f"(no data copied)")

    # 5,000 transactional updates land while the analyst is 'running'.
    storm_ctx = ExecutionContext(platform)
    for position in range(0, 5000):
        engine.update("item", position, "i_price", 0.0, storm_ctx)
    faults = snapshot.pages_copied
    print(f"write storm: 5,000 updates, {faults} CoW page faults "
          f"({faults * 4096 / 1e3:.0f} KB preserved), "
          f"{storm_ctx.seconds() * 1e3:.2f} simulated ms")

    # The snapshot still answers with pre-storm data; live data moved on.
    analytic_ctx = ExecutionContext(platform)
    frozen = snapshot.sum("i_price", analytic_ctx)
    live = engine.sum("item", "i_price", ExecutionContext(platform))
    print(f"\nsnapshot sum (consistent as of the fork): {frozen:,.2f}")
    print(f"live sum (after the storm):               {live:,.2f}")
    assert abs(frozen - baseline) < 1e-6
    snapshot.release()

    # Why CoW and not a full copy per analytic query? The A6 sweep:
    print("\nA6: isolation strategies across write rates "
          "(1M-row column, 5 analytic queries):")
    rows = []
    for point in snapshot_isolation_sweep():
        rows.append(
            (
                f"{point.knob:.0f}",
                f"{point.outcomes['full_copy_ms']:.2f}",
                f"{point.outcomes['cow_ms']:.2f}",
                f"{point.outcomes['full_copy_ms'] / point.outcomes['cow_ms']:.1f}x",
            )
        )
    print(
        render_table(
            rows,
            ("updates between queries", "full copy ms", "fork+CoW ms", "CoW wins by"),
        )
    )


if __name__ == "__main__":
    main()
