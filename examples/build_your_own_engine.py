#!/usr/bin/env python3
"""Build your own storage engine and classify it against the taxonomy.

The library is a construction kit: subclass
:class:`~repro.engines.StorageEngine`, describe your layouts with
regions/fragments/linearizations, and the classifier derives where your
design sits in the paper's taxonomy and which of the Section IV-C
reference requirements it meets.

The demo engine below is a "mirrored PAX" hybrid nobody published:
horizontal page groups whose hot pages are NSM (for writes) and cold
pages DSM (for scans), plus a second, device-resident columnar layout
for the hottest numeric column.

Run:  python examples/build_your_own_engine.py
"""

import numpy as np

from repro.core import check_requirements, classify
from repro.engines import (
    EngineCapabilities,
    FragmentationChoice,
    MultiLayoutSupport,
    StorageEngine,
    WorkloadSupport,
    fill_fragment,
)
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.layout import Fragment, Layout, LinearizationKind, Region
from repro.layout.partitioning import PartitioningOrder
from repro.model.relation import Relation
from repro.workload import generate_items, item_schema


class MirroredPaxEngine(StorageEngine):
    """Hot NSM pages + cold DSM pages, with a device column mirror."""

    name = "MirroredPAX"
    year = 2026

    def __init__(self, platform, page_rows: int = 4096, hot_pages: int = 1) -> None:
        super().__init__(platform)
        self.page_rows = page_rows
        self.hot_pages = hot_pages

    def capabilities(self) -> EngineCapabilities:
        return EngineCapabilities(
            fragmentation_choice=FragmentationChoice.BOTH,
            constrained_order=PartitioningOrder.HORIZONTAL_THEN_VERTICAL,
            fat_formats=frozenset({LinearizationKind.NSM, LinearizationKind.DSM}),
            per_fragment_choice=True,
            multi_layout=MultiLayoutSupport.BUILT_IN,
            workload=WorkloadSupport.HTAP,
            host_execution=True,
            device_execution=True,
        )

    def _build(self, relation: Relation, columns) -> list[Layout]:
        pages = relation.rows.split(self.page_rows)
        fragments = []
        for number, rows in enumerate(pages):
            hot = number >= len(pages) - self.hot_pages
            region = Region(rows, relation.schema.names)
            fragment = Fragment(
                region,
                relation.schema,
                (LinearizationKind.NSM if hot else LinearizationKind.DSM)
                if region.is_fat
                else None,
                self.platform.host_memory,
                label=f"mpax:{relation.name}:page{number}",
                materialize=columns is not None,
            )
            fill_fragment(fragment, columns)
            fragments.append(fragment)
        primary = Layout(f"{relation.name}/pages", relation, fragments)
        # The device mirror: the hottest numeric column, replicated.
        price = Fragment(
            Region(relation.rows, ("i_price",)),
            relation.schema,
            None,
            self.platform.device_memory,
            label=f"mpax:{relation.name}:i_price@device",
            materialize=columns is not None,
        )
        fill_fragment(price, columns)
        mirror = Layout(
            f"{relation.name}/device-mirror",
            relation,
            [price, *fragments],
            allow_overlap=True,
        )
        return [primary, mirror]


def main() -> None:
    platform = Platform.paper_testbed()
    engine = MirroredPaxEngine(platform, page_rows=4096)
    engine.create("item", item_schema())
    columns = generate_items(20_000)
    engine.load("item", columns)

    # It is a real engine: it answers queries.
    ctx = ExecutionContext(platform)
    total = engine.sum("item", "i_price", ctx)
    assert abs(total - float(np.sum(columns["i_price"]))) < 1e-6
    print(f"sum(i_price) = {total:,.2f} in {ctx.seconds() * 1e3:.3f} simulated ms")

    # And the classifier tells you what you built.
    classification = classify(engine, "item")
    print("\nYour engine's Table 1 row:")
    print("  " + " | ".join(classification.row()))

    verdicts = check_requirements(classification)
    print("\nSection IV-C requirements:")
    for number, passed in verdicts.items():
        print(f"  R{number}: {'satisfied' if passed else 'MISSING'}")
    missing = [number for number, passed in verdicts.items() if not passed]
    if missing:
        print(
            f"\nStill missing {missing} — this design is static "
            "(no reorganize hook) and replication-based; wire a workload-"
            "driven reorganize() and a delegation policy to close the gap."
        )


if __name__ == "__main__":
    main()
