#!/usr/bin/env python3
"""The layout advisor at work: from workload trace to physical design.

Records two synthetic workload phases against the customer table —
first OLTP point queries over the identity columns, then analytics over
the balance columns — and shows how the advisor's cost-based pool
evaluation (H2O's strategy) proposes a different vertical grouping and
linearization for each phase, with the estimated payoff.

Run:  python examples/layout_advisor.py
"""

from repro.adapt.advisor import LayoutAdvisor
from repro.adapt.statistics import AttributeStatistics
from repro.core.report import render_table
from repro.execution.access import AccessDescriptor, AccessKind
from repro.hardware import Platform
from repro.workload import customer_relation

ROWS = 2_000_000

OLTP_ATTRS = ("c_id", "c_first", "c_last", "c_city", "c_phone", "c_credit")
OLAP_ATTRS = ("c_balance", "c_ytd_payment")


def oltp_phase(relation, count=200):
    """Point queries touching the identity columns together."""
    return [
        AccessDescriptor(
            AccessKind.READ, OLTP_ATTRS, 1, relation.row_count, relation.schema.arity
        )
        for __ in range(count)
    ]


def olap_phase(relation, count=20):
    """Full scans over each balance column."""
    return [
        AccessDescriptor(
            AccessKind.READ, (attribute,), relation.row_count,
            relation.row_count, relation.schema.arity,
        )
        for __ in range(count)
        for attribute in OLAP_ATTRS
    ]


def describe(proposal):
    rows = []
    for group in proposal.groups:
        rows.append(
            (
                " + ".join(group.attributes[:4])
                + ("..." if len(group.attributes) > 4 else ""),
                str(len(group.attributes)),
                group.linearization.value,
            )
        )
    return render_table(rows, ("attribute group", "#attrs", "format"))


def main() -> None:
    platform = Platform.paper_testbed()
    relation = customer_relation(ROWS)
    advisor = LayoutAdvisor(platform.memory_model)

    for title, events in (
        ("Phase 1: OLTP point queries on identity columns", oltp_phase(relation)),
        ("Phase 2: analytics on balance columns", olap_phase(relation)),
        (
            "Phase 3: the HTAP mix of both",
            oltp_phase(relation, 150) + olap_phase(relation, 15),
        ),
    ):
        stats = AttributeStatistics.from_events(relation.schema, events)
        proposal = advisor.propose(relation, stats, events)
        print("=" * 64)
        print(title)
        print("=" * 64)
        print(describe(proposal))
        cost_ms = proposal.estimated_cycles / platform.cpu.frequency_hz * 1e3
        print(f"estimated workload cost under this layout: {cost_ms:.2f} simulated ms")
        # Compare against the two fixed extremes.
        from repro.adapt.advisor import GroupProposal
        from repro.layout.linearization import LinearizationKind

        nsm = advisor.estimate(
            relation,
            (GroupProposal(relation.schema.names, LinearizationKind.NSM),),
            events,
        )
        dsm = advisor.estimate(
            relation,
            (GroupProposal(relation.schema.names, LinearizationKind.DIRECT),),
            events,
        )
        print(
            f"for reference: pure NSM {nsm / platform.cpu.frequency_hz * 1e3:.2f} ms, "
            f"pure DSM {dsm / platform.cpu.frequency_hz * 1e3:.2f} ms\n"
        )


if __name__ == "__main__":
    main()
