#!/usr/bin/env python3
"""HTAP workload shootout: one mixed query stream, five storage engines.

Drives the same deterministic HTAP mix (point materializations, point
updates, full-column aggregations) through HYRISE, H2O, HyPer, Peloton
and the reference engine; reports each engine's simulated time before
and after it is allowed to re-organize for the observed workload.

Run:  python examples/htap_mixed_workload.py
"""

from repro.core.reference_engine import ReferenceEngine
from repro.core.report import render_table
from repro.engines import H2OEngine, HyperEngine, HyriseEngine, PelotonEngine
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import HTAPMix, QueryShape, generate_items, item_relation, item_schema

ROWS = 50_000
QUERIES = 120
OLTP_FRACTION = 0.3  # analytics-leaning HTAP mix

ENGINES = {
    "HYRISE": HyriseEngine,
    "H2O": lambda platform: H2OEngine(platform, hot_columns=("i_price",)),
    "HyPer": lambda platform: HyperEngine(platform, chunk_rows=8192),
    "Peloton": lambda platform: PelotonEngine(platform, tile_group_rows=8192),
    "Reference": ReferenceEngine,
}


def run_stream(engine, platform, mix, count) -> float:
    ctx = ExecutionContext(platform)
    for query in mix.queries(count):
        if query.shape is QueryShape.FULL_SUM:
            engine.sum("item", query.attributes[0], ctx)
        elif query.shape is QueryShape.POINT_MATERIALIZE:
            engine.materialize("item", list(query.positions), ctx)
        else:
            engine.update(
                "item", query.positions[0], query.attributes[0], 1.0, ctx
            )
    return ctx.seconds() * 1e3


def main() -> None:
    columns = generate_items(ROWS)
    mix = HTAPMix(
        item_relation(ROWS),
        oltp_fraction=OLTP_FRACTION,
        olap_attributes=("i_price", "i_im_id"),
        seed=2026,
    )
    rows = []
    for name, factory in ENGINES.items():
        platform = Platform.paper_testbed()
        engine = factory(platform)
        engine.create("item", item_schema())
        engine.load("item", columns)

        cold_ms = run_stream(engine, platform, mix, QUERIES)
        adapted = engine.reorganize("item", ExecutionContext(platform))
        warm_ms = run_stream(engine, platform, mix, QUERIES)
        improvement = (cold_ms - warm_ms) / cold_ms * 100
        rows.append(
            (
                name,
                f"{cold_ms:.2f}",
                "yes" if adapted else "no",
                f"{warm_ms:.2f}",
                f"{improvement:+.1f}%",
            )
        )
    print(
        f"HTAP mix: {QUERIES} queries, {OLTP_FRACTION:.0%} OLTP, "
        f"{ROWS:,} item rows (simulated ms per stream)\n"
    )
    print(
        render_table(
            rows,
            ("engine", "before adapt", "re-organized?", "after adapt", "change"),
        )
    )
    print(
        "\nEvery engine answers the same queries with the same values; "
        "what differs is the physical design each converges to."
    )


if __name__ == "__main__":
    main()
