#!/usr/bin/env python3
"""Regenerate the paper's conceptual artifacts: Table 1, Figure 4, E8.

Builds a live, representative instance of all ten surveyed storage
engines, derives their classification from mechanisms, diffs against
the published Table 1, renders the Figure 4 taxonomy, and prints the
Section IV-C requirements gap matrix — the paper's "not yet".

Run:  python examples/engine_survey_report.py
"""

from repro.core import (
    classify,
    render_requirements_matrix,
    render_survey_table,
    render_taxonomy,
    run_survey,
    satisfies_all,
)
from repro.core.reference_engine import ReferenceEngine
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema


def build_reference_classification():
    platform = Platform.paper_testbed()
    engine = ReferenceEngine(platform, delta_tile_rows=256)
    engine.create("item", item_schema())
    engine.load("item", generate_items(1000))
    ctx = ExecutionContext(platform)
    for i in range(5):
        engine.insert("item", (1000 + i, 1, "AA", "B", 1.0), ctx)
    return classify(engine, "item")


def main() -> None:
    print("=" * 72)
    print("Figure 4: the storage-engine classification taxonomy")
    print("=" * 72)
    print(render_taxonomy())

    print()
    print("=" * 72)
    print("Table 1: survey classification, DERIVED from live mini-engines")
    print("=" * 72)
    results = run_survey(row_count=1000)
    print(render_survey_table(results))
    matches = sum(result.matches for result in results)
    print(f"\n{matches}/{len(results)} rows match the paper cell-for-cell")

    print()
    print("=" * 72)
    print("Section IV-C: the reference requirements gap")
    print("=" * 72)
    classifications = [result.derived for result in results]
    classifications.append(build_reference_classification())
    print(render_requirements_matrix(classifications))

    survived = [c.engine for c in classifications if satisfies_all(c)]
    print(
        f"\nEngines satisfying all six requirements: {survived or 'none'}"
        " — the paper's answer for 2017's systems is a resolute: not yet."
    )


if __name__ == "__main__":
    main()
