#!/usr/bin/env python3
"""Quickstart: the reference HTAP CPU/GPU engine in five minutes.

Builds the paper's Section IV-C reference storage engine on the
simulated ICDE'17 testbed, loads the TPC-C-like item table, and runs
the paper's two canonical queries — Q1 (record-centric point lookup)
and Q2 (attribute-centric aggregation) — plus the HTAP write path,
printing simulated costs and where every byte lives.

Run:  python examples/quickstart.py
"""

from repro import ExecutionContext, Platform, ReferenceEngine
from repro.core import check_requirements, classify
from repro.workload import generate_items, item_schema

ROWS = 200_000


def main() -> None:
    platform = Platform.paper_testbed()
    engine = ReferenceEngine(platform)
    engine.create("item", item_schema())
    engine.load("item", generate_items(ROWS))
    print(f"loaded {ROWS:,} item rows "
          f"({platform.host_memory.used / 1e6:.1f} MB host, "
          f"{platform.device_memory.used / 1e6:.1f} MB device)")
    print("device-placed columns:", engine.placed_columns("item"))

    # Q2: SELECT sum(i_price) FROM item  (attribute-centric)
    ctx = ExecutionContext(platform)
    total = engine.sum("item", "i_price", ctx)
    print(f"\nQ2 sum(i_price) = {total:,.2f} "
          f"in {ctx.seconds() * 1e3:.3f} simulated ms "
          f"({ctx.counters.kernel_launches} GPU kernel launches)")

    # Q1: SELECT * FROM item WHERE i_id = 12345  (record-centric)
    ctx = ExecutionContext(platform)
    row = engine.point_query("item", 12345, ctx)
    print(f"Q1 point query -> {row} "
          f"in {ctx.seconds() * 1e6:.2f} simulated us")

    # The HTAP write path: inserts land in the NSM delta...
    ctx = ExecutionContext(platform)
    for i in range(1000):
        engine.insert("item", (ROWS + i, 7, "NEW", "XY", 9.99), ctx)
    print(f"\ninserted 1000 rows into the delta "
          f"in {ctx.seconds() * 1e3:.3f} simulated ms")
    print("row 200500 owner:", engine.delegation_policy("item").owner_of(ROWS + 500, "i_price"))

    # ...and reorganization merges them into the columnar main.
    ctx = ExecutionContext(platform)
    engine.reorganize("item", ctx)
    print(f"merge + re-placement took {ctx.seconds() * 1e3:.3f} simulated ms; "
          f"row 200500 owner is now "
          f"{engine.delegation_policy('item').owner_of(ROWS + 500, 'i_price')!r}")

    # The write stream never stops in HTAP: new rows land in a fresh delta.
    ctx = ExecutionContext(platform)
    for i in range(100):
        engine.insert("item", (ROWS + 1000 + i, 7, "NEW", "XY", 9.99), ctx)

    # The engine satisfies all six reference requirements.
    classification = classify(engine, "item")
    verdicts = check_requirements(classification)
    print("\nTable 1 row:", " | ".join(classification.row()))
    print("reference requirements:", verdicts)


if __name__ == "__main__":
    main()
