#!/usr/bin/env python3
"""GPU offloading, CoGaDB-style: placement, HyPE routing, and the
transfer-cost cliff.

Demonstrates the paper's heterogeneous-platform challenges on the
simulated device: the all-or-nothing column placement rule, HyPE's
calibrated CPU/GPU choice per query, and how Figure 2's panels 3 vs 4
emerge from one accounting switch (is the column already resident?).

Run:  python examples/gpu_offloading.py
"""

from repro.core.report import render_table
from repro.engines import CoGaDBEngine
from repro.execution import ExecutionContext
from repro.hardware import Platform
from repro.workload import generate_items, item_schema

ROWS = 1_000_000


def main() -> None:
    platform = Platform.paper_testbed()
    engine = CoGaDBEngine(platform)
    engine.create("item", item_schema())
    engine.load("item", generate_items(ROWS))

    # Before placement, HyPE keeps the scan on the CPU: the transfer
    # would cost more than it saves.
    ctx = ExecutionContext(platform)
    engine.sum("item", "i_price", ctx)
    print(f"unplaced sum: HyPE chose {engine.scheduler.decisions[-1]!r}, "
          f"{ctx.seconds() * 1e3:.3f} simulated ms")

    # All-or-nothing placement: whole columns or nothing.
    ctx = ExecutionContext(platform)
    reports = engine.place_columns("item", ("i_price", "i_im_id"), ctx)
    for report in reports:
        print(f"place {report.attribute}: {report.reason}")
    print(f"device memory used: {platform.device_memory.used / 1e6:.1f} MB; "
          f"placement moved {ctx.counters.bytes_transferred / 1e6:.1f} MB over PCIe")

    # Resident columns flip HyPE's decision.
    ctx = ExecutionContext(platform)
    total = engine.sum("item", "i_price", ctx)
    print(f"\nresident sum = {total:,.2f}: HyPE chose "
          f"{engine.scheduler.decisions[-1]!r}, {ctx.seconds() * 1e3:.3f} simulated ms")
    print("where the time went:")
    print(ctx.render_breakdown(top=3))

    # The panel 3 vs 4 story, as one table.
    from repro.bench import (
        panel3_sum_all_transfer_included,
        panel4_sum_all_device_resident,
    )

    rows_axis = (5_000_000, 25_000_000, 45_000_000, 65_000_000)
    panel3 = panel3_sum_all_transfer_included(rows_axis)
    panel4 = panel4_sum_all_device_resident(rows_axis)
    table = []
    for count in rows_axis:
        host = panel3.y_at("column-store / host & multi-threaded", count)
        staged = panel3.y_at("column-store / device", count)
        resident = panel4.y_at("column-store / device", count)
        table.append(
            (
                f"{count / 1e6:.0f}M",
                f"{host:.2f}",
                f"{staged:.2f}",
                f"{resident:.2f}",
                "host" if host < staged else "device",
                "device" if resident < host else "host",
            )
        )
    print("\nFigure 2 panels 3 vs 4 (simulated ms, full price-column sum):")
    print(
        render_table(
            table,
            (
                "#records",
                "CPU (8 threads)",
                "GPU + transfer",
                "GPU resident",
                "winner w/ transfer",
                "winner resident",
            ),
        )
    )
    print(
        "\nThe device wins if and only if the column already lives there — "
        "the paper's data-placement argument in one table."
    )


if __name__ == "__main__":
    main()
