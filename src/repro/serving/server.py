"""The serving loop: admission, batching, and the simulated event clock.

:class:`ServingLoop` is a discrete-event server over the simulated
cycle timeline.  Arrivals (from a
:class:`~repro.serving.arrivals.WorkloadGenerator`) are admitted
through an :class:`~repro.serving.admission.AdmissionQueue` as the
clock reaches them; eligible work is dispatched one *unit* at a time —
a single query, or a batch of compatible device queries grouped under
the :class:`BatchPolicy`; the clock advances by each unit's measured
service cycles; per-query latency is ``finish - arrival``.

**Serial-equivalence discipline.**  Every unit runs inside its own
:class:`~repro.execution.context.CounterScope` (opened at the dispatch
instant, settled into the root totals, observed in the
:class:`~repro.obs.MetricsRegistry` — the exactly-once attribution the
verifier gates), and dispatch respects **write barriers**: reads may
reorder freely between two writes (they commute), but a write executes
only once every earlier-arriving query has — so the interleaved,
batched execution produces answers byte-identical to a serial replay
of the same admitted queries in arrival order.

**Rebalancer cadence.**  Given a
:class:`~repro.rebalance.Rebalancer` and an interval, the loop polls
``rebalance_once`` on that cadence — migrations run in their own
scopes, with pending queries interleaved between each migration's copy
and cutover phases, which is ROADMAP item 3's trigger loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import (
    AdmissionRejected,
    CapacityError,
    DeviceError,
    TransferError,
)
from repro.execution.context import ExecutionContext
from repro.execution.device import device_sum_column
from repro.execution.operators import (
    materialize_rows,
    sum_at_positions,
    sum_column,
    update_field,
)
from repro.hardware.event import Cycles
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import WindowedRegistry
from repro.serving.admission import AdmissionQueue
from repro.serving.arrivals import QueryArrival
from repro.serving.batch import run_device_batch
from repro.workload.queries import QueryShape, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.platform import Platform
    from repro.layout.layout import Layout
    from repro.rebalance.driver import Rebalancer
    from repro.sharding.executor import ShardedExecutor

__all__ = [
    "BatchPolicy",
    "SERIAL_DISPATCH",
    "BATCH_16",
    "LayoutBackend",
    "ShardedBackend",
    "ExecutedQuery",
    "ShedQuery",
    "RebalanceTick",
    "ServingReport",
    "ServingLoop",
]

#: The deterministic value a served point update writes (a pure
#: function of the position, so the serial replay writes it too).
UPDATE_VALUE_MODULUS = 97


@dataclass(frozen=True)
class BatchPolicy:
    """How the scheduler groups compatible device queries.

    ``max_batch = 1`` is serial dispatch (the baseline the throughput
    gate compares against); larger values let one dispatch absorb up
    to that many queued compatible queries.  Batches form naturally
    from backlog — the loop never waits for a batch to fill, so an
    idle system still serves single queries at first-arrival latency.
    """

    name: str
    max_batch: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


#: One query per dispatch: every device query pays its own launches.
SERIAL_DISPATCH = BatchPolicy("serial", 1)

#: The default batching policy the verifier gates.
BATCH_16 = BatchPolicy("batch-16", 16)


class LayoutBackend:
    """Single-node backend over one materialized :class:`Layout`.

    Full-column sums go to the device (through the staging cache),
    degrading to the host column scan when the device path surfaces a
    :class:`~repro.errors.DeviceError`/:class:`~repro.errors.TransferError`
    /:class:`~repro.errors.CapacityError`; point shapes run the host
    operators.  Device full sums are the *batchable* shape.
    """

    def __init__(self, platform: "Platform", store: "Layout") -> None:
        self.platform = platform
        self.store = store

    def batchable(self, spec: QuerySpec) -> bool:
        """Whether the query can join a device batch (full-column sums)."""
        return spec.shape is QueryShape.FULL_SUM

    def is_write(self, spec: QuerySpec) -> bool:
        """Whether the query mutates the store (dispatch barrier)."""
        return spec.shape is QueryShape.POINT_UPDATE

    def run(self, spec: QuerySpec, ctx: ExecutionContext) -> Any:
        """Execute one query; returns its data-plane answer."""
        if spec.shape is QueryShape.FULL_SUM:
            try:
                return device_sum_column(self.store, spec.attributes[0], ctx)
            except (DeviceError, TransferError, CapacityError) as error:
                injector = self.platform.injector
                if getattr(error, "injected", False) and injector is not None:
                    injector.report.record_fallback()
                    ctx.counters.fault_fallbacks += 1
                ctx.counters.degraded_queries += 1
                return sum_column(self.store, spec.attributes[0], ctx)
        if spec.shape is QueryShape.POSITION_SUM:
            return sum_at_positions(
                self.store, spec.attributes[0], list(spec.positions), ctx
            )
        if spec.shape is QueryShape.POINT_MATERIALIZE:
            return materialize_rows(self.store, list(spec.positions), ctx)
        position = spec.positions[0]
        value = float(position % UPDATE_VALUE_MODULUS)
        update_field(self.store, position, spec.attributes[0], value, ctx)
        return value

    def run_batch(
        self, specs: Sequence[QuerySpec], ctx: ExecutionContext
    ) -> list[Any]:
        """Execute a batch of compatible device queries in one dispatch."""
        try:
            return run_device_batch(
                self.store, [spec.attributes[0] for spec in specs], ctx
            )
        except (DeviceError, TransferError, CapacityError) as error:
            injector = self.platform.injector
            if getattr(error, "injected", False) and injector is not None:
                injector.report.record_fallback()
                ctx.counters.fault_fallbacks += 1
            ctx.counters.degraded_queries += len(specs)
            return [
                sum_column(self.store, spec.attributes[0], ctx)
                for spec in specs
            ]


class ShardedBackend:
    """Backend adapter over the distributed scatter-gather executor.

    Answers are the executor's canonical encodings (so the cadence
    regression test byte-compares them).  Nothing is device-batchable —
    cross-shard batching is its own future item — which also makes this
    the backend that exercises the serial dispatch path under the
    rebalancer trigger loop.
    """

    def __init__(self, executor: "ShardedExecutor") -> None:
        self.executor = executor

    def batchable(self, spec: QuerySpec) -> bool:
        """Sharded queries never join device batches."""
        return False

    def is_write(self, spec: QuerySpec) -> bool:
        """Point updates are the barrier shape, exactly as single-node."""
        return spec.shape is QueryShape.POINT_UPDATE

    def run(self, spec: QuerySpec, ctx: ExecutionContext) -> Any:
        """Scatter-gather the query; returns the canonical answer bytes."""
        return self.executor.run(spec, ctx).encoded()

    def run_batch(
        self, specs: Sequence[QuerySpec], ctx: ExecutionContext
    ) -> list[Any]:
        """Unreachable by construction (nothing is batchable)."""
        return [self.run(spec, ctx) for spec in specs]


@dataclass(frozen=True)
class ExecutedQuery:
    """One served query: identity, timing, and answer."""

    seq: int
    tenant: str
    shape: str
    arrival_cycle: Cycles
    start_cycle: Cycles
    finish_cycle: Cycles
    latency_cycles: Cycles
    unit: int
    batched: bool
    answer: Any


@dataclass(frozen=True)
class ShedQuery:
    """One query admission control refused."""

    seq: int
    tenant: str
    cycle: Cycles
    injected: bool


@dataclass(frozen=True)
class RebalanceTick:
    """One cadence-triggered rebalance round and what it overlapped."""

    at_cycle: Cycles
    committed: int
    aborted: int
    epoch: int
    interleaved_queries: int


@dataclass
class ServingReport:
    """Everything one :meth:`ServingLoop.run` produced.

    ``executed`` is ordered by finish time; ``shed`` by decision time;
    ``makespan_cycles`` is the clock when the last unit finished.  The
    loop's registry holds the ``serving.latency_cycles`` histogram the
    tail gates read.
    """

    executed: list[ExecutedQuery] = field(default_factory=list)
    shed: list[ShedQuery] = field(default_factory=list)
    rebalances: list[RebalanceTick] = field(default_factory=list)
    units: int = 0
    batches: int = 0
    makespan_cycles: Cycles = 0.0

    def throughput_per_second(self, platform: "Platform") -> float:
        """Served queries per simulated second of makespan."""
        seconds = platform.seconds(self.makespan_cycles)
        return len(self.executed) / seconds if seconds > 0 else 0.0


class ServingLoop:
    """The multi-tenant discrete-event serving loop.

    Parameters
    ----------
    backend:
        A :class:`LayoutBackend` or :class:`ShardedBackend` (anything
        with ``run`` / ``run_batch`` / ``batchable`` / ``is_write``).
    ctx:
        The root execution context; all scope deltas settle into its
        counters, so after a run ``ctx.counters`` is the platform
        total and must equal the registry totals (the exactly-once
        gate).
    queue:
        The admission queue (owns backlog bound and fairness policy).
    policy:
        The batch policy.
    registry:
        Metrics sink; every unit's scope delta is observed here, and
        per-query latency lands in ``serving.latency_cycles``.
    rebalancer / rebalance_interval_cycles:
        Optional cadence-polled rebalance trigger loop; every interval
        of simulated time the loop runs one detect-plan-migrate round,
        interleaving up to *rebalance_interleave* pending queries
        between each migration's copy and cutover.
    """

    def __init__(
        self,
        backend: Any,
        ctx: ExecutionContext,
        queue: AdmissionQueue,
        policy: BatchPolicy = SERIAL_DISPATCH,
        registry: MetricsRegistry | None = None,
        rebalancer: "Rebalancer | None" = None,
        rebalance_interval_cycles: Cycles | None = None,
        rebalance_interleave: int = 2,
    ) -> None:
        if rebalancer is not None and rebalance_interval_cycles is None:
            raise ValueError(
                "a rebalancer needs rebalance_interval_cycles to poll on"
            )
        self.backend = backend
        self.ctx = ctx
        self.queue = queue
        self.policy = policy
        self.registry = registry if registry is not None else MetricsRegistry()
        #: The windowed view of the registry, or ``None`` — every
        #: time-series emission below is a no-op on a plain registry,
        #: which is the zero-observer-effect contract in loop form.
        self._windowed: WindowedRegistry | None = (
            self.registry if isinstance(self.registry, WindowedRegistry) else None
        )
        self.rebalancer = rebalancer
        self.rebalance_interval_cycles = rebalance_interval_cycles
        self.rebalance_interleave = rebalance_interleave
        self.now: Cycles = 0.0
        self._answers: dict[int, tuple[QuerySpec, Any]] = {}
        self._report = ServingReport()
        self._last_rebalance: Cycles = 0.0
        self._admission_scope = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit_due(self, arrivals: list[QueryArrival], cursor: int) -> int:
        """Admit every arrival with ``cycle <= now``; returns new cursor.

        Admissions run inside the loop's long-lived admission scope so
        injected overflow tallies roll up exactly once; an injected
        shed is recorded *recovered* (shedding is the designed
        response), an organic shed is just counted.
        """
        injector = self.ctx.platform.injector
        while cursor < len(arrivals) and arrivals[cursor].cycle <= self.now:
            arrival = arrivals[cursor]
            cursor += 1
            with self.ctx.activate(self._admission_scope):
                try:
                    victim = self.queue.admit(arrival, self.ctx.counters)
                except AdmissionRejected as error:
                    injected = bool(getattr(error, "injected", False))
                    if injected and injector is not None:
                        injector.report.record_recovered()
                        self.ctx.counters.fault_recoveries += 1
                        injector.sample_outcome(
                            "serving.queue-overflow",
                            "recovered",
                            self.ctx.counters,
                        )
                    self._report.shed.append(
                        ShedQuery(arrival.seq, arrival.tenant, self.now, injected)
                    )
                    self._sample_shed(arrival.tenant)
                    continue
            if victim is not None:
                self._report.shed.append(
                    ShedQuery(victim.seq, victim.tenant, self.now, False)
                )
                self._sample_shed(victim.tenant)
        return cursor

    def _sample_shed(self, tenant: str) -> None:
        """Emit one per-tenant shed sample (no-op on a plain registry)."""
        if self._windowed is not None:
            self._windowed.record(
                "serving.shed", 1.0, cycle=self.now, tenant=tenant
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _eligible(self) -> list[QueryArrival]:
        """Pending entries the write barriers allow to run now.

        Reads older than the oldest pending write commute and are all
        eligible; the write itself becomes eligible only once it is
        the globally oldest pending query — the discipline that keeps
        every answer equal to an arrival-order serial execution.
        """
        pending = self.queue.pending
        if not pending:
            return []
        write_seqs = [
            entry.seq for entry in pending if self.backend.is_write(entry.spec)
        ]
        barrier = min(write_seqs) if write_seqs else None
        eligible = [
            entry
            for entry in pending
            if not self.backend.is_write(entry.spec)
            and (barrier is None or entry.seq < barrier)
        ]
        if not eligible and barrier is not None:
            oldest = min(entry.seq for entry in pending)
            if barrier == oldest:
                eligible = [entry for entry in pending if entry.seq == barrier]
        return eligible

    def _dispatch_unit(self, allow_batch: bool = True) -> bool:
        """Serve one unit (query or batch); returns False when idle.

        The unit runs in its own scope opened at the current clock;
        the scope's cycle delta is the unit's service time, the clock
        advances by it, and every member's latency is
        ``finish - arrival``.
        """
        eligible = self._eligible()
        if not eligible:
            return False
        order = self.queue.ordered(eligible)
        head = order[0]
        unit = [head]
        if (
            allow_batch
            and self.policy.max_batch > 1
            and self.backend.batchable(head.spec)
        ):
            for entry in order[1:]:
                if len(unit) >= self.policy.max_batch:
                    break
                if self.backend.batchable(entry.spec):
                    unit.append(entry)
        for entry in unit:
            self.queue.take(entry)
        batched = len(unit) > 1
        unit_id = self._report.units
        name = (
            f"batch.{unit_id}"
            if batched
            else f"q{head.seq}.{head.tenant}"
        )
        scope = self.ctx.open_scope(name, at_cycles=self.now)
        with self.ctx.activate(scope):
            if batched:
                answers = self.backend.run_batch(
                    [entry.spec for entry in unit], self.ctx
                )
            else:
                answers = [self.backend.run(head.spec, self.ctx)]
        delta = self.ctx.settle(scope)
        self.registry.observe_query(name, delta)
        start = self.now
        finish = start + delta.cycles
        for entry, answer in zip(unit, answers):
            latency = finish - entry.cycle
            self.registry.histogram("serving.latency_cycles").observe(latency)
            self.registry.histogram(
                f"serving.latency_cycles.p{entry.priority}"
            ).observe(latency)
            self.registry.histogram(
                f"serving.latency_cycles.tenant.{entry.tenant}"
            ).observe(latency)
            if self._windowed is not None:
                # Per-tenant end-to-end latency and admission wait on
                # the cycle timeline, plus a served-event counter (the
                # good half of the shed/served error-ratio SLOs).
                self._windowed.record(
                    "serving.latency", latency, cycle=finish,
                    kind="gauge", tenant=entry.tenant,
                )
                self._windowed.record(
                    "serving.admission_wait", start - entry.cycle,
                    cycle=start, kind="gauge", tenant=entry.tenant,
                )
                self._windowed.record(
                    "serving.served", 1.0, cycle=finish, tenant=entry.tenant
                )
            self._answers[entry.seq] = (entry.spec, answer)
            self._report.executed.append(
                ExecutedQuery(
                    seq=entry.seq,
                    tenant=entry.tenant,
                    shape=entry.spec.shape.name,
                    arrival_cycle=entry.cycle,
                    start_cycle=start,
                    finish_cycle=finish,
                    latency_cycles=latency,
                    unit=unit_id,
                    batched=batched,
                    answer=answer,
                )
            )
        self.now = finish
        if self._windowed is not None:
            self._windowed.advance_clock(self.now)
        self._report.units += 1
        if batched:
            self._report.batches += 1
        return True

    # ------------------------------------------------------------------
    # Rebalance cadence
    # ------------------------------------------------------------------
    def _maybe_rebalance(self) -> None:
        """Run one rebalance round when the cadence interval has passed."""
        if (
            self.rebalancer is None
            or self.now - self._last_rebalance < self.rebalance_interval_cycles
        ):
            return
        before = len(self._report.executed)
        tick_index = len(self._report.rebalances)
        scope = self.ctx.open_scope(
            f"rebalance.{tick_index}", at_cycles=self.now
        )

        def interleave() -> None:
            """Serve pending queries between a migration's copy and cutover."""
            for __ in range(self.rebalance_interleave):
                if not self._dispatch_unit(allow_batch=False):
                    break

        with self.ctx.activate(scope):
            outcome = self.rebalancer.rebalance_once(
                self.ctx, interleave=interleave
            )
        delta = self.ctx.settle(scope)
        self.registry.observe_query(scope.name, delta)
        self.now += delta.cycles
        if self._windowed is not None:
            self._windowed.advance_clock(self.now)
        self._last_rebalance = self.now
        self._report.rebalances.append(
            RebalanceTick(
                at_cycle=self.now,
                committed=outcome.committed,
                aborted=outcome.aborted,
                epoch=outcome.epoch,
                interleaved_queries=len(self._report.executed) - before,
            )
        )

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, arrivals: list[QueryArrival]) -> ServingReport:
        """Serve the whole arrival sequence; returns the report.

        Drains every admitted query (open-loop: late arrivals keep
        landing while earlier ones are served), then settles the
        admission scope so the exactly-once attribution closes.
        """
        self._admission_scope = self.ctx.open_scope("admission", at_cycles=0.0)
        cursor = 0
        while True:
            cursor = self._admit_due(arrivals, cursor)
            if not self.queue.pending:
                if cursor >= len(arrivals):
                    break
                # Idle: jump the clock to the next arrival.
                self.now = max(self.now, arrivals[cursor].cycle)
                if self._windowed is not None:
                    self._windowed.advance_clock(self.now)
                continue
            self._dispatch_unit()
            self._maybe_rebalance()
        delta = self.ctx.settle(self._admission_scope)
        self.registry.observe_query("admission", delta)
        self._report.makespan_cycles = self.now
        return self._report

    def answers_for_replay(self) -> list[tuple[int, QuerySpec, Any]]:
        """Every served (seq, spec, answer), in global arrival order.

        This is the byte-identity contract: replaying exactly these
        specs serially, in this order, on identically-built state must
        reproduce every answer.
        """
        return [
            (seq, spec, answer)
            for seq, (spec, answer) in sorted(self._answers.items())
        ]
