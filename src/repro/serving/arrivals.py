"""Open-loop arrival processes and the multi-tenant workload generator.

"Millions of users" do not wait for the previous query to finish: an
**open-loop** workload keeps arriving at its own rate regardless of how
the server is doing, which is exactly what makes tail latency and
admission control meaningful (a closed-loop client self-throttles and
hides overload).  This module puts seeded arrival processes on the
simulated cycle timeline:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate,
  the baseline of every queueing model;
* :class:`BurstyArrivals` — an on/off modulated Poisson process:
  geometric-length bursts at a multiplied rate separated by idle gaps,
  the "flash crowd" shape;
* :class:`DiurnalArrivals` — a sinusoidally modulated Poisson process
  (thinning construction), the day/night cycle compressed onto the
  simulated clock.

A :class:`TenantSpec` binds one arrival process to a fairness weight, a
priority class, and an :class:`~repro.workload.htap.HTAPMix`-shaped
query population; :class:`WorkloadGenerator` merges every tenant's
stream into one time-sorted sequence of :class:`QueryArrival` events.
Everything is a pure function of the seeds — the verifier's determinism
gate runs each cell twice and requires identical records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.hardware.event import Cycles
from repro.model.relation import Relation
from repro.workload.htap import HTAPMix
from repro.workload.queries import QuerySpec

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TenantSpec",
    "QueryArrival",
    "WorkloadGenerator",
]


class ArrivalProcess:
    """Base class: a seeded stream of inter-arrival gaps in cycles.

    Subclasses implement :meth:`gaps`; :meth:`cycles_until` integrates
    the gaps into absolute arrival instants up to a horizon.  Processes
    are stateless — all randomness comes from the generator passed in,
    so one process object can be shared across tenants and runs.
    """

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Yield successive inter-arrival gaps (cycles), forever."""
        raise NotImplementedError

    def cycles_until(
        self, rng: np.random.Generator, horizon_cycles: Cycles, limit: int
    ) -> list[float]:
        """Absolute arrival cycles in ``(0, horizon]``, capped at *limit*."""
        if horizon_cycles <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon_cycles}")
        out: list[float] = []
        now = 0.0
        for gap in self.gaps(rng):
            now += gap
            if now > horizon_cycles or len(out) >= limit:
                break
            out.append(now)
        return out


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with the given mean."""

    mean_gap_cycles: float

    def __post_init__(self) -> None:
        if self.mean_gap_cycles <= 0:
            raise WorkloadError(
                f"mean_gap_cycles must be positive, got {self.mean_gap_cycles}"
            )

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Exponential inter-arrival gaps at rate ``1/mean_gap_cycles``."""
        while True:
            yield float(rng.exponential(self.mean_gap_cycles))


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off arrivals: dense geometric bursts separated by idle gaps.

    During a burst, gaps are exponential with mean
    ``mean_gap_cycles / burst_factor`` (the flash crowd); the burst
    length is geometric with mean ``mean_burst_length``; between bursts
    one exponential idle gap with mean ``idle_gap_cycles`` passes with
    no arrivals at all.
    """

    mean_gap_cycles: float
    burst_factor: float = 8.0
    mean_burst_length: float = 12.0
    idle_gap_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_gap_cycles <= 0 or self.burst_factor < 1.0:
            raise WorkloadError(
                "bursty arrivals need mean_gap_cycles > 0 and burst_factor >= 1"
            )
        if self.mean_burst_length < 1.0:
            raise WorkloadError("mean_burst_length must be >= 1")

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Alternate geometric-length bursts with idle gaps."""
        idle = self.idle_gap_cycles or self.mean_gap_cycles * self.burst_factor
        burst_gap = self.mean_gap_cycles / self.burst_factor
        while True:
            length = int(rng.geometric(1.0 / self.mean_burst_length))
            for __ in range(length):
                yield float(rng.exponential(burst_gap))
            yield float(rng.exponential(idle))


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated arrivals (the day/night cycle).

    Implemented by thinning: candidates arrive as a Poisson process at
    the peak rate (``1 / peak_gap_cycles``); a candidate at instant *t*
    survives with probability
    ``floor + (1 - floor) * (0.5 + 0.5 * sin(2*pi*t / period))``, so
    the accepted rate swings between ``floor`` and 1 times the peak
    over each period.
    """

    peak_gap_cycles: float
    period_cycles: float
    floor: float = 0.1

    def __post_init__(self) -> None:
        if self.peak_gap_cycles <= 0 or self.period_cycles <= 0:
            raise WorkloadError(
                "diurnal arrivals need positive peak_gap_cycles and period_cycles"
            )
        if not 0.0 <= self.floor <= 1.0:
            raise WorkloadError(f"floor must be in [0, 1], got {self.floor}")

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Thinned exponential gaps following the sinusoidal rate."""
        now = 0.0
        pending = 0.0
        while True:
            candidate = float(rng.exponential(self.peak_gap_cycles))
            now += candidate
            pending += candidate
            phase = 0.5 + 0.5 * math.sin(2.0 * math.pi * now / self.period_cycles)
            accept = self.floor + (1.0 - self.floor) * phase
            if rng.uniform() < accept:
                yield pending
                pending = 0.0


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving tier: identity, rate, mix, and rights.

    Attributes
    ----------
    name:
        Tenant identity (also the fairness-accounting key).
    arrivals:
        The tenant's open-loop arrival process.
    weight:
        Weighted-fair-queueing share; a weight-2 tenant drains twice as
        fast as a weight-1 tenant under contention.
    priority:
        Priority class, lower is more urgent (0 = interactive).  The
        admission queue serves classes strictly in order and sheds the
        lowest class first under overflow pressure.
    oltp_fraction:
        The tenant's HTAP mix knob (share of transactional queries).
    seed_offset:
        Folded into the generator seed so tenants draw distinct streams.
    """

    name: str
    arrivals: ArrivalProcess
    weight: float = 1.0
    priority: int = 0
    oltp_fraction: float = 0.25
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"tenant weight must be positive, got {self.weight}")
        if self.priority < 0:
            raise WorkloadError(f"priority class must be >= 0, got {self.priority}")


@dataclass(frozen=True)
class QueryArrival:
    """One query landing on the timeline: who, when, and what.

    ``seq`` is the global arrival order — the serial-equivalence order
    the batch scheduler's write barriers preserve and the byte-identity
    oracle replays.
    """

    seq: int
    cycle: Cycles
    tenant: str
    priority: int
    weight: float
    spec: QuerySpec


@dataclass(frozen=True)
class WorkloadGenerator:
    """Merge every tenant's seeded stream into one arrival sequence.

    Each tenant gets an independent ``np.random.Generator`` seeded from
    ``(seed, tenant.seed_offset, index)`` and an
    :class:`~repro.workload.htap.HTAPMix` over *relation* with the
    tenant's OLTP fraction, so the merged stream is deterministic and
    tenants never share randomness.  Arrivals are sorted by
    ``(cycle, tenant name)`` and numbered with the global ``seq``.
    """

    relation: Relation
    tenants: tuple[TenantSpec, ...]
    seed: int = 0
    #: Safety cap per tenant so a mis-tuned rate cannot hang a run.
    max_queries_per_tenant: int = 100_000
    olap_attributes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.tenants:
            raise WorkloadError("a workload needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate tenant names in {names}")

    def arrivals(self, horizon_cycles: Cycles) -> list[QueryArrival]:
        """Every tenant's arrivals in ``(0, horizon]``, merged and numbered."""
        merged: list[tuple[float, str, int, float, QuerySpec]] = []
        for index, tenant in enumerate(self.tenants):
            rng = np.random.default_rng(
                (self.seed * 1_000_003 + tenant.seed_offset * 7919 + index) % (2**63)
            )
            cycles = tenant.arrivals.cycles_until(
                rng, horizon_cycles, self.max_queries_per_tenant
            )
            mix = HTAPMix(
                self.relation,
                oltp_fraction=tenant.oltp_fraction,
                olap_attributes=self.olap_attributes,
                seed=(self.seed * 31 + tenant.seed_offset + index) % (2**31),
            )
            specs = mix.query_list(len(cycles))
            for cycle, spec in zip(cycles, specs):
                merged.append(
                    (cycle, tenant.name, tenant.priority, tenant.weight, spec)
                )
        merged.sort(key=lambda item: (item[0], item[1]))
        return [
            QueryArrival(seq, cycle, tenant, priority, weight, spec)
            for seq, (cycle, tenant, priority, weight, spec) in enumerate(merged)
        ]
