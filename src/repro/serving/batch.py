"""The GPU batch path: K compatible device queries, one shared ride.

A warm full-column sum on the simulated device is dominated by fixed
costs: two kernel-launch latencies and one result copy's PCIe latency
dwarf the actual streaming time of a cached column.  Serial dispatch
pays those fixed costs **per query**; :func:`run_device_batch` pays
them **per batch**:

* every distinct operand column is probed in the staging cache once,
  and all misses ship in ONE coalesced PCIe burst
  (:meth:`~repro.staging.StagingManager.acquire_set` — one link
  latency for the whole operand set);
* the reductions launch as ONE batched two-pass grid
  (:meth:`~repro.hardware.gpu.GPUModel.batched_reduction_cost` — two
  launch latencies total, streaming charged per distinct column);
* all K scalar answers return in ONE device→host copy.

The data plane is deliberately identical to the serial path: each
query's answer accumulates ``float(np.sum(...))`` per fragment in
fragment order, exactly as
:func:`~repro.execution.device.device_sum_column` does — batching is a
cost-plane optimization, never a semantics change, and the serving
verifier byte-compares every batched answer against a serial replay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.execution.device import is_device_resident
from repro.hardware.event import Cycles
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution.context import ExecutionContext

__all__ = ["run_device_batch"]


def _sum_fragments(layout: Layout, attribute: str) -> float:
    """One query's data-plane answer, in the serial accumulation order.

    Must mirror :func:`~repro.execution.device.device_sum_column`'s
    loop shape — per-fragment ``float(np.sum(values))`` added in
    fragment order — so a batched answer is bit-equal to the serial
    one.  Fragment payloads and staged replicas hold equal arrays
    (replicas are copies invalidated on every write), so reading the
    fragment is always correct here.
    """
    total = 0.0
    for fragment in layout.fragments_for_attribute(attribute):
        if not fragment.is_phantom:
            values = fragment.column(attribute)
            total += float(np.sum(values)) if len(values) else 0.0
    return total


def run_device_batch(
    layout: Layout, attributes: Sequence[str], ctx: "ExecutionContext"
) -> list[float]:
    """Run K full-column sums as one batched device dispatch.

    *attributes* names each query's target column (duplicates are the
    common case — repeated analytics on the hot column — and are what
    batching deduplicates).  Returns one answer per entry, in order.

    Cost plane: per **distinct** column, one staging lookup per
    fragment; all misses staged in one coalesced burst (falling back
    to one uncached burst of the same bytes when the replicas cannot
    be cached); one batched two-pass reduction for the whole set; one
    result copy carrying all K scalars.  Fault behaviour matches the
    serial path: the burst retries under ``ctx.retry`` and surviving
    faults propagate to the caller's fallback chain.
    """
    if not attributes:
        return []
    staging = ctx.platform.staging
    distinct = list(dict.fromkeys(attributes))
    with ctx.span(
        "device-batch-sum",
        "operator",
        queries=len(attributes),
        columns=len(distinct),
    ):
        requests: list[tuple[Fragment, str, int]] = []
        shapes: list[tuple[int, int]] = []
        result_width = 0
        for attribute in distinct:
            fragments = layout.fragments_for_attribute(attribute)
            if not fragments:
                continue
            width = fragments[0].schema.attribute(attribute).width
            count = 0
            for fragment in fragments:
                count += fragment.filled
                if is_device_resident(fragment):
                    continue
                entry = staging.lookup(fragment, attribute, ctx.counters)
                if entry is None:
                    requests.append((fragment, attribute, width))
            shapes.append((count, width))
            result_width += width * attributes.count(attribute)
        if requests:
            entries = staging.acquire_set(requests, ctx)
            if entries is None:
                # The operand set cannot be cached even after eviction:
                # ship the same bytes in one uncached burst (same wire
                # time, no replicas installed for the next batch).
                sizes = [
                    fragment.filled * width
                    for fragment, __, width in requests
                    if fragment.filled * width > 0
                ]

                def attempt() -> Cycles:
                    return staging.scheduler.burst(sizes, ctx.counters)

                if ctx.retry is not None:
                    cost = ctx.retry.run("pcie-transfer(batch)", attempt, ctx)
                else:
                    cost = attempt()
                ctx.note("pcie-transfer", cost)
        if shapes:
            with ctx.span(
                "gpu-batch-reduce", "kernel", columns=len(shapes)
            ):
                kernel_cost = ctx.platform.gpu.batched_reduction_cost(
                    shapes, ctx.counters
                )
                ctx.note("gpu-batch-reduce", kernel_cost)
        answers = [_sum_fragments(layout, attribute) for attribute in attributes]
        # All K scalars come home in one device->host copy.
        result_cost = staging.scheduler.transfer(
            max(result_width, 1), ctx.counters
        )
        ctx.note("result-copy", result_cost)
    return answers
