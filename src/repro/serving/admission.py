"""Admission control: bounded backlog, priority classes, weighted fairness.

An open-loop workload does not slow down when the server falls behind,
so an unbounded queue grows without limit and every tenant's tail
latency grows with it.  The :class:`AdmissionQueue` bounds the backlog
and **sheds** the least important work instead — a typed
:class:`~repro.errors.AdmissionRejected`, never a silent drop — which
is what keeps p99/p50 finite under saturation (the verifier gates
exactly that).

Ordering is two-level:

* **priority classes** are strict: class 0 drains before class 1 ever
  runs (and class 1 is shed first under overflow pressure);
* **within a class**, tenants share capacity by weighted fair queueing
  (virtual finish tags — each admitted query's tag is its tenant's
  previous tag plus ``1/weight``, so a weight-2 tenant's queries carry
  tags that grow half as fast and drain twice as often).

The queue also registers the ``serving.queue-overflow`` fault site: an
injected overflow sheds an otherwise-admittable query, exercising the
client-visible rejection path under chaos without a real overload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import AdmissionRejected
from repro.faults.injector import register_fault_site
from repro.serving.arrivals import QueryArrival

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.hardware.event import PerfCounters

__all__ = ["SITE_QUEUE_OVERFLOW", "AdmissionQueue"]

#: Admission-control overflow: the serving queue sheds an arriving
#: query as if the backlog were full (raises
#: :class:`~repro.errors.AdmissionRejected` with ``injected = True``).
SITE_QUEUE_OVERFLOW = register_fault_site(
    "serving.queue-overflow",
    "admission queue sheds an arriving query",
    AdmissionRejected,
)


class AdmissionQueue:
    """Bounded multi-tenant backlog with WFQ ordering and typed shedding.

    Parameters
    ----------
    max_backlog:
        Backlog bound; ``None`` disables shedding entirely (the
        unbounded baseline the verifier contrasts against).
    injector:
        Optional :class:`~repro.faults.FaultInjector`; when the
        ``serving.queue-overflow`` site fires at admission time the
        arriving query is shed with ``injected = True`` — the serving
        loop records the shed as a *recovered* fault (shedding is the
        designed response, not a failure).
    """

    def __init__(
        self,
        max_backlog: int | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        if max_backlog is not None and max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        self.max_backlog = max_backlog
        self.injector = injector
        self._pending: list[QueryArrival] = []
        self._tags: dict[int, float] = {}
        self._virtual: dict[str, float] = {}
        self._global_virtual = 0.0
        self.admitted = 0
        self.shed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Queries currently waiting."""
        return len(self._pending)

    @property
    def pending(self) -> list[QueryArrival]:
        """The waiting queries (admission order; do not mutate)."""
        return self._pending

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        arrival: QueryArrival,
        counters: "PerfCounters | None" = None,
    ) -> QueryArrival | None:
        """Admit *arrival*, shedding if the backlog is full.

        Returns the **displaced** entry when the newcomer out-ranks a
        lower-priority waiting query (the victim is shed to make room),
        else ``None``.  Raises :class:`~repro.errors.AdmissionRejected`
        when the newcomer itself is shed — because the backlog is full
        of equal-or-higher-priority work, or because the
        ``serving.queue-overflow`` fault fired.  Either way the queue's
        ``shed`` tally moves; the caller only decides what to log.
        """
        if self.injector is not None:
            try:
                self.injector.check(SITE_QUEUE_OVERFLOW, counters)
            except AdmissionRejected:
                self.shed += 1
                raise
        victim: QueryArrival | None = None
        if (
            self.max_backlog is not None
            and len(self._pending) >= self.max_backlog
        ):
            # Shed the least important waiting entry — but only if the
            # newcomer strictly out-ranks it; ties reject the newcomer
            # (first-come-first-queued within a class).
            worst = max(
                self._pending, key=lambda entry: (entry.priority, entry.seq)
            )
            if worst.priority <= arrival.priority:
                self.shed += 1
                raise AdmissionRejected(
                    f"backlog full ({self.max_backlog}); query "
                    f"seq={arrival.seq} of tenant {arrival.tenant!r} shed"
                )
            victim = worst
            self._pending.remove(worst)
            self._tags.pop(worst.seq, None)
            self.shed += 1
        tag = max(
            self._virtual.get(arrival.tenant, 0.0), self._global_virtual
        ) + 1.0 / arrival.weight
        self._virtual[arrival.tenant] = tag
        self._tags[arrival.seq] = tag
        self._pending.append(arrival)
        self.admitted += 1
        return victim

    # ------------------------------------------------------------------
    # Service order
    # ------------------------------------------------------------------
    def rank(self, entry: QueryArrival) -> tuple[int, float, int]:
        """The entry's service rank: (priority class, WFQ tag, seq)."""
        return (entry.priority, self._tags[entry.seq], entry.seq)

    def ordered(
        self, entries: "list[QueryArrival] | None" = None
    ) -> list[QueryArrival]:
        """*entries* (default: all pending) in service order."""
        pool = self._pending if entries is None else entries
        return sorted(pool, key=self.rank)

    def take(self, entry: QueryArrival) -> QueryArrival:
        """Remove *entry* for dispatch, advancing the virtual clock."""
        self._pending.remove(entry)
        tag = self._tags.pop(entry.seq)
        self._global_virtual = max(self._global_virtual, tag)
        return entry
