"""``python -m repro.serving`` — the concurrent-serving verifier CLI.

Shares the verifier flag vocabulary of ``repro.cli`` (``--seeds``,
``--output``, ``--smoke``) with the other chaos harnesses.  Runs the
byte-identity, throughput, tail-latency, and exactly-once-attribution
gates per seed and writes the ``BENCH_serving.json`` record; exits
non-zero when any gate fails, which is what the CI ``serving-bench``
job keys off.
"""

from __future__ import annotations

import json
import sys

from repro.cli import parse_seeds, verifier_parser
from repro.serving.verifier import run_serving_verifier


def main(argv: list[str] | None = None) -> int:
    """Parse flags, run the gates, write the record; 0 iff all pass."""
    parser = verifier_parser(
        "python -m repro.serving",
        "Concurrent multi-tenant serving verifier: batched answers must "
        "be byte-identical to a serial replay, batching must beat serial "
        "dispatch at saturation, and admission control must bound the "
        "latency tail.",
        default_output="BENCH_serving.json",
    )
    args = parser.parse_args(argv)
    record = run_serving_verifier(parse_seeds(args.seeds), smoke=args.smoke)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    for seed, cell in record["seeds"].items():
        gates = " ".join(
            f"{name}={'ok' if passed else 'FAIL'}"
            for name, passed in cell["gates"].items()
        )
        print(
            f"seed {seed}: speedup={cell['speedup']:.2f}x "
            f"tail={cell['bounded']['tail_ratio']:.1f} {gates}"
        )
    print("serving verifier:", "OK" if record["ok"] else "FAILED")
    return 0 if record["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
