"""The serving verifier: correctness, throughput, and tail-latency gates.

Batching and admission control only count if they change the *cost*
plane, never the *data* plane.  The harness here pins that down with
four gates, each run per chaos seed:

* **Byte identity** — every answer the concurrent, batched server
  produced is byte-equal to a serial replay of the same admitted
  queries in arrival order on identically-built state (exact ``==`` on
  canonical encodings, never tolerances).
* **Throughput** — at saturation the GPU batch scheduler clears the
  same workload at >= :data:`MIN_BATCH_SPEEDUP` x the serial
  dispatcher's rate (the amortized launches and coalesced bursts must
  actually show up as makespan).
* **Tail latency** — with a bounded admission queue the served
  ``p99/p50`` stays under :data:`MAX_TAIL_RATIO`; the unbounded
  baseline's p99 keeps *growing* as the horizon stretches (open-loop
  collapse), which is the paper-scale argument for shedding.
* **Exactly-once attribution** — the metrics registry's totals equal
  the root context's counters field-for-field, and under the
  ``serving.queue-overflow`` chaos site every injected fault is
  accounted for (``report.unaccounted == 0``).

Every cell is a pure function of its seed; the determinism gate runs
one cell twice and requires identical records.  ``python -m
repro.serving`` drives this module and writes ``BENCH_serving.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.execution.context import ExecutionContext
from repro.faults.injector import FaultInjector
from repro.faults.policy import RetryPolicy
from repro.hardware.platform import Platform
from repro.layout.fragment import Fragment, Region
from repro.layout.layout import Layout
from repro.obs.bench import make_bench_record
from repro.obs.metrics import MetricsRegistry
from repro.serving.admission import SITE_QUEUE_OVERFLOW, AdmissionQueue
from repro.serving.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    QueryArrival,
    TenantSpec,
    WorkloadGenerator,
)
from repro.serving.server import (
    BATCH_16,
    SERIAL_DISPATCH,
    BatchPolicy,
    LayoutBackend,
    ServingLoop,
    ServingReport,
)
from repro.sharding.verifier import encode_answer
from repro.workload.tpcc import generate_items, item_relation

__all__ = [
    "MIN_BATCH_SPEEDUP",
    "MAX_TAIL_RATIO",
    "MIN_UNBOUNDED_GROWTH",
    "ServingOutcome",
    "build_item_store",
    "build_tenants",
    "serve_once",
    "replay_serial",
    "identity_mismatches",
    "run_serving_verifier",
]

#: The throughput gate: batched dispatch must clear the saturation
#: workload at at least this multiple of serial dispatch.
MIN_BATCH_SPEEDUP = 2.0

#: The tail gate: served p99/p50 with a bounded admission queue.
MAX_TAIL_RATIO = 20.0

#: The unbounded baseline must degrade: doubling the overload horizon
#: must grow its p99 by at least this factor (no such growth appears
#: under admission control).
MIN_UNBOUNDED_GROWTH = 1.4

#: OLAP aggregation targets (two distinct columns, so batches both
#: deduplicate repeats and carry multi-column operand sets).
OLAP_ATTRIBUTES = ("i_price", "i_im_id")


def build_item_store(platform: Platform, row_count: int) -> Layout:
    """A filled single-fragment-per-attribute item column store.

    The same construction for every run of a cell (generation is
    seeded), so the serving run and its serial-replay oracle start from
    byte-identical state.
    """
    relation = item_relation(row_count)
    columns = generate_items(row_count)
    fragments = []
    for name in relation.schema.names:
        fragment = Fragment(
            Region(relation.rows, (name,)),
            relation.schema,
            None,
            platform.host_memory,
            label=f"item/{name}",
        )
        fragment.append_columns({name: columns[name]})
        fragments.append(fragment)
    return Layout("item/column-store", relation, fragments)


def build_tenants(
    tenant_count: int,
    per_tenant_gap_cycles: float,
    kind: str = "poisson",
    horizon_cycles: float | None = None,
    uniform_priority: bool = False,
) -> tuple[TenantSpec, ...]:
    """A deterministic tenant population for one cell.

    Tenants alternate fairness weights (2.0 / 1.0) and, unless
    *uniform_priority*, priority classes (0 / 1) — so every cell
    exercises both WFQ and strict classes.  *kind* picks the arrival
    process shape shared by all tenants.
    """
    process: ArrivalProcess
    if kind == "poisson":
        process = PoissonArrivals(per_tenant_gap_cycles)
    elif kind == "bursty":
        process = BurstyArrivals(per_tenant_gap_cycles)
    elif kind == "diurnal":
        if horizon_cycles is None:
            raise ValueError("diurnal tenants need horizon_cycles for the period")
        process = DiurnalArrivals(
            peak_gap_cycles=per_tenant_gap_cycles * 0.55,
            period_cycles=horizon_cycles / 2.0,
        )
    else:
        raise ValueError(f"unknown arrival kind {kind!r}")
    return tuple(
        TenantSpec(
            name=f"t{index}",
            arrivals=process,
            weight=2.0 if index % 2 == 0 else 1.0,
            priority=0 if (uniform_priority or index % 2 == 0) else 1,
            oltp_fraction=0.2,
            seed_offset=index,
        )
        for index in range(tenant_count)
    )


@dataclass
class ServingOutcome:
    """One serving run and everything the gates need to inspect it."""

    platform: Platform
    ctx: ExecutionContext
    registry: MetricsRegistry
    report: ServingReport
    loop: ServingLoop
    arrivals: list[QueryArrival]
    injector: FaultInjector | None


def serve_once(
    seed: int,
    row_count: int,
    tenants: tuple[TenantSpec, ...],
    horizon_cycles: float,
    policy: BatchPolicy,
    max_backlog: int | None,
    overflow_rate: float = 0.0,
    registry: MetricsRegistry | None = None,
) -> ServingOutcome:
    """Run one serving cell end to end on a fresh platform.

    Pass a :class:`~repro.obs.timeseries.WindowedRegistry` as
    *registry* to run the identical cell with the time-series plane
    active (the zero-observer-effect gate runs the cell both ways);
    when given, it is also attached as ``platform.metrics`` so the
    staging/PCIe/fault emission hooks feed the same registry.
    """
    platform = Platform.paper_testbed()
    if registry is not None:
        platform.metrics = registry
    injector: FaultInjector | None = None
    if overflow_rate > 0.0:
        injector = FaultInjector(seed=seed).arm(SITE_QUEUE_OVERFLOW, overflow_rate)
        injector.install(platform)
    store = build_item_store(platform, row_count)
    generator = WorkloadGenerator(
        store.relation, tenants, seed=seed, olap_attributes=OLAP_ATTRIBUTES
    )
    arrivals = generator.arrivals(horizon_cycles)
    ctx = ExecutionContext(
        platform,
        retry=RetryPolicy(report=injector.report if injector else None),
    )
    registry = registry if registry is not None else MetricsRegistry()
    loop = ServingLoop(
        backend=LayoutBackend(platform, store),
        ctx=ctx,
        queue=AdmissionQueue(max_backlog, injector),
        policy=policy,
        registry=registry,
    )
    report = loop.run(arrivals)
    return ServingOutcome(
        platform, ctx, registry, report, loop, arrivals, injector
    )


def replay_serial(
    row_count: int, served: list[tuple[int, Any, Any]]
) -> list[Any]:
    """The oracle: the served specs, serially, in arrival order.

    Fresh platform, identically-built store, no injector, no batching,
    no queue — just one query after another.  Returns the answers in
    the same order as *served*.
    """
    platform = Platform.paper_testbed()
    store = build_item_store(platform, row_count)
    backend = LayoutBackend(platform, store)
    ctx = ExecutionContext(platform)
    return [backend.run(spec, ctx) for __, spec, __ in served]


def identity_mismatches(outcome: ServingOutcome, row_count: int) -> int:
    """How many served answers differ from the serial oracle (0 = pass)."""
    served = outcome.loop.answers_for_replay()
    oracle = replay_serial(row_count, served)
    return sum(
        1
        for (__, __, answer), expected in zip(served, oracle)
        if encode_answer(answer) != encode_answer(expected)
    )


def _latency_stats(outcome: ServingOutcome) -> dict[str, float]:
    """p50/p99 (and ratio) of the served latency distribution."""
    histogram = outcome.registry.histogram("serving.latency_cycles")
    p50 = histogram.percentile(50.0)
    p99 = histogram.percentile(99.0)
    return {
        "served": float(len(histogram.values)),
        "p50_cycles": p50,
        "p99_cycles": p99,
        "tail_ratio": (p99 / p50) if p50 > 0 else 0.0,
    }


def _tenant_latency_summaries(outcome: ServingOutcome) -> dict[str, dict[str, float]]:
    """Per-tenant p50/p95/p99 from the tenant latency histograms."""
    prefix = "serving.latency_cycles.tenant."
    return {
        name[len(prefix):]: {
            key: histogram.summary()[key]
            for key in ("count", "p50", "p95", "p99")
        }
        for name, histogram in outcome.registry.histograms_with_prefix(
            "serving.latency_cycles.tenant"
        ).items()
    }


def _attribution_closed(outcome: ServingOutcome) -> bool:
    """Registry totals must equal the root counters field-for-field."""
    return (
        outcome.registry.totals.snapshot() == outcome.ctx.counters.snapshot()
    )


def _cell_fingerprint(outcome: ServingOutcome) -> list[tuple[Any, ...]]:
    """A run's full observable behaviour, for the determinism gate."""
    record = [
        (
            executed.seq,
            executed.tenant,
            executed.shape,
            executed.unit,
            executed.finish_cycle,
            encode_answer(executed.answer),
        )
        for executed in outcome.report.executed
    ]
    record.extend(
        ("shed", shed.seq, shed.tenant, shed.injected)
        for shed in outcome.report.shed
    )
    record.append(("makespan", outcome.report.makespan_cycles))
    return record


def run_serving_verifier(
    seeds: list[int] | None = None, smoke: bool = False
) -> dict[str, Any]:
    """Run every gate for every seed; returns the BENCH record.

    The record's ``ok`` is the conjunction of all gates across all
    seeds; per-seed detail lands under ``seeds`` so a CI failure says
    *which* gate on *which* seed moved.
    """
    seeds = seeds if seeds is not None else [5, 23, 101]
    row_count = 20_000 if smoke else 60_000
    tenant_count = 4
    horizon = 3_000_000.0 if smoke else 6_000_000.0
    # Per-tenant gap for saturation: combined arrivals far denser than
    # the ~57k-cycle warm device sum.
    saturation_gap = 40_000.0
    per_seed: dict[str, Any] = {}
    all_ok = True
    for seed in seeds:
        tenants = build_tenants(tenant_count, saturation_gap, "poisson", horizon)
        plain_tenants = build_tenants(
            tenant_count, saturation_gap, "poisson", horizon, uniform_priority=True
        )

        # --- Gate 1 + 4 + determinism: batched, bounded, chaos-shed ---
        chaos = serve_once(
            seed, row_count, tenants, horizon, BATCH_16,
            max_backlog=48, overflow_rate=0.05,
        )
        chaos_again = serve_once(
            seed, row_count, tenants, horizon, BATCH_16,
            max_backlog=48, overflow_rate=0.05,
        )
        identity_bad = identity_mismatches(chaos, row_count)
        deterministic = _cell_fingerprint(chaos) == _cell_fingerprint(chaos_again)
        attribution = _attribution_closed(chaos)
        report = chaos.injector.report
        chaos_closed = report.unaccounted == 0 and report.injected > 0

        # --- Gate 2: throughput, same arrivals, serial vs batched ---
        serial = serve_once(
            seed, row_count, plain_tenants, horizon, SERIAL_DISPATCH,
            max_backlog=None,
        )
        batched = serve_once(
            seed, row_count, plain_tenants, horizon, BATCH_16,
            max_backlog=None,
        )
        serial_tput = serial.report.throughput_per_second(serial.platform)
        batched_tput = batched.report.throughput_per_second(batched.platform)
        speedup = batched_tput / serial_tput if serial_tput > 0 else 0.0
        batch_identity_bad = identity_mismatches(batched, row_count)

        # --- Gate 3: tails — bounded queue vs open-loop collapse ---
        bounded = serve_once(
            seed, row_count, plain_tenants, horizon, BATCH_16, max_backlog=32
        )
        bounded_stats = _latency_stats(bounded)
        # The collapse baseline is the *serial, unbounded* server: at
        # ~5x utilization its backlog (and therefore its p99) grows
        # linearly with the horizon, while the admission-controlled
        # queue's tail stays put.
        unbounded_stats = _latency_stats(serial)
        long_tenants = build_tenants(
            tenant_count, saturation_gap, "poisson", horizon * 2,
            uniform_priority=True,
        )
        unbounded_long = serve_once(
            seed, row_count, long_tenants, horizon * 2, SERIAL_DISPATCH,
            max_backlog=None,
        )
        long_stats = _latency_stats(unbounded_long)
        growth = (
            long_stats["p99_cycles"] / unbounded_stats["p99_cycles"]
            if unbounded_stats["p99_cycles"] > 0
            else 0.0
        )

        gates = {
            "byte_identity": identity_bad == 0 and batch_identity_bad == 0,
            "throughput_speedup": speedup >= MIN_BATCH_SPEEDUP,
            "bounded_tail": bounded_stats["tail_ratio"] <= MAX_TAIL_RATIO
            and bounded_stats["tail_ratio"] > 0,
            "unbounded_growth": growth >= MIN_UNBOUNDED_GROWTH,
            "exactly_once_attribution": attribution
            and _attribution_closed(batched),
            "chaos_accounted": chaos_closed,
            "deterministic": deterministic,
        }
        all_ok = all_ok and all(gates.values())
        per_seed[str(seed)] = {
            "gates": gates,
            "identity_mismatches": identity_bad + batch_identity_bad,
            "speedup": speedup,
            "serial_throughput_qps": serial_tput,
            "batched_throughput_qps": batched_tput,
            "serial_units": serial.report.units,
            "batched_units": batched.report.units,
            "batches": batched.report.batches,
            "bounded": bounded_stats,
            "tenant_latency": _tenant_latency_summaries(bounded),
            "unbounded": unbounded_stats,
            "unbounded_2x_horizon": long_stats,
            "shed_bounded": len(bounded.report.shed),
            "shed_chaos": len(chaos.report.shed),
            "chaos_injected": report.injected,
            "chaos_unaccounted": report.unaccounted,
        }
    metrics: dict[str, float] = {}
    tolerances: dict[str, dict[str, Any]] = {}
    for seed_key, cell in per_seed.items():
        metrics[f"speedup.s{seed_key}"] = cell["speedup"]
        tolerances[f"speedup.s{seed_key}"] = {
            "rel": 0.20, "direction": "higher_better",
        }
        metrics[f"tail_ratio.s{seed_key}"] = cell["bounded"]["tail_ratio"]
        tolerances[f"tail_ratio.s{seed_key}"] = {
            "rel": 0.50, "direction": "lower_better",
        }
        metrics[f"served.s{seed_key}"] = cell["bounded"]["served"]
        tolerances[f"served.s{seed_key}"] = {
            "rel": 0.10, "direction": "two_sided",
        }
    return make_bench_record(
        "serving",
        ok=all_ok,
        metrics=metrics,
        tolerances=tolerances,
        smoke=smoke,
        config={
            "row_count": row_count,
            "tenants": tenant_count,
            "horizon_cycles": horizon,
            "per_tenant_gap_cycles": saturation_gap,
            "max_batch": BATCH_16.max_batch,
            "smoke": smoke,
        },
        thresholds={
            "min_batch_speedup": MIN_BATCH_SPEEDUP,
            "max_tail_ratio": MAX_TAIL_RATIO,
            "min_unbounded_growth": MIN_UNBOUNDED_GROWTH,
        },
        seeds=per_seed,
    )
