"""Concurrent multi-tenant serving: arrivals, admission, batch scheduling.

The serving tier puts the storage engine under the load shape the
paper's motivation describes — "millions of users" issuing mixed HTAP
streams concurrently — on the simulated cycle timeline:

* :mod:`repro.serving.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty, diurnal) and the multi-tenant workload generator;
* :mod:`repro.serving.admission` — bounded backlog with priority
  classes and weighted fair queueing, shedding with a typed
  :class:`~repro.errors.AdmissionRejected` (and the
  ``serving.queue-overflow`` chaos site);
* :mod:`repro.serving.batch` — the GPU batch path: K compatible device
  queries share one coalesced PCIe burst, one batched kernel grid, and
  one result copy;
* :mod:`repro.serving.server` — the discrete-event loop tying them
  together with per-query :class:`~repro.execution.CounterScope`
  accounting, write barriers for serial equivalence, and the
  rebalancer cadence trigger;
* :mod:`repro.serving.verifier` — the gates ``python -m repro.serving``
  runs (byte identity, >=2x batched throughput, bounded p99/p50,
  exactly-once attribution).
"""

from repro.serving.admission import SITE_QUEUE_OVERFLOW, AdmissionQueue
from repro.serving.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    QueryArrival,
    TenantSpec,
    WorkloadGenerator,
)
from repro.serving.batch import run_device_batch
from repro.serving.server import (
    BATCH_16,
    SERIAL_DISPATCH,
    BatchPolicy,
    ExecutedQuery,
    LayoutBackend,
    RebalanceTick,
    ServingLoop,
    ServingReport,
    ShardedBackend,
    ShedQuery,
)
from repro.serving.verifier import run_serving_verifier

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TenantSpec",
    "QueryArrival",
    "WorkloadGenerator",
    "AdmissionQueue",
    "SITE_QUEUE_OVERFLOW",
    "run_device_batch",
    "BatchPolicy",
    "SERIAL_DISPATCH",
    "BATCH_16",
    "LayoutBackend",
    "ShardedBackend",
    "ServingLoop",
    "ServingReport",
    "ExecutedQuery",
    "ShedQuery",
    "RebalanceTick",
    "run_serving_verifier",
]
