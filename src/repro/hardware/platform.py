"""The simulated heterogeneous platform: CPU + GPU + memories + link.

:meth:`Platform.paper_testbed` reproduces the calibration of the
paper's footnote 4: an i7-6700HQ host (4 cores / 8 threads @ 2.6 GHz,
32K/256K/6144K caches, 16 GB RAM) and a CUDA capability-5.0 device
(5 SMs x 128 cores, 2 MB L2, 4044 MB global memory) on PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.cache import AnalyticMemoryModel, CacheGeometry, CacheHierarchy
from repro.hardware.cpu import CPUModel
from repro.hardware.disk import DiskModel
from repro.hardware.event import Cycles
from repro.hardware.gpu import GPUModel
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.memory import MemoryKind, MemorySpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["Platform"]

_MiB = 1024 * 1024
_GiB = 1024 * _MiB


@dataclass
class Platform:
    """One simulated machine: models plus live memory spaces.

    The models (:attr:`cpu`, :attr:`gpu`, :attr:`memory_model`,
    :attr:`interconnect`) are immutable cost calculators; the memory
    spaces (:attr:`host_memory`, :attr:`device_memory`, :attr:`disk`)
    are stateful allocators that engines draw fragments from.  A fresh
    platform therefore represents a fresh machine.
    """

    cpu: CPUModel = field(default_factory=CPUModel)
    gpu: GPUModel = field(default_factory=GPUModel)
    memory_model: AnalyticMemoryModel = field(default_factory=AnalyticMemoryModel)
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    disk_model: DiskModel = field(default_factory=DiskModel)
    host_memory: MemorySpace = field(
        default_factory=lambda: MemorySpace("host", MemoryKind.HOST, 16 * _GiB)
    )
    device_memory: MemorySpace = field(
        default_factory=lambda: MemorySpace("device", MemoryKind.DEVICE, 4044 * _MiB)
    )
    disk: MemorySpace = field(
        default_factory=lambda: MemorySpace("disk", MemoryKind.DISK, 512 * _GiB)
    )
    #: The platform-wide fault injector, set by
    #: :meth:`repro.faults.FaultInjector.install`; ``None`` on healthy
    #: machines.  Engines and the re-organizer consult it for their
    #: component-level fault sites (node crash, reorg interruption).
    injector: "FaultInjector | None" = None

    def __post_init__(self) -> None:
        """Attach the device staging manager (``platform.staging``).

        A plain attribute, not a dataclass field: ``dataclasses.replace``
        (how sweeps derive platform variants) builds the new platform
        through ``__init__`` and therefore gets a fresh, cold cache —
        staged state never leaks between sweep points.  Imported lazily
        because the staging package sits above the hardware layer.

        Also attaches the platform's tracer (``platform.tracer``): the
        process-wide default from :func:`repro.obs.tracing` when one is
        active, else ``None`` (tracing off — every instrumentation hook
        is a no-op, the zero-observer-effect contract).  Assign a
        :class:`~repro.obs.Tracer` directly to trace one platform.

        The windowed metrics registry (``platform.metrics``) follows the
        identical pattern via :func:`repro.obs.windowed_metrics`: ``None``
        by default, in which case every time-series emission hook is a
        no-op.
        """
        from repro.obs.timeseries import default_metrics
        from repro.obs.tracer import default_tracer
        from repro.staging.manager import StagingManager

        self.staging = StagingManager(self)
        self.tracer = default_tracer()
        self.metrics = default_metrics()

    @classmethod
    def paper_testbed(
        cls,
        host_capacity: int = 16 * _GiB,
        device_capacity: int = 4044 * _MiB,
    ) -> "Platform":
        """The ICDE'17 testbed, with optionally overridden capacities.

        Overriding capacities is how tests exercise CoGaDB's
        all-or-nothing placement fallback without allocating gigabytes.
        """
        cpu = CPUModel(
            frequency_hz=2.6e9,
            cores=4,
            hardware_threads=8,
            thread_spawn_cycles=100_000.0,
            smt_yield=0.3,
            stream_bandwidth_per_thread=10.0e9,
            stream_bandwidth_aggregate=20.0e9,
        )
        gpu = GPUModel(
            sms=5,
            cores_per_sm=128,
            clock_hz=1.1e9,
            device_bandwidth=80.0e9,
            launch_latency_s=5.0e-6,
            max_threads_per_block=1024,
            host_frequency_hz=cpu.frequency_hz,
        )
        line_bandwidth_cycles = (
            64 / cpu.stream_bandwidth_per_thread * cpu.frequency_hz
        )
        memory_model = AnalyticMemoryModel(
            line=64,
            llc_size=6144 * 1024,
            l1_latency=4.0,
            l2_latency=12.0,
            l3_latency=42.0,
            memory_latency=200.0,
            line_bandwidth_cycles=line_bandwidth_cycles,
            mlp=4.0,
        )
        interconnect = InterconnectModel(
            bandwidth=6.0e9,
            latency_s=10.0e-6,
            host_frequency_hz=cpu.frequency_hz,
        )
        disk_model = DiskModel(host_frequency_hz=cpu.frequency_hz)
        return cls(
            cpu=cpu,
            gpu=gpu,
            memory_model=memory_model,
            interconnect=interconnect,
            disk_model=disk_model,
            host_memory=MemorySpace("host", MemoryKind.HOST, host_capacity),
            device_memory=MemorySpace("device", MemoryKind.DEVICE, device_capacity),
            disk=MemorySpace("disk", MemoryKind.DISK, 512 * _GiB),
        )

    @classmethod
    def modern_testbed(
        cls,
        host_capacity: int = 128 * _GiB,
        device_capacity: int = 80 * _GiB,
    ) -> "Platform":
        """A 2026-class machine for what-if sweeps (ablation A8).

        16 cores / 32 threads at 3.5 GHz over DDR5 (~30 GB/s per
        streaming thread, ~200 GB/s socket), a large L3, an H100-class
        device (~3 TB/s HBM) on an NVLink-class 100 GB/s link, and a
        thread pool instead of thread-per-region (spawn ~2 us).  Used to
        ask how the paper's 2017 conclusions age: which Figure 2
        orderings are architectural, and which were artifacts of
        PCIe-3-era ratios.
        """
        cpu = CPUModel(
            frequency_hz=3.5e9,
            cores=16,
            hardware_threads=32,
            thread_spawn_cycles=7_000.0,  # pooled workers, ~2 us
            smt_yield=0.3,
            stream_bandwidth_per_thread=30.0e9,
            stream_bandwidth_aggregate=200.0e9,
        )
        gpu = GPUModel(
            sms=132,
            cores_per_sm=128,
            clock_hz=1.8e9,
            device_bandwidth=3000.0e9,
            launch_latency_s=3.0e-6,
            max_threads_per_block=1024,
            host_frequency_hz=cpu.frequency_hz,
        )
        line_bandwidth_cycles = 64 / cpu.stream_bandwidth_per_thread * cpu.frequency_hz
        memory_model = AnalyticMemoryModel(
            line=64,
            llc_size=64 * 1024 * 1024,
            l1_latency=4.0,
            l2_latency=14.0,
            l3_latency=50.0,
            memory_latency=280.0,
            line_bandwidth_cycles=line_bandwidth_cycles,
            mlp=8.0,
        )
        interconnect = InterconnectModel(
            bandwidth=100.0e9,  # NVLink-class host link
            latency_s=2.0e-6,
            host_frequency_hz=cpu.frequency_hz,
        )
        disk_model = DiskModel(
            bandwidth=7.0e9, seek_s=20e-6, host_frequency_hz=cpu.frequency_hz
        )  # NVMe
        return cls(
            cpu=cpu,
            gpu=gpu,
            memory_model=memory_model,
            interconnect=interconnect,
            disk_model=disk_model,
            host_memory=MemorySpace("host", MemoryKind.HOST, host_capacity),
            device_memory=MemorySpace("device", MemoryKind.DEVICE, device_capacity),
            disk=MemorySpace("disk", MemoryKind.DISK, 512 * _GiB),
        )

    # ------------------------------------------------------------------
    def make_trace_hierarchy(self) -> CacheHierarchy:
        """A fresh trace-driven cache hierarchy matching the analytic model.

        Used by the validation tests that check the analytic formulas
        against an exact simulation on small inputs.
        """
        model = self.memory_model
        levels = (
            CacheGeometry("L1d", 32 * 1024, model.line, 8, model.l1_latency),
            CacheGeometry("L2", 256 * 1024, model.line, 8, model.l2_latency),
            CacheGeometry("L3", model.llc_size, model.line, 12, model.l3_latency),
        )
        return CacheHierarchy(
            levels,
            memory_latency=model.memory_latency,
            line_bandwidth_cycles=model.line_bandwidth_cycles,
        )

    def seconds(self, cycles: Cycles) -> float:
        """Convert host cycles to wall-clock seconds on this platform."""
        return cycles / self.cpu.frequency_hz

    def space(self, kind: MemoryKind) -> MemorySpace:
        """The live memory space of the given kind."""
        if kind is MemoryKind.HOST:
            return self.host_memory
        if kind is MemoryKind.DEVICE:
            return self.device_memory
        return self.disk
