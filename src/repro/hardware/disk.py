"""Disk cost model for the disk-based engines (PAX, Fractured Mirrors).

Both 2002-era engines in the survey are "designed for disk-based
systems powered by a database buffer manager"; their data-location row
in Table 1 is "Host + Disc".  The model is a rotating disk: a seek+
rotational latency per random page access, plus sequential bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.hardware.event import Cycles, PerfCounters

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Latency + bandwidth of one spindle.

    Attributes
    ----------
    bandwidth:
        Sequential transfer rate in bytes/second.
    seek_s:
        Average seek + rotational latency per random access in seconds.
    host_frequency_hz:
        Host clock used to express costs in host cycles.
    """

    bandwidth: float = 150.0e6
    seek_s: float = 5.0e-3
    host_frequency_hz: float = 2.6e9

    def random_read_cost(
        self, nbytes: int, counters: PerfCounters | None = None
    ) -> Cycles:
        """One random page read: a seek plus the transfer."""
        if nbytes < 0:
            raise StorageError(f"read size must be >= 0, got {nbytes}")
        seconds = self.seek_s + nbytes / self.bandwidth
        cost = seconds * self.host_frequency_hz
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += nbytes
        return cost

    def sequential_read_cost(
        self, nbytes: int, counters: PerfCounters | None = None
    ) -> Cycles:
        """A sequential read: one seek amortized over the whole stream."""
        if nbytes < 0:
            raise StorageError(f"read size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        seconds = self.seek_s + nbytes / self.bandwidth
        cost = seconds * self.host_frequency_hz
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += nbytes
        return cost
