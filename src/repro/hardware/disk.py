"""Disk cost model for the disk-based engines (PAX, Fractured Mirrors).

Both 2002-era engines in the survey are "designed for disk-based
systems powered by a database buffer manager"; their data-location row
in Table 1 is "Host + Disc".  The model is a rotating disk: a seek+
rotational latency per random page access, plus sequential bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.hardware.event import Cycles, PerfCounters

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Latency + bandwidth of one spindle.

    Attributes
    ----------
    bandwidth:
        Sequential transfer rate in bytes/second.
    seek_s:
        Average seek + rotational latency per random access in seconds.
    host_frequency_hz:
        Host clock used to express costs in host cycles.
    """

    bandwidth: float = 150.0e6
    seek_s: float = 5.0e-3
    host_frequency_hz: float = 2.6e9

    def random_read_cost(
        self, nbytes: int, counters: PerfCounters | None = None
    ) -> Cycles:
        """One random page read: a seek plus the transfer."""
        if nbytes < 0:
            raise StorageError(f"read size must be >= 0, got {nbytes}")
        seconds = self.seek_s + nbytes / self.bandwidth
        cost = seconds * self.host_frequency_hz
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += nbytes
        return cost

    def sequential_read_cost(
        self, nbytes: int, counters: PerfCounters | None = None
    ) -> Cycles:
        """A sequential read: one seek amortized over the whole stream."""
        if nbytes < 0:
            raise StorageError(f"read size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        seconds = self.seek_s + nbytes / self.bandwidth
        cost = seconds * self.host_frequency_hz
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += nbytes
        return cost

    def sequential_write_cost(
        self, nbytes: int, counters: PerfCounters | None = None
    ) -> Cycles:
        """A sequential write: one seek amortized over the whole stream.

        The spindle is symmetric — writes stream at the same bandwidth
        as reads — so this mirrors :meth:`sequential_read_cost` but
        tallies ``bytes_written``.  Used by checkpoint images and log
        segment writes.
        """
        if nbytes < 0:
            raise StorageError(f"write size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        seconds = self.seek_s + nbytes / self.bandwidth
        cost = seconds * self.host_frequency_hz
        if counters is not None:
            counters.cycles += cost
            counters.bytes_written += nbytes
        return cost

    def fsync_cost(
        self, nbytes: int, counters: PerfCounters | None = None
    ) -> Cycles:
        """Force *nbytes* of buffered log tail to stable storage.

        One seek (the log head is its own cylinder, but the platter
        still has to come around) plus the streamed payload.  This is
        the price a write-ahead log pays per group-commit flush — the
        reason group commit exists: the seek is paid once per *batch*
        of commits, not once per transaction.
        """
        if nbytes < 0:
            raise StorageError(f"fsync size must be >= 0, got {nbytes}")
        seconds = self.seek_s + nbytes / self.bandwidth
        cost = seconds * self.host_frequency_hz
        if counters is not None:
            counters.cycles += cost
            counters.bytes_written += nbytes
        return cost
