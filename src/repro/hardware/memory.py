"""Simulated memory spaces (host, device, disk).

A :class:`MemorySpace` is a byte-addressed address space with a
capacity limit and an allocator.  It carries **no payload bytes** — the
data plane lives in fragment objects as numpy arrays; the memory space
exists so that (a) linearizations yield *real addresses* the cache
simulator can trace, (b) device capacity limits are enforced (CoGaDB's
all-or-nothing placement, GPUTx's device residency), and (c) the
taxonomy's *data location* axis is observable from where an engine's
fragments are allocated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CapacityError, StorageError

__all__ = ["MemoryKind", "Allocation", "MemorySpace"]


class MemoryKind(enum.Enum):
    """Which physical medium a memory space models."""

    HOST = "host"
    DEVICE = "device"
    DISK = "disk"

    @property
    def is_host(self) -> bool:
        """True for main (host) memory."""
        return self is MemoryKind.HOST


@dataclass(frozen=True)
class Allocation:
    """A contiguous allocated region inside a memory space.

    Attributes
    ----------
    space:
        Owning memory space.
    base:
        First byte address of the region.
    size:
        Region length in bytes.
    label:
        Free-form tag (e.g. ``"item.price"``) used in reports.
    """

    space: "MemorySpace"
    base: int
    size: int
    label: str

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.base + self.size

    def address_of(self, offset: int) -> int:
        """Absolute address of byte *offset* inside the region."""
        if not 0 <= offset < self.size:
            raise StorageError(
                f"offset {offset} outside allocation {self.label!r} of {self.size} bytes"
            )
        return self.base + offset

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}@{self.space.name}[{self.base}:{self.end}]"


class MemorySpace:
    """A capacity-limited, byte-addressed address space.

    Allocation is a bump allocator with explicit free: freed bytes are
    returned to the capacity budget but addresses are never reused, so
    every allocation in a simulation run has a unique address range —
    convenient for cache tracing, and adequate because fragmentation is
    not a phenomenon this reproduction studies.
    """

    def __init__(self, name: str, kind: MemoryKind, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self._cursor = 0
        self._used = 0
        self._live: dict[int, Allocation] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size: int, label: str = "") -> Allocation:
        """Reserve *size* bytes; raises :class:`CapacityError` when full.

        Zero-size allocations are allowed (an empty fragment still has an
        address) and consume one byte of address space but no capacity.
        """
        if size < 0:
            raise StorageError(f"allocation size must be >= 0, got {size}")
        if self._used + size > self.capacity:
            raise CapacityError(
                f"{self.name}: cannot allocate {size} bytes "
                f"({self.available} of {self.capacity} available)"
            )
        allocation = Allocation(self, self._cursor, size, label)
        self._cursor += max(size, 1)
        self._used += size
        self._live[allocation.base] = allocation
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release a live allocation back to the capacity budget."""
        live = self._live.pop(allocation.base, None)
        if live is None or live is not allocation:
            raise StorageError(
                f"{self.name}: allocation {allocation.label!r} is not live"
            )
        self._used -= allocation.size

    def try_allocate(self, size: int, label: str = "") -> Allocation | None:
        """Like :meth:`allocate`, but returns None when capacity is short.

        The staging manager uses this to reserve replica slots without
        turning device pressure into control flow by exception — a
        failed reservation means "stream instead", not an error.
        """
        if size >= 0 and self._used + size > self.capacity:
            return None
        return self.allocate(size, label)

    def fits(self, size: int) -> bool:
        """Whether *size* bytes could currently be allocated."""
        return self._used + size <= self.capacity

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def available(self) -> int:
        """Bytes still allocatable."""
        return self.capacity - self._used

    @property
    def live_allocations(self) -> tuple[Allocation, ...]:
        """All currently live allocations (insertion order)."""
        return tuple(self._live.values())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.kind.value}, {self._used}/{self.capacity}B)"
