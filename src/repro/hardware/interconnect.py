"""PCIe interconnect model: the host<->device transfer cost.

Challenge (a.i) of the paper — "expensive data transfer to and from the
device memory" — reduces to this model.  Figure 2's panels 3 and 4
differ only in whether this cost is charged, and that difference flips
which platform wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.hardware.event import Cycles, PerfCounters

__all__ = ["InterconnectModel"]


@dataclass(frozen=True)
class InterconnectModel:
    """Latency + bandwidth model of the host<->device link.

    Attributes
    ----------
    bandwidth:
        Effective transfer bandwidth in bytes/second (PCIe 3.0 on a
        mobile platform delivers well under its nominal rate; 6 GB/s is
        a representative effective figure).
    latency_s:
        Per-transfer setup latency in seconds (driver + DMA setup).
    host_frequency_hz:
        Host clock used to express costs in host cycles.
    """

    bandwidth: float = 6.0e9
    latency_s: float = 10.0e-6
    host_frequency_hz: float = 2.6e9

    def transfer_seconds(self, nbytes: int) -> float:
        """Wall time of moving *nbytes* across the link once."""
        if nbytes < 0:
            raise ExecutionError(f"transfer size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth

    def transfer_cost(self, nbytes: int, counters: PerfCounters | None = None) -> Cycles:
        """Host-cycle cost of one host->device (or device->host) copy."""
        cost = self.transfer_seconds(nbytes) * self.host_frequency_hz
        if counters is not None and nbytes > 0:
            counters.cycles += cost
            counters.bytes_transferred += nbytes
        return cost
