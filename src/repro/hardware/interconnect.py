"""PCIe interconnect model: the host<->device transfer cost.

Challenge (a.i) of the paper — "expensive data transfer to and from the
device memory" — reduces to this model.  Figure 2's panels 3 and 4
differ only in whether this cost is charged, and that difference flips
which platform wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ExecutionError
from repro.hardware.event import Cycles, PerfCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["InterconnectModel"]

#: Fault-site name checked on every accounted transfer (kept as a
#: literal so the hardware layer never imports the faults package at
#: runtime; must match ``repro.faults.injector.SITE_PCIE_TRANSFER``).
_SITE_PCIE_TRANSFER = "pcie.transfer"


@dataclass(frozen=True)
class InterconnectModel:
    """Latency + bandwidth model of the host<->device link.

    Attributes
    ----------
    bandwidth:
        Effective transfer bandwidth in bytes/second (PCIe 3.0 on a
        mobile platform delivers well under its nominal rate; 6 GB/s is
        a representative effective figure).
    latency_s:
        Per-transfer setup latency in seconds (driver + DMA setup).
    host_frequency_hz:
        Host clock used to express costs in host cycles.
    injector:
        Optional fault injector (installed by
        :meth:`repro.faults.FaultInjector.install`); when armed, an
        accounted transfer may fail with
        :class:`~repro.errors.TransferError` *after* its cycles are
        charged — a broken transfer still burns wire time.
    """

    bandwidth: float = 6.0e9
    latency_s: float = 10.0e-6
    host_frequency_hz: float = 2.6e9
    injector: "FaultInjector | None" = field(default=None, compare=False)

    def transfer_seconds(self, nbytes: int) -> float:
        """Wall time of moving *nbytes* across the link once."""
        if nbytes < 0:
            raise ExecutionError(f"transfer size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth

    def burst_seconds(self, sizes: "Sequence[int]") -> float:
        """Wall time of a coalesced same-direction DMA burst.

        The burst pays one setup latency for all its payloads, so
        ``burst_seconds(sizes) == transfer_seconds(sum(sizes))`` — the
        coalescing identity the transfer scheduler's cost algebra (and
        its property tests) rest on: N payloads cost N bandwidth terms
        plus a single latency term, exactly.
        """
        return self.transfer_seconds(sum(sizes))

    def transfer_cost(self, nbytes: int, counters: PerfCounters | None = None) -> Cycles:
        """Host-cycle cost of one host->device (or device->host) copy.

        Fault injection only applies to *accounted* transfers
        (``counters`` given, ``nbytes > 0``): cost-model *predictions*
        (HyPE, the placement advisor) call this without counters and
        must stay side-effect-free.
        """
        cost = self.transfer_seconds(nbytes) * self.host_frequency_hz
        if counters is not None and nbytes > 0:
            counters.cycles += cost
            counters.bytes_transferred += nbytes
            if self.injector is not None:
                self.injector.check(_SITE_PCIE_TRANSFER, counters)
        return cost
