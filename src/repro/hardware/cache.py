"""Cache hierarchy simulation: trace-driven and analytic.

Figure 2's storage-model effects are cache-residency effects, so this
module is the heart of the hardware substitution.  It provides two
views of the same machine:

* :class:`CacheHierarchy` — a trace-driven, set-associative LRU
  simulator with a next-line stream prefetcher.  Exact, but too slow for
  the paper's 85-million-row sweeps in pure Python.
* :class:`AnalyticMemoryModel` — closed-form costs for the three access
  patterns the paper's operators generate (sequential streams, strided
  scans, random point accesses).  Fast enough for the full sweeps.

The test suite drives both over identical access patterns on small
inputs and asserts they agree within a tolerance, which is what licenses
using the analytic model for the big benchmark sweeps (DESIGN.md §6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.hardware.event import Cycles, PerfCounters

__all__ = [
    "CacheGeometry",
    "CacheLevel",
    "CacheHierarchy",
    "AnalyticMemoryModel",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Static description of one cache level."""

    name: str
    size: int  # total bytes
    line: int  # line size in bytes
    ways: int  # associativity
    latency: Cycles  # hit latency in cycles

    def __post_init__(self) -> None:
        if self.size % (self.line * self.ways) != 0:
            raise StorageError(
                f"{self.name}: size {self.size} not divisible by "
                f"line*ways = {self.line * self.ways}"
            )

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.size // (self.line * self.ways)


class CacheLevel:
    """One set-associative cache level with LRU replacement."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # Per set: list of tags in LRU order (front = least recent).
        self._sets: list[list[int]] = [[] for _ in range(geometry.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line_address: int) -> bool:
        """Touch one cache line; returns True on hit.

        *line_address* is the address divided by the line size (a line
        number, not a byte address), so hierarchies with equal line
        sizes can share traces.
        """
        geometry = self.geometry
        set_index = line_address % geometry.sets
        tag = line_address // geometry.sets
        lru = self._sets[set_index]
        if tag in lru:
            lru.remove(tag)
            lru.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        lru.append(tag)
        if len(lru) > geometry.ways:
            lru.pop(0)
        return False

    def flush(self) -> None:
        """Drop all cached lines (keeps hit/miss counts)."""
        for lru in self._sets:
            lru.clear()


class CacheHierarchy:
    """A trace-driven multi-level cache with a stream prefetcher.

    ``access(address, size)`` charges the cycle cost of touching
    ``size`` bytes at ``address``: each covered line is looked up level
    by level; the first hit level's latency is charged, or the memory
    latency on a full miss.  Consecutive-line streams are detected per
    access stream and the prefetcher converts subsequent misses in the
    stream into bandwidth-priced hits (modelling the hardware stream
    prefetcher hiding latency on sequential scans).
    """

    def __init__(
        self,
        levels: tuple[CacheGeometry, ...],
        memory_latency: Cycles,
        line_bandwidth_cycles: Cycles,
        prefetch_window: int = 4,
    ) -> None:
        if not levels:
            raise StorageError("a cache hierarchy needs at least one level")
        line = levels[0].line
        if any(level.line != line for level in levels):
            raise StorageError("all cache levels must share one line size")
        self.line = line
        self.levels = tuple(CacheLevel(geometry) for geometry in levels)
        self.memory_latency = memory_latency
        self.line_bandwidth_cycles = line_bandwidth_cycles
        self.prefetch_window = prefetch_window
        self._last_line: int | None = None
        self._stream_run = 0

    # ------------------------------------------------------------------
    def access(self, address: int, size: int, counters: PerfCounters) -> Cycles:
        """Charge the cost of touching ``[address, address+size)``."""
        if size <= 0:
            raise StorageError(f"access size must be positive, got {size}")
        first = address // self.line
        last = (address + size - 1) // self.line
        cost: Cycles = 0.0
        for line_address in range(first, last + 1):
            cost += self._access_line(line_address, counters)
        counters.bytes_read += size
        return cost

    def _access_line(self, line_address: int, counters: PerfCounters) -> Cycles:
        sequential = (
            self._last_line is not None and line_address == self._last_line + 1
        )
        if sequential:
            self._stream_run += 1
        elif self._last_line is not None and line_address == self._last_line:
            pass  # same line: keep the stream alive
        else:
            self._stream_run = 0
        self._last_line = line_address

        for depth, level in enumerate(self.levels):
            if level.access(line_address):
                self._count(depth, hit=True, counters=counters)
                cost = level.geometry.latency
                counters.cycles += cost
                return cost
            self._count(depth, hit=False, counters=counters)
        # Full miss: memory. A live stream (>= prefetch_window consecutive
        # lines) is served at bandwidth price — the prefetcher has hidden
        # the latency behind the previous lines.
        if self._stream_run >= self.prefetch_window:
            cost = self.line_bandwidth_cycles
        else:
            cost = self.memory_latency
        counters.cycles += cost
        return cost

    def _count(self, depth: int, hit: bool, counters: PerfCounters) -> None:
        if depth == 0:
            counters.l1_hits += hit
            counters.l1_misses += not hit
        elif depth == 1:
            counters.l2_hits += hit
            counters.l2_misses += not hit
        else:
            counters.l3_hits += hit
            counters.l3_misses += not hit

    def flush(self) -> None:
        """Empty every level and forget stream state."""
        for level in self.levels:
            level.flush()
        self._last_line = None
        self._stream_run = 0


@dataclass(frozen=True)
class AnalyticMemoryModel:
    """Closed-form memory costs for the paper's three access shapes.

    Parameters mirror the trace-driven hierarchy: line size, last-level
    cache (LLC) capacity, per-level latencies, memory latency, and the
    per-line bandwidth price for prefetched streams.  ``mlp`` is the
    memory-level parallelism an out-of-order core extracts from
    independent misses (latency is divided by it for strided/random
    patterns with many outstanding accesses).

    The TLB term models why Figure 2's point-query panels still grow
    slowly with table size: once the footprint exceeds the second-level
    TLB's coverage, every random access pays a page walk whose cost
    grows with the page-table working set.
    """

    line: int = 64
    llc_size: int = 6 * 1024 * 1024
    l1_latency: Cycles = 4.0
    l2_latency: Cycles = 12.0
    l3_latency: Cycles = 42.0
    memory_latency: Cycles = 200.0
    line_bandwidth_cycles: Cycles = 16.6  # 64 B / ~10 GB/s at 2.6 GHz
    mlp: float = 4.0
    stlb_coverage: int = 1536 * 4096  # 1536 entries x 4 KiB pages
    page_walk_base: Cycles = 30.0

    # ------------------------------------------------------------------
    # Access shapes
    # ------------------------------------------------------------------
    def sequential(self, nbytes: int, counters: PerfCounters | None = None) -> Cycles:
        """Streaming over *nbytes* of contiguous memory (prefetched).

        Cost is bandwidth-bound: one ``line_bandwidth_cycles`` per line,
        plus a short latency ramp for the first lines before the stream
        prefetcher locks on.
        """
        if nbytes <= 0:
            return 0.0
        lines = math.ceil(nbytes / self.line)
        ramp_lines = min(lines, 4)
        steady_lines = lines - ramp_lines
        cost = ramp_lines * self.memory_latency / self.mlp
        cost += steady_lines * self.line_bandwidth_cycles
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += nbytes
            counters.l1_misses += lines
        return cost

    def strided(
        self,
        count: int,
        stride: int,
        touched: int,
        footprint: int,
        counters: PerfCounters | None = None,
    ) -> Cycles:
        """*count* accesses of *touched* bytes each, *stride* bytes apart.

        This is the NSM full-table scan reading one field per record:
        the hardware still pulls whole lines, so the effective traffic
        is one line (or more) per record once the stride exceeds the
        line size.  For sub-line strides the pattern degenerates to a
        sequential stream.
        """
        if count <= 0:
            return 0.0
        if stride <= self.line:
            return self.sequential(count * stride, counters)
        lines_per_access = self._span_lines(touched)
        # Strided streams with constant stride are still prefetchable by
        # modern stream prefetchers, but every line is a distinct memory
        # line: traffic = count * lines. Latency is partially hidden.
        miss_fraction = self._capacity_miss_fraction(footprint)
        per_line = (
            miss_fraction * max(self.line_bandwidth_cycles, self.memory_latency / self.mlp)
            + (1.0 - miss_fraction) * self.l3_latency
        )
        cost = count * lines_per_access * per_line
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += count * lines_per_access * self.line
            counters.l1_misses += count * lines_per_access
            counters.l3_misses += int(count * lines_per_access * miss_fraction)
        return cost

    def random(
        self,
        count: int,
        touched: int,
        footprint: int,
        counters: PerfCounters | None = None,
    ) -> Cycles:
        """*count* point accesses of *touched* bytes at random positions.

        Each access pays the full miss chain with probability set by the
        footprint/LLC ratio, plus a TLB page-walk term once the
        footprint exceeds second-level TLB coverage.
        """
        if count <= 0:
            return 0.0
        lines_per_access = self._span_lines(touched)
        miss_fraction = self._capacity_miss_fraction(footprint)
        per_line = (
            miss_fraction * self.memory_latency / min(self.mlp, lines_per_access + 1.0)
            + (1.0 - miss_fraction) * self.l3_latency
        )
        walk = self.page_walk_cost(footprint)
        cost = count * (lines_per_access * per_line + walk)
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += count * lines_per_access * self.line
            counters.l1_misses += count * lines_per_access
            counters.l3_misses += int(count * lines_per_access * miss_fraction)
            counters.tlb_misses += count if footprint > self.stlb_coverage else 0
        return cost

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def page_walk_cost(self, footprint: int) -> Cycles:
        """Average page-walk cycles per random access at *footprint*.

        Zero while the footprint fits the STLB; beyond that the walk
        cost grows with the logarithm of the page count, modelling the
        shrinking cache-residency of page-table entries.
        """
        if footprint <= self.stlb_coverage:
            return 0.0
        pages = footprint / 4096.0
        return self.page_walk_base * (1.0 + 0.15 * math.log2(pages))

    def _capacity_miss_fraction(self, footprint: int) -> float:
        """Probability that a random line of *footprint* is not LLC-resident."""
        if footprint <= 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - self.llc_size / footprint))

    def _span_lines(self, touched: int) -> int:
        """Average cache lines covered by *touched* bytes at a random offset.

        A ``touched``-byte object at a uniformly random alignment spans
        ``ceil(touched/line)`` lines plus an extra straddle line with
        probability ``(touched - 1) % line / line``; we round to the
        expected value to keep the model closed-form.
        """
        if touched <= 0:
            return 0
        base = math.ceil(touched / self.line)
        straddle = ((touched - 1) % self.line) / self.line
        return max(1, round(base + straddle - 0.5) or 1)
