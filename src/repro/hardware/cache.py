"""Cache hierarchy simulation: trace-driven and analytic.

Figure 2's storage-model effects are cache-residency effects, so this
module is the heart of the hardware substitution.  It provides two
views of the same machine:

* :class:`CacheHierarchy` — a trace-driven, set-associative LRU
  simulator with a next-line stream prefetcher.  Exact; the batched
  entry point :meth:`CacheHierarchy.access_batch` vectorizes trace
  expansion, stream detection and the streaming-miss common case with
  numpy, which is what makes paper-scale validation traces tractable
  in pure Python (docs/PERFORMANCE.md).
* :class:`AnalyticMemoryModel` — closed-form costs for the three access
  patterns the paper's operators generate (sequential streams, strided
  scans, random point accesses).  Fast enough for the full sweeps.

The test suite drives both over identical access patterns and asserts
they agree within a tolerance, which is what licenses using the
analytic model for the big benchmark sweeps (DESIGN.md §6); the batch
path is additionally pinned byte-identical to the scalar path in
``tests/hardware/test_batch_trace.py``.

Size contract (shared with :class:`AnalyticMemoryModel`): zero-byte
accesses cost nothing and return ``0.0``; negative sizes are caller
bugs and raise :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import StorageError
from repro.hardware.event import Cycles, PerfCounters

__all__ = [
    "CacheGeometry",
    "CacheLevel",
    "CacheHierarchy",
    "AnalyticMemoryModel",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Static description of one cache level."""

    name: str
    size: int  # total bytes
    line: int  # line size in bytes
    ways: int  # associativity
    latency: Cycles  # hit latency in cycles

    def __post_init__(self) -> None:
        if self.size % (self.line * self.ways) != 0:
            raise StorageError(
                f"{self.name}: size {self.size} not divisible by "
                f"line*ways = {self.line * self.ways}"
            )

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.size // (self.line * self.ways)


class CacheLevel:
    """One set-associative cache level with LRU replacement.

    Each set is an :class:`~collections.OrderedDict` keyed by tag
    (front = least recent), so a touch is O(1) ``move_to_end`` instead
    of the O(ways) ``list.remove`` scan a list-based LRU pays.  A
    level-wide ``resident`` set of line numbers mirrors the per-set
    state so the batched trace path can prove "none of these lines can
    hit" without walking the sets.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # Per set: tag -> None in LRU order (front = least recent).
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(geometry.sets)
        ]
        # All resident line numbers (tag * sets + set_index), level-wide.
        self._resident: set[int] = set()
        self.hits = 0
        self.misses = 0

    def access(self, line_address: int) -> bool:
        """Touch one cache line; returns True on hit.

        *line_address* is the address divided by the line size (a line
        number, not a byte address), so hierarchies with equal line
        sizes can share traces.
        """
        geometry = self.geometry
        sets = geometry.sets
        set_index = line_address % sets
        tag = line_address // sets
        lru = self._sets[set_index]
        if tag in lru:
            lru.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        lru[tag] = None
        self._resident.add(line_address)
        if len(lru) > geometry.ways:
            evicted, __ = lru.popitem(last=False)
            self._resident.discard(evicted * sets + set_index)
        return False

    def resident_none(self, lines: set[int]) -> bool:
        """True when no line in *lines* is currently cached here."""
        return self._resident.isdisjoint(lines)

    def install_run(self, line_addresses: np.ndarray) -> None:
        """Bulk-install distinct, non-resident lines (certain misses).

        The caller guarantees every line is absent from this level and
        appears once; each install then behaves exactly like a scalar
        miss (append to the set's MRU end, evict the LRU tag past the
        associativity limit), so the final LRU state is identical to
        replaying the run through :meth:`access` — but sets that absorb
        runs longer than their associativity are rebuilt from the run's
        tail in O(ways) instead of O(run length).
        """
        sets_count = self.geometry.sets
        ways = self.geometry.ways
        set_index = line_addresses % sets_count
        tags = line_addresses // sets_count
        # Narrow the grouping key: numpy's stable argsort radix-sorts
        # small unsigned ints in one or two passes, versus a comparison
        # sort on the original int64 line numbers.
        if sets_count <= 1 << 8:
            sort_key = set_index.astype(np.uint8)
        elif sets_count <= 1 << 16:
            sort_key = set_index.astype(np.uint16)
        else:
            sort_key = set_index
        order = np.argsort(sort_key, kind="stable")
        sorted_sets = set_index[order]
        sorted_tags = tags[order]
        boundaries = np.flatnonzero(sorted_sets[1:] != sorted_sets[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [sorted_sets.size]))
        # Replaying distinct misses leaves (existing + new)[-ways:] in
        # each set; only each run's tail can survive, so the evicted
        # head is never materialized.  All tails are gathered with one
        # ragged-slice index so the resident mirror updates in a single
        # C-level set.update instead of one add() per line.
        tail_starts = np.maximum(starts, stops - ways)
        lengths = stops - tail_starts
        group_offsets = np.cumsum(lengths) - lengths
        flat = (
            np.arange(int(lengths.sum()), dtype=np.int64)
            - np.repeat(group_offsets, lengths)
            + np.repeat(tail_starts, lengths)
        )
        tail_tags = sorted_tags[flat]
        set_values = sorted_sets[tail_starts]
        tail_lines = tail_tags * sets_count + np.repeat(set_values, lengths)
        resident = self._resident
        all_tags = tail_tags.tolist()
        group_starts = group_offsets.tolist()
        group_lengths = lengths.tolist()
        for group, target in enumerate(set_values.tolist()):
            lru = self._sets[target]
            begin = group_starts[group]
            tail = all_tags[begin : begin + group_lengths[group]]
            overflow = len(lru) + len(tail) - ways
            for _ in range(overflow if overflow > 0 else 0):
                old_tag, __ = lru.popitem(last=False)
                resident.discard(old_tag * sets_count + target)
            for tag in tail:
                lru[tag] = None
        resident.update(tail_lines.tolist())
        self.misses += int(line_addresses.size)

    def flush(self) -> None:
        """Drop all cached lines (keeps hit/miss counts)."""
        for lru in self._sets:
            lru.clear()
        self._resident.clear()


class CacheHierarchy:
    """A trace-driven multi-level cache with a stream prefetcher.

    ``access(address, size)`` charges the cycle cost of touching
    ``size`` bytes at ``address``: each covered line is looked up level
    by level; the first hit level's latency is charged, or the memory
    latency on a full miss.  Consecutive-line streams are detected per
    access stream and the prefetcher converts subsequent misses in the
    stream into bandwidth-priced hits (modelling the hardware stream
    prefetcher hiding latency on sequential scans).

    ``access_batch(addresses, sizes)`` replays a whole trace in one
    call with identical semantics and byte-identical counters — see
    :meth:`access_batch`.
    """

    def __init__(
        self,
        levels: tuple[CacheGeometry, ...],
        memory_latency: Cycles,
        line_bandwidth_cycles: Cycles,
        prefetch_window: int = 4,
    ) -> None:
        if not levels:
            raise StorageError("a cache hierarchy needs at least one level")
        line = levels[0].line
        if any(level.line != line for level in levels):
            raise StorageError("all cache levels must share one line size")
        self.line = line
        self.levels = tuple(CacheLevel(geometry) for geometry in levels)
        self.memory_latency = memory_latency
        self.line_bandwidth_cycles = line_bandwidth_cycles
        self.prefetch_window = prefetch_window
        self._last_line: int | None = None
        self._stream_run = 0

    # ------------------------------------------------------------------
    def access(self, address: int, size: int, counters: PerfCounters) -> Cycles:
        """Charge the cost of touching ``[address, address+size)``.

        A zero-byte access touches nothing and returns ``0.0``; a
        negative size raises :class:`~repro.errors.StorageError` (the
        contract shared with :class:`AnalyticMemoryModel`).
        """
        if size < 0:
            raise StorageError(f"access size must be non-negative, got {size}")
        if size == 0:
            return 0.0
        first = address // self.line
        last = (address + size - 1) // self.line
        cost: Cycles = 0.0
        for line_address in range(first, last + 1):
            cost += self._access_line(line_address, counters)
        counters.bytes_read += size
        return cost

    def access_batch(
        self,
        addresses: np.ndarray,
        sizes: np.ndarray,
        counters: PerfCounters,
    ) -> Cycles:
        """Replay a whole (addresses, sizes) trace in one call.

        Semantically identical to looping :meth:`access` over the pairs
        — every counter (per-level hits/misses, cycles, bytes) and the
        final LRU/stream state are byte-identical, which
        ``tests/hardware/test_batch_trace.py`` pins — but the trace is
        processed in bulk:

        * address → line-number expansion and consecutive-duplicate
          collapsing are numpy operations;
        * stream/prefetch detection runs once over the collapsed line
          sequence via ``np.diff`` instead of per line;
        * same-line re-touches (sub-line sequential scans) are charged
          as the guaranteed L1 hits they are, without LRU lookups;
        * an ascending run of lines absent from every level — the cold
          streaming scan that dominates benchmark traces — is priced
          entirely in numpy and bulk-installed per set, so only the
          (typically small) irregular residue walks the per-set LRU.

        Cycle accumulation uses ``np.cumsum`` (strict left-to-right
        accumulation) seeded with the counter's current value, so even
        the floating-point rounding matches the scalar loop bit for bit.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if addresses.shape != sizes.shape or addresses.ndim != 1:
            raise StorageError(
                f"addresses {addresses.shape} and sizes {sizes.shape} must be "
                "matching 1-D arrays"
            )
        if addresses.size and int(sizes.min()) < 0:
            raise StorageError(
                f"access sizes must be non-negative, got {int(sizes.min())}"
            )
        total_bytes = int(sizes.sum()) if sizes.size else 0
        positive = sizes > 0
        if not bool(positive.all()):
            addresses = addresses[positive]
            sizes = sizes[positive]
        if addresses.size == 0:
            return 0.0

        # Expand byte ranges to the per-line trace, in access order.
        # Sub-line accesses (the common operator shape) need no
        # expansion at all: the trace is the first-line array itself.
        first = addresses // self.line
        last = (addresses + sizes - 1) // self.line
        if bool((first == last).all()):
            trace = first
        else:
            counts = last - first + 1
            starts = np.cumsum(counts) - counts
            trace = (
                np.arange(int(counts.sum()), dtype=np.int64)
                - np.repeat(starts, counts)
                + np.repeat(first, counts)
            )
        total_lines = int(trace.size)

        # Collapse consecutive duplicates: a re-touch of the line just
        # accessed is a guaranteed L1 hit (the line is MRU everywhere it
        # was installed) and leaves the stream run unchanged.  When the
        # trace has no duplicates the collapse is the identity and the
        # cost vector can be addressed by slice instead of index lists.
        l1 = self.levels[0]
        costs = np.empty(total_lines, dtype=np.float64)
        keep_positions: np.ndarray | None = None
        collapsed = trace
        repeat_hits = 0
        if total_lines > 1:
            keep = np.empty(total_lines, dtype=bool)
            keep[0] = True
            np.not_equal(trace[1:], trace[:-1], out=keep[1:])
            if not bool(keep.all()):
                keep_positions = np.flatnonzero(keep)
                collapsed = trace[keep_positions]
                repeat_hits = total_lines - int(collapsed.size)
                costs[~keep] = l1.geometry.latency

        # A leading repeat of the previous access's last line is the
        # same guaranteed L1 hit across the batch boundary.
        start_index = 0
        if self._last_line is not None and int(collapsed[0]) == self._last_line:
            costs[0 if keep_positions is None else keep_positions[0]] = (
                l1.geometry.latency
            )
            repeat_hits += 1
            start_index = 1
        if repeat_hits:
            l1.hits += repeat_hits
            self._count_bulk(0, repeat_hits, 0, counters)

        work = collapsed[start_index:]
        if work.size:
            if keep_positions is None:
                vector_index: Any = slice(start_index, total_lines)
                scalar_positions: Any = range(start_index, total_lines)
            else:
                positions = keep_positions[start_index:]
                vector_index = positions
                scalar_positions = positions.tolist()
            ascending = work.size == 1 or bool(np.all(np.diff(work) > 0))
            untouched = ascending
            if ascending:
                lines: set[int] | None = None  # built only if a level is warm
                for level in self.levels:
                    if not level._resident:
                        continue
                    if lines is None:
                        lines = set(work.tolist())
                    if not level.resident_none(lines):
                        untouched = False
                        break
            if untouched:
                self._batch_miss_run(work, vector_index, costs, counters)
            else:
                self._batch_residue(work, scalar_positions, costs, counters)

        # Left-to-right accumulation seeded with the running total: the
        # exact float additions the scalar per-line loop performs.
        accumulator = np.empty(total_lines + 1, dtype=np.float64)
        accumulator[0] = counters.cycles
        accumulator[1:] = costs
        np.cumsum(accumulator, out=accumulator)
        before = counters.cycles
        counters.cycles = float(accumulator[-1])
        counters.bytes_read += total_bytes
        return counters.cycles - before

    def _batch_miss_run(
        self,
        work: np.ndarray,
        vector_index: "slice | np.ndarray",
        costs: np.ndarray,
        counters: PerfCounters,
    ) -> None:
        """Price an ascending run of lines absent from every level.

        Each line misses the full hierarchy, so the only question per
        line is its stream run: prefetched lines pay the bandwidth
        price, the rest the memory latency.  Runs are recovered as a
        vectorized "distance since the last non-sequential step" via
        ``np.maximum.accumulate`` over the reset positions.
        """
        count = int(work.size)
        sequential = np.empty(count, dtype=bool)
        sequential[0] = (
            self._last_line is not None and int(work[0]) == self._last_line + 1
        )
        if count > 1:
            np.equal(np.diff(work), 1, out=sequential[1:])
        index = np.arange(count, dtype=np.int64)
        last_reset = np.maximum.accumulate(
            np.where(sequential, np.int64(-1), index)
        )
        runs = np.where(
            last_reset >= 0,
            index - last_reset,
            index + 1 + self._stream_run,
        )
        costs[vector_index] = np.where(
            runs >= self.prefetch_window,
            self.line_bandwidth_cycles,
            self.memory_latency,
        )
        for depth, level in enumerate(self.levels):
            level.install_run(work)
            self._count_bulk(depth, 0, count, counters)
        self._last_line = int(work[-1])
        self._stream_run = int(runs[-1])

    def _batch_residue(
        self,
        work: np.ndarray,
        scalar_positions: "range | list[int]",
        costs: np.ndarray,
        counters: PerfCounters,
    ) -> None:
        """Exact per-line replay for the irregular part of a batch.

        Mirrors :meth:`_access_line` line by line (the collapsed trace
        contains no same-line repeats, so the "same line" stream branch
        cannot trigger), with the per-set LRU dictionaries bound to
        locals and the counter writes batched at the end.
        """
        levels = self.levels
        level_state = [
            (level, level.geometry.sets, level.geometry.ways, level._sets)
            for level in levels
        ]
        hit_tally = [0] * len(levels)
        miss_tally = [0] * len(levels)
        last_line = self._last_line
        stream_run = self._stream_run
        window = self.prefetch_window
        bandwidth = self.line_bandwidth_cycles
        latency = self.memory_latency
        for position, line in zip(scalar_positions, work.tolist()):
            if last_line is not None and line == last_line + 1:
                stream_run += 1
            else:
                stream_run = 0
            last_line = line
            cost = None
            for depth, (level, sets, ways, lrus) in enumerate(level_state):
                tag, set_index = divmod(line, sets)
                lru = lrus[set_index]
                if tag in lru:
                    lru.move_to_end(tag)
                    hit_tally[depth] += 1
                    cost = level.geometry.latency
                    break
                miss_tally[depth] += 1
                lru[tag] = None
                level._resident.add(line)
                if len(lru) > ways:
                    evicted, __ = lru.popitem(last=False)
                    level._resident.discard(evicted * sets + set_index)
            if cost is None:
                cost = bandwidth if stream_run >= window else latency
            costs[position] = cost
        for depth, level in enumerate(levels):
            level.hits += hit_tally[depth]
            level.misses += miss_tally[depth]
            self._count_bulk(depth, hit_tally[depth], miss_tally[depth], counters)
        self._last_line = last_line
        self._stream_run = stream_run

    def _access_line(self, line_address: int, counters: PerfCounters) -> Cycles:
        sequential = (
            self._last_line is not None and line_address == self._last_line + 1
        )
        if sequential:
            self._stream_run += 1
        elif self._last_line is not None and line_address == self._last_line:
            pass  # same line: keep the stream alive
        else:
            self._stream_run = 0
        self._last_line = line_address

        for depth, level in enumerate(self.levels):
            if level.access(line_address):
                self._count(depth, hit=True, counters=counters)
                cost = level.geometry.latency
                counters.cycles += cost
                return cost
            self._count(depth, hit=False, counters=counters)
        # Full miss: memory. A live stream (>= prefetch_window consecutive
        # lines) is served at bandwidth price — the prefetcher has hidden
        # the latency behind the previous lines.
        if self._stream_run >= self.prefetch_window:
            cost = self.line_bandwidth_cycles
        else:
            cost = self.memory_latency
        counters.cycles += cost
        return cost

    def _count(self, depth: int, hit: bool, counters: PerfCounters) -> None:
        if depth == 0:
            counters.l1_hits += hit
            counters.l1_misses += not hit
        elif depth == 1:
            counters.l2_hits += hit
            counters.l2_misses += not hit
        else:
            counters.l3_hits += hit
            counters.l3_misses += not hit

    def _count_bulk(
        self, depth: int, hits: int, misses: int, counters: PerfCounters
    ) -> None:
        if depth == 0:
            counters.l1_hits += hits
            counters.l1_misses += misses
        elif depth == 1:
            counters.l2_hits += hits
            counters.l2_misses += misses
        else:
            counters.l3_hits += hits
            counters.l3_misses += misses

    def flush(self) -> None:
        """Empty every level and forget stream state."""
        for level in self.levels:
            level.flush()
        self._last_line = None
        self._stream_run = 0


@dataclass(frozen=True)
class AnalyticMemoryModel:
    """Closed-form memory costs for the paper's three access shapes.

    Parameters mirror the trace-driven hierarchy: line size, last-level
    cache (LLC) capacity, per-level latencies, memory latency, and the
    per-line bandwidth price for prefetched streams.  ``mlp`` is the
    memory-level parallelism an out-of-order core extracts from
    independent misses (latency is divided by it for strided/random
    patterns with many outstanding accesses).

    The TLB term models why Figure 2's point-query panels still grow
    slowly with table size: once the footprint exceeds the second-level
    TLB's coverage, every random access pays a page walk whose cost
    grows with the page-table working set.

    Size contract (shared with :class:`CacheHierarchy`): zero bytes or
    zero accesses cost ``0.0``; negative inputs raise
    :class:`~repro.errors.StorageError`.
    """

    line: int = 64
    llc_size: int = 6 * 1024 * 1024
    l1_latency: Cycles = 4.0
    l2_latency: Cycles = 12.0
    l3_latency: Cycles = 42.0
    memory_latency: Cycles = 200.0
    line_bandwidth_cycles: Cycles = 16.6  # 64 B / ~10 GB/s at 2.6 GHz
    mlp: float = 4.0
    stlb_coverage: int = 1536 * 4096  # 1536 entries x 4 KiB pages
    page_walk_base: Cycles = 30.0

    # ------------------------------------------------------------------
    # Access shapes
    # ------------------------------------------------------------------
    def sequential(self, nbytes: int, counters: PerfCounters | None = None) -> Cycles:
        """Streaming over *nbytes* of contiguous memory (prefetched).

        Cost is bandwidth-bound: one ``line_bandwidth_cycles`` per line,
        plus a short latency ramp for the first lines before the stream
        prefetcher locks on.
        """
        if nbytes < 0:
            raise StorageError(f"stream size must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        lines = math.ceil(nbytes / self.line)
        ramp_lines = min(lines, 4)
        steady_lines = lines - ramp_lines
        cost = ramp_lines * self.memory_latency / self.mlp
        cost += steady_lines * self.line_bandwidth_cycles
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += nbytes
            counters.l1_misses += lines
        return cost

    def strided(
        self,
        count: int,
        stride: int,
        touched: int,
        footprint: int,
        counters: PerfCounters | None = None,
    ) -> Cycles:
        """*count* accesses of *touched* bytes each, *stride* bytes apart.

        This is the NSM full-table scan reading one field per record:
        the hardware still pulls whole lines, so the effective traffic
        is one line (or more) per record once the stride exceeds the
        line size.  For sub-line strides the pattern degenerates to a
        sequential stream.
        """
        if count < 0:
            raise StorageError(f"access count must be non-negative, got {count}")
        if count == 0:
            return 0.0
        if stride <= self.line:
            return self.sequential(count * stride, counters)
        lines_per_access = self._span_lines(touched)
        # Strided streams with constant stride are still prefetchable by
        # modern stream prefetchers, but every line is a distinct memory
        # line: traffic = count * lines. Latency is partially hidden.
        miss_fraction = self._capacity_miss_fraction(footprint)
        per_line = (
            miss_fraction * max(self.line_bandwidth_cycles, self.memory_latency / self.mlp)
            + (1.0 - miss_fraction) * self.l3_latency
        )
        cost = count * lines_per_access * per_line
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += count * lines_per_access * self.line
            counters.l1_misses += count * lines_per_access
            counters.l3_misses += int(count * lines_per_access * miss_fraction)
        return cost

    def random(
        self,
        count: int,
        touched: int,
        footprint: int,
        counters: PerfCounters | None = None,
    ) -> Cycles:
        """*count* point accesses of *touched* bytes at random positions.

        Each access pays the full miss chain with probability set by the
        footprint/LLC ratio, plus a TLB page-walk term once the
        footprint exceeds second-level TLB coverage.
        """
        if count < 0:
            raise StorageError(f"access count must be non-negative, got {count}")
        if count == 0:
            return 0.0
        lines_per_access = self._span_lines(touched)
        miss_fraction = self._capacity_miss_fraction(footprint)
        per_line = (
            miss_fraction * self.memory_latency / min(self.mlp, lines_per_access + 1.0)
            + (1.0 - miss_fraction) * self.l3_latency
        )
        walk = self.page_walk_cost(footprint)
        cost = count * (lines_per_access * per_line + walk)
        if counters is not None:
            counters.cycles += cost
            counters.bytes_read += count * lines_per_access * self.line
            counters.l1_misses += count * lines_per_access
            counters.l3_misses += int(count * lines_per_access * miss_fraction)
            counters.tlb_misses += count if footprint > self.stlb_coverage else 0
        return cost

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def page_walk_cost(self, footprint: int) -> Cycles:
        """Average page-walk cycles per random access at *footprint*.

        Zero while the footprint fits the STLB; beyond that the walk
        cost grows with the logarithm of the page count, modelling the
        shrinking cache-residency of page-table entries.
        """
        if footprint <= self.stlb_coverage:
            return 0.0
        pages = footprint / 4096.0
        return self.page_walk_base * (1.0 + 0.15 * math.log2(pages))

    def _capacity_miss_fraction(self, footprint: int) -> float:
        """Probability that a random line of *footprint* is not LLC-resident."""
        if footprint <= 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - self.llc_size / footprint))

    def _span_lines(self, touched: int) -> int:
        """Cache lines covered by a *touched*-byte object: ``ceil(t/line)``.

        The hardware pulls whole lines, so a ``touched``-byte object
        costs at least ``ceil(touched / line)`` of them; the model
        charges exactly that, keeping the count integral and monotone
        in ``touched``.  (Alignment straddle — the extra line a
        misaligned object may cross — is below the model's resolution:
        rounding the expected straddle never changes the count for the
        sub-line and record-sized objects the operators generate.)
        """
        if touched <= 0:
            return 0
        return math.ceil(touched / self.line)
