"""Analytic GPU model: occupancy, launches, tree reduction, bandwidth.

Substitutes for the paper's CUDA capability-5.0 device (5 SMs x 128
cores, 2 MB L2, 4044 MB global memory).  The only device workload in
Figure 2 is the Harris-style parallel reduction (sum of the item
table's price column), launched with >= 1024 blocks of 512 threads and
a final 1-block/1024-thread pass — so the model focuses on what decides
that kernel's runtime: device memory bandwidth, occupancy-limited
compute throughput, and per-launch latency.

All returned costs are **host cycles** (converted via the host clock)
so they compose with the CPU and PCIe models on one timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ExecutionError
from repro.hardware.event import Cycles, PerfCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["GPUModel", "KernelLaunch"]

#: Fault-site name checked on every accounted kernel (a literal so the
#: hardware layer never imports the faults package at runtime; must
#: match ``repro.faults.injector.SITE_KERNEL_LAUNCH``).
_SITE_KERNEL_LAUNCH = "device.kernel"


@dataclass(frozen=True)
class KernelLaunch:
    """Geometry of one kernel launch (for reports and validation)."""

    blocks: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.blocks < 1 or self.threads_per_block < 1:
            raise ExecutionError(
                f"invalid launch geometry {self.blocks}x{self.threads_per_block}"
            )

    @property
    def total_threads(self) -> int:
        """Threads across all blocks."""
        return self.blocks * self.threads_per_block


@dataclass(frozen=True)
class GPUModel:
    """Cost model of the discrete graphics device.

    Attributes
    ----------
    sms:
        Streaming multiprocessors.
    cores_per_sm:
        CUDA cores per SM.
    clock_hz:
        Device core clock.
    device_bandwidth:
        Global-memory bandwidth in bytes/second.
    launch_latency_s:
        Host-visible latency of one kernel launch in seconds.
    max_threads_per_block:
        Hardware limit (1024 on the paper's device).
    host_frequency_hz:
        Host clock used to convert device time into host cycles.
    injector:
        Optional fault injector (installed by
        :meth:`repro.faults.FaultInjector.install`); when armed, an
        accounted kernel may die with
        :class:`~repro.errors.DeviceError` after its cycles are
        charged — a crashed launch still occupied the device.
    """

    sms: int = 5
    cores_per_sm: int = 128
    clock_hz: float = 1.1e9
    device_bandwidth: float = 80.0e9
    launch_latency_s: float = 5.0e-6
    max_threads_per_block: int = 1024
    host_frequency_hz: float = 2.6e9
    injector: "FaultInjector | None" = field(default=None, compare=False)

    @property
    def total_cores(self) -> int:
        """CUDA cores across the device."""
        return self.sms * self.cores_per_sm

    @property
    def launch_latency_cycles(self) -> Cycles:
        """One launch's latency in host cycles."""
        return self.launch_latency_s * self.host_frequency_hz

    def seconds_to_host_cycles(self, seconds: float) -> Cycles:
        """Convert device wall time into host cycles."""
        return seconds * self.host_frequency_hz

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def streaming_kernel_seconds(self, nbytes: int, ops: int, ops_per_element: float = 1.0) -> float:
        """Device time of a kernel streaming *nbytes* and doing *ops* adds.

        The kernel is modelled as the max of its bandwidth time and its
        occupancy-limited compute time (classic roofline): reductions on
        8-byte elements are bandwidth-bound on this device.
        """
        bandwidth_time = nbytes / self.device_bandwidth
        compute_time = (ops * ops_per_element) / (self.total_cores * self.clock_hz)
        return max(bandwidth_time, compute_time)

    def reduction_cost(
        self,
        count: int,
        element_width: int,
        counters: PerfCounters | None = None,
        min_blocks: int = 1024,
        threads_per_block: int = 512,
    ) -> Cycles:
        """Host-cycle cost of the paper's two-pass parallel reduction.

        Pass 1 launches ``max(min_blocks, ceil(count / (2*threads)))``
        blocks that reduce the input to one partial per block; pass 2
        reduces the partials with a single 1024-thread block.  Each pass
        pays one kernel-launch latency.  Returns 0 for an empty input
        (no launch is issued).
        """
        if count < 0:
            raise ExecutionError(f"count must be >= 0, got {count}")
        if count == 0:
            return 0.0
        if threads_per_block > self.max_threads_per_block:
            raise ExecutionError(
                f"{threads_per_block} threads/block exceeds device limit "
                f"{self.max_threads_per_block}"
            )
        blocks = max(min_blocks, math.ceil(count / (2 * threads_per_block)))
        pass1 = KernelLaunch(blocks, threads_per_block)
        pass2 = KernelLaunch(1, self.max_threads_per_block)

        pass1_seconds = self.streaming_kernel_seconds(
            nbytes=count * element_width, ops=count
        )
        pass2_seconds = self.streaming_kernel_seconds(
            nbytes=pass1.blocks * element_width, ops=pass1.blocks
        )
        total_seconds = pass1_seconds + pass2_seconds + 2 * self.launch_latency_s
        cost = self.seconds_to_host_cycles(total_seconds)
        if counters is not None:
            counters.cycles += cost
            counters.device_cycles += total_seconds * self.clock_hz
            counters.kernel_launches += 2
            counters.bytes_read += count * element_width
            # Prediction calls (no counters) must stay side-effect-free,
            # so injection only applies to accounted launches.
            if self.injector is not None:
                self.injector.check(_SITE_KERNEL_LAUNCH, counters)
        return cost

    def batched_reduction_cost(
        self,
        columns: "Sequence[tuple[int, int]]",
        counters: PerfCounters | None = None,
        min_blocks: int = 1024,
        threads_per_block: int = 512,
    ) -> Cycles:
        """Host-cycle cost of ONE batched two-pass reduction over many columns.

        *columns* is one ``(count, element_width)`` pair per **distinct**
        operand column of the batch.  A batch scheduler that groups K
        compatible full-column sums launches a single fused grid whose
        blocks stream every distinct column once (pass 1) and a single
        second pass that folds all block partials — so the whole batch
        pays **two** kernel-launch latencies, where serial dispatch pays
        two per query.  Streaming time still scales with the distinct
        bytes touched (bandwidth is not amortizable), which is exactly
        why the win comes from sharing: K queries over D distinct
        columns cost D column streams + 2 launches instead of K streams
        + 2K launches.

        Zero-count columns are skipped (nothing to stream); an empty or
        all-empty *columns* returns 0 and issues no launch, matching
        :meth:`reduction_cost`'s zero-size contract.  Counter
        side-effects (and the ``device.kernel`` fault draw) happen only
        on accounted calls, like every other kernel costing.
        """
        if threads_per_block > self.max_threads_per_block:
            raise ExecutionError(
                f"{threads_per_block} threads/block exceeds device limit "
                f"{self.max_threads_per_block}"
            )
        streamed = []
        for count, width in columns:
            if count < 0:
                raise ExecutionError(f"count must be >= 0, got {count}")
            if width <= 0:
                raise ExecutionError(f"invalid element width {width}")
            if count:
                streamed.append((count, width))
        if not streamed:
            return 0.0
        pass_seconds = 0.0
        total_bytes = 0
        for count, width in streamed:
            blocks = max(min_blocks, math.ceil(count / (2 * threads_per_block)))
            pass1 = KernelLaunch(blocks, threads_per_block)
            pass_seconds += self.streaming_kernel_seconds(
                nbytes=count * width, ops=count
            )
            pass_seconds += self.streaming_kernel_seconds(
                nbytes=pass1.blocks * width, ops=pass1.blocks
            )
            total_bytes += count * width
        total_seconds = pass_seconds + 2 * self.launch_latency_s
        cost = self.seconds_to_host_cycles(total_seconds)
        if counters is not None:
            counters.cycles += cost
            counters.device_cycles += total_seconds * self.clock_hz
            counters.kernel_launches += 2
            counters.bytes_read += total_bytes
            # Prediction calls (no counters) must stay side-effect-free,
            # so injection only applies to accounted launches.
            if self.injector is not None:
                self.injector.check(_SITE_KERNEL_LAUNCH, counters)
        return cost

    def fused_pipeline_cost(
        self,
        count: int,
        element_widths: "tuple[int, ...] | list[int]",
        ops_per_element: float = 1.0,
        counters: PerfCounters | None = None,
        min_blocks: int = 1024,
        threads_per_block: int = 512,
    ) -> Cycles:
        """Host-cycle cost of ONE fused scan→filter→project→aggregate kernel.

        A fused pipeline streams every operand column exactly once
        (``count`` elements of each width in *element_widths*), keeps
        intermediates in registers, and folds the final reduction into
        the same grid-stride pass (block partials combined with an
        atomic tail, the modern single-pass shape of the Harris
        reduction) — so the whole chain pays **one** launch latency and
        never writes an intermediate to global memory.  Compare
        :meth:`reduction_cost`: two launches for the *last* stage alone,
        before the unfused plan's per-step transfers.

        ``ops_per_element`` scales the compute roofline for the fused
        ALU work (predicate + projections + accumulate).  An empty
        input returns 0 and issues no launch (the zero-size contract);
        a negative count or a non-positive width is a hard error.
        """
        if count < 0:
            raise ExecutionError(f"count must be >= 0, got {count}")
        if not element_widths:
            raise ExecutionError("fused pipeline needs at least one operand column")
        if any(width <= 0 for width in element_widths):
            raise ExecutionError(f"invalid element widths {tuple(element_widths)}")
        if count == 0:
            return 0.0
        if threads_per_block > self.max_threads_per_block:
            raise ExecutionError(
                f"{threads_per_block} threads/block exceeds device limit "
                f"{self.max_threads_per_block}"
            )
        # Same grid-stride geometry as the reduction's first pass; the
        # KernelLaunch constructor validates it.
        blocks = max(min_blocks, math.ceil(count / (2 * threads_per_block)))
        launch = KernelLaunch(blocks, threads_per_block)
        nbytes = count * sum(element_widths)
        seconds = self.streaming_kernel_seconds(
            nbytes=nbytes, ops=count, ops_per_element=ops_per_element
        )
        total_seconds = seconds + self.launch_latency_s
        cost = self.seconds_to_host_cycles(total_seconds)
        if counters is not None:
            counters.cycles += cost
            counters.device_cycles += total_seconds * self.clock_hz
            counters.kernel_launches += 1
            counters.bytes_read += nbytes
            # Prediction calls (no counters) must stay side-effect-free,
            # so injection only applies to accounted launches.
            if self.injector is not None:
                self.injector.check(_SITE_KERNEL_LAUNCH, counters)
        return cost

    def chunk_reduction_costs(
        self, count: int, per_chunk: int, element_width: int
    ) -> list[tuple[Cycles, float, int]]:
        """Per-chunk reduction costs of a chunked staging loop (pure).

        Splits *count* elements into ``ceil(count / per_chunk)`` chunks
        (full chunks plus at most one remainder) and returns one
        ``(host_cycles, device_cycles, launches)`` triple per chunk,
        each priced exactly as :meth:`reduction_cost` would price that
        chunk.  Side-effect-free — no counters, no fault draws — so the
        transfer scheduler's double-buffering model can line chunk
        kernels up against chunk transfers without perturbing the
        accounted kernel sequence.
        """
        if per_chunk <= 0:
            raise ExecutionError(f"per_chunk must be positive, got {per_chunk}")
        if count < 0:
            raise ExecutionError(f"count must be >= 0, got {count}")
        n_full, remainder = divmod(count, per_chunk)
        chunks = [per_chunk] * n_full + ([remainder] if remainder else [])
        out: list[tuple[Cycles, float, int]] = []
        for chunk in chunks:
            # No counters: a counters-carrying call would draw from the
            # fault injector, and this is a planning computation.
            cost = self.reduction_cost(chunk, element_width)
            seconds = cost / self.host_frequency_hz
            out.append((cost, seconds * self.clock_hz, 2))
        return out
