"""Analytic CPU model: cores, threading overhead, bandwidth scaling.

The paper fixes multi-threaded execution to 8 threads with blockwise
partitioning on a 4-core/8-thread i7-6700HQ.  Two first-order effects
decide Figure 2's threading series:

* a fixed per-thread management cost (spawn/join), which dominates for
  tiny inputs — finding (i): "sequential execution outperforms
  multi-threaded execution since thread-management costs dominate";
* sub-linear scaling of memory-bound work, because all cores share one
  memory controller: a single core already extracts a large fraction of
  the socket's stream bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.hardware.event import Cycles

__all__ = ["CPUModel"]


@dataclass(frozen=True)
class CPUModel:
    """Cost model of the host processor.

    Attributes
    ----------
    frequency_hz:
        Core clock; the global cycle unit is one tick of this clock.
    cores:
        Physical cores.
    hardware_threads:
        SMT contexts (8 on the paper's testbed).
    thread_spawn_cycles:
        Fixed management cost per spawned worker (thread creation +
        join + partitioning bookkeeping; ~38 us at 2.6 GHz, the cost
        of std::thread-per-region execution without a pool), charged
        once per worker per parallel region.
    smt_yield:
        Extra throughput a second SMT thread extracts from a busy core
        (0.3 means 2 threads on one core ~ 1.3 cores of compute).
    stream_bandwidth_per_thread:
        Bytes/second one thread can stream from memory.
    stream_bandwidth_aggregate:
        Socket-wide streaming bandwidth ceiling in bytes/second.
    """

    frequency_hz: float = 2.6e9
    cores: int = 4
    hardware_threads: int = 8
    thread_spawn_cycles: Cycles = 100_000.0
    smt_yield: float = 0.3
    stream_bandwidth_per_thread: float = 10.0e9
    stream_bandwidth_aggregate: float = 20.0e9

    def seconds_to_cycles(self, seconds: float) -> Cycles:
        """Convert wall-clock seconds to host cycles."""
        return seconds * self.frequency_hz

    def cycles_to_seconds(self, cycles: Cycles) -> float:
        """Convert host cycles to wall-clock seconds."""
        return cycles / self.frequency_hz

    # ------------------------------------------------------------------
    # Parallel scaling
    # ------------------------------------------------------------------
    def compute_speedup(self, threads: int) -> float:
        """Effective speedup of CPU-bound work on *threads* workers."""
        if threads < 1:
            raise ExecutionError(f"threads must be >= 1, got {threads}")
        threads = min(threads, self.hardware_threads)
        full_cores = min(threads, self.cores)
        smt_threads = max(0, threads - self.cores)
        return full_cores + smt_threads * self.smt_yield

    def bandwidth_speedup(self, threads: int) -> float:
        """Effective speedup of memory-bound work on *threads* workers.

        Bounded by the aggregate/per-thread bandwidth ratio: on the
        paper's testbed two streaming threads already saturate the
        socket, so 8 threads yield only ~2x on pure streams.
        """
        if threads < 1:
            raise ExecutionError(f"threads must be >= 1, got {threads}")
        ceiling = self.stream_bandwidth_aggregate / self.stream_bandwidth_per_thread
        return min(float(threads), ceiling)

    def spawn_cost(self, threads: int) -> Cycles:
        """Fixed thread-management cost of a parallel region.

        A single-threaded region (the paper's "no thread management
        involved at all") costs nothing.
        """
        if threads < 1:
            raise ExecutionError(f"threads must be >= 1, got {threads}")
        if threads == 1:
            return 0.0
        return threads * self.thread_spawn_cycles

    def parallelize(
        self,
        compute_cycles: Cycles,
        memory_cycles: Cycles,
        threads: int,
        latency_bound_cycles: Cycles = 0.0,
    ) -> Cycles:
        """Total cost of a blockwise-partitioned parallel region.

        The single-thread cost is split into a compute-bound share, a
        bandwidth-bound share (streaming; capped by the socket's
        aggregate bandwidth) and a latency-bound share (independent
        random misses, which threads overlap almost linearly, so it
        scales like compute).  The fixed spawn cost is added on top.
        With ``threads == 1`` this is exactly the sequential cost.
        """
        scalable = compute_cycles + latency_bound_cycles
        return (
            self.spawn_cost(threads)
            + scalable / self.compute_speedup(threads)
            + memory_cycles / self.bandwidth_speedup(threads)
        )
