"""Simulated heterogeneous hardware: CPU, caches, GPU, PCIe, memories."""

from repro.hardware.cache import (
    AnalyticMemoryModel,
    CacheGeometry,
    CacheHierarchy,
    CacheLevel,
)
from repro.hardware.cpu import CPUModel
from repro.hardware.disk import DiskModel
from repro.hardware.event import CostBreakdown, Cycles, PerfCounters
from repro.hardware.gpu import GPUModel, KernelLaunch
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.memory import Allocation, MemoryKind, MemorySpace
from repro.hardware.platform import Platform

__all__ = [
    "Cycles",
    "PerfCounters",
    "CostBreakdown",
    "MemoryKind",
    "MemorySpace",
    "Allocation",
    "CacheGeometry",
    "CacheLevel",
    "CacheHierarchy",
    "AnalyticMemoryModel",
    "CPUModel",
    "DiskModel",
    "GPUModel",
    "KernelLaunch",
    "InterconnectModel",
    "Platform",
]
