"""Cost accounting primitives for the simulated platform.

All simulated costs are expressed in **host CPU cycles** so that results
from the CPU model, the GPU model and the interconnect model compose
into a single timeline.  :class:`PerfCounters` accumulates both the
cycle total and the explanatory event counts (cache misses, bytes
moved, kernel launches, ...) that the benchmark reports print next to
each series.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["Cycles", "PerfCounters"]

#: Simulated cost unit: host CPU cycles (float to allow sub-cycle rates).
Cycles = float


@dataclass
class PerfCounters:
    """Mutable bundle of simulated performance counters.

    The ``cycles`` field is the headline cost; the remaining fields
    explain where it came from.  Counters add with ``+`` and support
    in-place merge via :meth:`merge`.
    """

    cycles: Cycles = 0.0
    instructions: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    tlb_misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_transferred: int = 0  # host <-> device traffic
    pcie_bytes: int = 0  # payload bytes moved by the transfer scheduler
    transfers: int = 0  # DMA bursts issued (coalesced transfers count once)
    staging_hits: int = 0  # column reads served from the device staging cache
    staging_misses: int = 0  # column reads that had to re-stage over PCIe
    overlapped_cycles: Cycles = 0.0  # cycles hidden by transfer/compute overlap
    threads_spawned: int = 0
    kernel_launches: int = 0
    device_cycles: Cycles = 0.0
    faults_injected: int = 0
    fault_retries: int = 0
    fault_fallbacks: int = 0
    fault_recoveries: int = 0
    degraded_queries: int = 0

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Add *other*'s counts into ``self`` and return ``self``."""
        for spec in fields(self):
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))
        return self

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        result = PerfCounters()
        result.merge(self)
        result.merge(other)
        return result

    def charge(self, cycles: Cycles) -> None:
        """Add raw cycles with no associated event."""
        self.cycles += cycles

    def seconds(self, frequency_hz: float) -> float:
        """Convert the cycle total to wall-clock seconds at *frequency_hz*."""
        return self.cycles / frequency_hz

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of all counters (for reports and tests)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def reset(self) -> None:
        """Zero every counter, preserving each field's declared type.

        Under ``from __future__ import annotations`` a field's ``type``
        is the *string* ``"int"``, so comparing it against the ``int``
        class would silently reset integer counters to floats; deriving
        the zero from the field's default keeps int counters int.
        """
        for spec in fields(self):
            setattr(self, spec.name, type(spec.default)())


@dataclass
class CostBreakdown:
    """A labelled decomposition of a cost for explanatory reports.

    Benchmarks attach one of these per series point so EXPERIMENTS.md can
    show *why* a configuration won (e.g. "transfer: 83% of total").
    """

    parts: dict[str, Cycles] = field(default_factory=dict)

    def add(self, label: str, cycles: Cycles) -> None:
        """Accumulate *cycles* under *label*."""
        self.parts[label] = self.parts.get(label, 0.0) + cycles

    @property
    def total(self) -> Cycles:
        """Sum of all parts."""
        return sum(self.parts.values())

    def share(self, label: str) -> float:
        """Fraction of the total contributed by *label* (0 when empty)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.parts.get(label, 0.0) / total


__all__.append("CostBreakdown")
