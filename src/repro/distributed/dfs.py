"""A replicated block store (the "slightly modified Hadoop DFS" of ES2).

ES2 writes PAX-formatted tuplets to the DFS "as a raw-byte device".
:class:`BlockStore` models exactly that surface: fixed-size blocks,
replicated onto *replication* distinct nodes' disks, with reads served
from the nearest replica (free when local, one network transfer when
remote).  Payload bytes are carried opaquely — the storage engine above
owns the format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.distributed.cluster import Cluster, ClusterNode
from repro.errors import DistributedError
from repro.faults.injector import SITE_DFS_READ, SITE_NODE_CRASH, FaultInjector
from repro.hardware.event import Cycles, PerfCounters
from repro.hardware.memory import Allocation

__all__ = ["DFSBlock", "DFSFile", "BlockStore"]

DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024  # HDFS-style 64 MiB blocks


@dataclass
class DFSBlock:
    """One replicated block: payload plus its per-node disk allocations."""

    index: int
    size: int
    payload: bytes
    replicas: dict[str, Allocation] = field(default_factory=dict)

    @property
    def replica_nodes(self) -> tuple[str, ...]:
        """Names of nodes holding a replica."""
        return tuple(self.replicas)


@dataclass
class DFSFile:
    """An ordered list of blocks under one path."""

    path: str
    blocks: list[DFSBlock] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total payload bytes."""
        return sum(block.size for block in self.blocks)


class BlockStore:
    """Replicated block storage over a :class:`Cluster`'s disks."""

    def __init__(
        self,
        cluster: Cluster,
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        injector: FaultInjector | None = None,
    ) -> None:
        if block_size < 1:
            raise DistributedError(f"block_size must be >= 1, got {block_size}")
        if replication > len(cluster):
            raise DistributedError(
                f"replication {replication} exceeds cluster size {len(cluster)}"
            )
        self.cluster = cluster
        self.replication = replication
        self.block_size = block_size
        #: Optional shared fault injector: arms the ``dfs.block-read``
        #: site on :meth:`read` and the ``cluster.node-crash`` site on
        #: :meth:`inject_node_crash`.  A plain attribute so it can be
        #: (un)installed at any point in a store's life.
        self.injector = injector
        self._files: dict[str, DFSFile] = {}

    # ------------------------------------------------------------------
    def write(self, path: str, payload: bytes) -> DFSFile:
        """Store *payload* under *path*, splitting and replicating blocks.

        Re-writing an existing path is an error (HDFS files are
        write-once); delete first.
        """
        if path in self._files:
            raise DistributedError(f"path {path!r} already exists (write-once)")
        dfs_file = DFSFile(path)
        for index in range(0, max(len(payload), 1), self.block_size):
            chunk = payload[index : index + self.block_size]
            block = DFSBlock(index // self.block_size, len(chunk), chunk)
            nodes = self.cluster.replica_nodes(
                hash((path, block.index)) & 0x7FFFFFFF, self.replication
            )
            for node in nodes:
                block.replicas[node.name] = node.disk.allocate(
                    len(chunk), f"dfs:{path}#{block.index}"
                )
            dfs_file.blocks.append(block)
        self._files[path] = dfs_file
        return dfs_file

    def read(
        self,
        path: str,
        reader: ClusterNode,
        counters: PerfCounters | None = None,
    ) -> tuple[bytes, Cycles]:
        """Read the whole file from *reader*'s point of view.

        Blocks with a local replica cost nothing extra; remote blocks
        cost one network transfer each.  Returns (payload, cycles).

        When a fault injector is armed at ``dfs.block-read``, the
        nearest replica of a block may fail to read: with another
        replica available the store degrades to it (one extra network
        transfer, recorded as a recovery), otherwise the injected
        :class:`~repro.errors.DistributedError` surfaces.
        """
        dfs_file = self.file(path)
        payload = bytearray()
        cost: Cycles = 0.0
        for block in dfs_file.blocks:
            payload.extend(block.payload)
            if reader.name not in block.replicas:
                cost += self.cluster.network.transfer_cost(block.size, counters)
            if self.injector is not None and self.injector.fires(
                SITE_DFS_READ, counters
            ):
                if len(block.replicas) <= 1:
                    error = DistributedError(
                        f"injected fault at {SITE_DFS_READ!r}: block "
                        f"{path!r}#{block.index} unreadable and no other "
                        "replica is left"
                    )
                    error.injected = True
                    raise error
                # Degrade to another replica — always a remote re-read.
                cost += self.cluster.network.transfer_cost(block.size, counters)
                self.injector.report.record_recovered()
                if counters is not None:
                    counters.fault_recoveries += 1
        return bytes(payload), cost

    def delete(self, path: str) -> None:
        """Remove a file, freeing every replica's disk allocation."""
        dfs_file = self.file(path)
        for block in dfs_file.blocks:
            for node_name, allocation in block.replicas.items():
                self.cluster.node(node_name).disk.free(allocation)
        del self._files[path]

    def file(self, path: str) -> DFSFile:
        """Look up a file by path."""
        try:
            return self._files[path]
        except KeyError:
            raise DistributedError(f"no such DFS path {path!r}") from None

    def paths(self) -> tuple[str, ...]:
        """All stored paths."""
        return tuple(self._files)

    def under_replicated(self) -> list[tuple[str, int]]:
        """(path, block index) pairs whose replica count is below target.

        Empty in healthy stores; fault-injection tests knock replicas
        out via :meth:`fail_node` and assert re-replication accounting.
        """
        problems: list[tuple[str, int]] = []
        for path, dfs_file in self._files.items():
            for block in dfs_file.blocks:
                if len(block.replicas) < self.replication:
                    problems.append((path, block.index))
        return problems

    def fail_node(self, node_name: str) -> int:
        """Drop every replica held by *node_name*; returns replicas lost."""
        node = self.cluster.node(node_name)
        lost = 0
        for dfs_file in self._files.values():
            for block in dfs_file.blocks:
                allocation = block.replicas.pop(node_name, None)
                if allocation is not None:
                    node.disk.free(allocation)
                    lost += 1
        return lost

    def inject_node_crash(
        self,
        counters: PerfCounters | None = None,
        exclude: Sequence[str] = (),
    ) -> str | None:
        """Maybe crash one node (injector-driven) and repair the store.

        Routes the ``cluster.node-crash`` fault site through the shared
        injector: when it fires, a deterministic victim outside
        *exclude* (typically the coordinator) loses every replica it
        holds, and the store immediately re-replicates — ES2's
        survey-highlighted recovery mechanism — charging one network
        transfer per repaired replica.  Returns the victim's name, or
        ``None`` when no fault fired (or no victim was eligible).
        """
        if self.injector is None:
            return None
        candidates = [
            node.name for node in self.cluster.nodes if node.name not in exclude
        ]
        if not candidates or not self.injector.fires(SITE_NODE_CRASH, counters):
            return None
        victim = self.injector.choice(candidates)
        self.fail_node(victim)
        try:
            self.re_replicate(counters)
        except DistributedError as error:
            # The crash was injected; mark the failed repair so the
            # caller's accounting attributes it correctly.
            error.injected = True
            raise
        self.injector.report.record_recovered()
        if counters is not None:
            counters.fault_recoveries += 1
        return victim

    def re_replicate(self, counters: PerfCounters | None = None) -> int:
        """Restore the replication target for every under-replicated block.

        Each repaired replica costs one network transfer of the block.
        Returns the number of replicas created.
        """
        created = 0
        for path, dfs_file in self._files.items():
            for block in dfs_file.blocks:
                candidates = [
                    node
                    for node in self.cluster.nodes
                    if node.name not in block.replicas
                ]
                while len(block.replicas) < self.replication:
                    if not candidates:
                        raise DistributedError(
                            f"not enough nodes to re-replicate {path!r}#{block.index}"
                        )
                    node = candidates.pop(0)
                    block.replicas[node.name] = node.disk.allocate(
                        block.size, f"dfs:{path}#{block.index}"
                    )
                    self.cluster.network.transfer_cost(block.size, counters)
                    created += 1
        return created
