"""A replicated block store (the "slightly modified Hadoop DFS" of ES2).

ES2 writes PAX-formatted tuplets to the DFS "as a raw-byte device".
:class:`BlockStore` models exactly that surface: fixed-size blocks,
replicated onto *replication* distinct nodes' disks, with reads served
from the nearest replica (free when local, one network transfer when
remote).  Payload bytes are carried opaquely — the storage engine above
owns the format.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.distributed.cluster import Cluster, ClusterNode
from repro.errors import DistributedError
from repro.faults.injector import SITE_DFS_READ, SITE_NODE_CRASH, FaultInjector
from repro.hardware.event import Cycles, PerfCounters
from repro.hardware.memory import Allocation

__all__ = ["DFSBlock", "DFSFile", "BlockStore"]

DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024  # HDFS-style 64 MiB blocks


@dataclass
class DFSBlock:
    """One replicated block: payload plus its per-node disk allocations."""

    index: int
    size: int
    payload: bytes
    replicas: dict[str, Allocation] = field(default_factory=dict)

    @property
    def replica_nodes(self) -> tuple[str, ...]:
        """Names of nodes holding a replica."""
        return tuple(self.replicas)


@dataclass
class DFSFile:
    """An ordered list of blocks under one path."""

    path: str
    blocks: list[DFSBlock] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total payload bytes."""
        return sum(block.size for block in self.blocks)


class BlockStore:
    """Replicated block storage over a :class:`Cluster`'s disks."""

    def __init__(
        self,
        cluster: Cluster,
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        injector: FaultInjector | None = None,
    ) -> None:
        if block_size < 1:
            raise DistributedError(f"block_size must be >= 1, got {block_size}")
        if replication > len(cluster):
            raise DistributedError(
                f"replication {replication} exceeds cluster size {len(cluster)}"
            )
        self.cluster = cluster
        self.replication = replication
        self.block_size = block_size
        #: Optional shared fault injector: arms the ``dfs.block-read``
        #: site on :meth:`read` and the ``cluster.node-crash`` site on
        #: :meth:`inject_node_crash`.  A plain attribute so it can be
        #: (un)installed at any point in a store's life.
        self.injector = injector
        self._files: dict[str, DFSFile] = {}
        #: Nodes currently unavailable: their replicas are skipped by
        #: reads and they receive no new placements until
        #: :meth:`restore_node`.  :meth:`fail_node` (disk loss) and
        #: :meth:`mark_down` (process crash) both add here.
        self._down: set[str] = set()

    # ------------------------------------------------------------------
    def write(self, path: str, payload: bytes) -> DFSFile:
        """Store *payload* under *path*, splitting and replicating blocks.

        Re-writing an existing path is an error (HDFS files are
        write-once); delete first.
        """
        if path in self._files:
            raise DistributedError(f"path {path!r} already exists (write-once)")
        dfs_file = DFSFile(path)
        for index in range(0, max(len(payload), 1), self.block_size):
            chunk = payload[index : index + self.block_size]
            block = DFSBlock(index // self.block_size, len(chunk), chunk)
            # crc32, not hash(): placement must be identical across
            # processes (PYTHONHASHSEED randomizes str hashing), or two
            # CLI runs of the same benchmark would shard differently.
            key = zlib.crc32(f"{path}#{block.index}".encode()) & 0x7FFFFFFF
            nodes = self._placement_nodes(key)
            for node in nodes:
                block.replicas[node.name] = node.disk.allocate(
                    len(chunk), f"dfs:{path}#{block.index}"
                )
            dfs_file.blocks.append(block)
        self._files[path] = dfs_file
        return dfs_file

    def _placement_nodes(self, key: int) -> list[ClusterNode]:
        """Pick ``replication`` placement targets, preferring up nodes.

        With no nodes down this is exactly
        :meth:`~repro.distributed.cluster.Cluster.replica_nodes`.  With
        nodes down the rotation starting at the key's home is walked
        past them, so new blocks (e.g. replicated WAL segments written
        while a crashed node awaits replacement) land on available
        disks; only when fewer than ``replication`` nodes are up do
        down nodes fill the remainder (their replicas come back on
        :meth:`restore_node`).
        """
        if not self._down:
            return self.cluster.replica_nodes(key, self.replication)
        start = key % len(self.cluster.nodes)
        rotation = [
            self.cluster.nodes[(start + offset) % len(self.cluster.nodes)]
            for offset in range(len(self.cluster.nodes))
        ]
        up = [node for node in rotation if node.name not in self._down]
        down = [node for node in rotation if node.name in self._down]
        return (up + down)[: self.replication]

    def _up_replicas(self, block: DFSBlock) -> list[str]:
        """Names of the block's replicas on currently-available nodes."""
        return [name for name in block.replicas if name not in self._down]

    def read(
        self,
        path: str,
        reader: ClusterNode,
        counters: PerfCounters | None = None,
    ) -> tuple[bytes, Cycles]:
        """Read the whole file from *reader*'s point of view.

        Blocks with a local replica cost nothing extra; remote blocks
        cost one network transfer each.  Returns (payload, cycles).
        Replicas on down nodes (crashed, not yet restored) are skipped;
        a block with no available replica raises
        :class:`~repro.errors.DistributedError` — that is true data
        unavailability, not an injected fault.

        When a fault injector is armed at ``dfs.block-read``, the
        nearest replica of a block may fail to read: with another
        replica available the store degrades to it (one extra network
        transfer, recorded as a recovery), otherwise the injected
        :class:`~repro.errors.DistributedError` surfaces.
        """
        dfs_file = self.file(path)
        payload = bytearray()
        cost: Cycles = 0.0
        for block in dfs_file.blocks:
            available = self._up_replicas(block)
            if not available:
                raise DistributedError(
                    f"block {path!r}#{block.index} has no available replica "
                    f"({len(block.replicas)} total, all on down nodes)"
                )
            payload.extend(block.payload)
            if reader.name not in available:
                cost += self.cluster.network.transfer_cost(block.size, counters)
            if self.injector is not None and self.injector.fires(
                SITE_DFS_READ, counters
            ):
                if len(available) <= 1:
                    error = DistributedError(
                        f"injected fault at {SITE_DFS_READ!r}: block "
                        f"{path!r}#{block.index} unreadable and no other "
                        "replica is left"
                    )
                    error.injected = True
                    raise error
                # Degrade to another replica — always a remote re-read.
                cost += self.cluster.network.transfer_cost(block.size, counters)
                self.injector.report.record_recovered()
                if counters is not None:
                    counters.fault_recoveries += 1
        return bytes(payload), cost

    def delete(self, path: str) -> None:
        """Remove a file, freeing every replica's disk allocation."""
        dfs_file = self.file(path)
        for block in dfs_file.blocks:
            for node_name, allocation in block.replicas.items():
                self.cluster.node(node_name).disk.free(allocation)
        del self._files[path]

    def file(self, path: str) -> DFSFile:
        """Look up a file by path."""
        try:
            return self._files[path]
        except KeyError:
            raise DistributedError(f"no such DFS path {path!r}") from None

    def paths(self) -> tuple[str, ...]:
        """All stored paths."""
        return tuple(self._files)

    def under_replicated(self) -> list[tuple[str, int]]:
        """(path, block index) pairs whose *available* replicas are below target.

        Empty in healthy stores; fault-injection tests knock replicas
        out via :meth:`fail_node` and assert re-replication accounting.
        Replicas held by down nodes do not count — until the node is
        restored they cannot serve a read.
        """
        problems: list[tuple[str, int]] = []
        for path, dfs_file in self._files.items():
            for block in dfs_file.blocks:
                if len(self._up_replicas(block)) < self.replication:
                    problems.append((path, block.index))
        return problems

    @property
    def down_nodes(self) -> tuple[str, ...]:
        """Names of nodes currently marked unavailable (sorted)."""
        return tuple(sorted(self._down))

    def fail_node(self, node_name: str) -> int:
        """Disk loss: drop every replica held by *node_name* and mark it down.

        Returns the number of replicas lost.  The node stays out of
        read paths and placement decisions until :meth:`restore_node`
        (modelling a replacement machine joining with an empty disk).
        """
        node = self.cluster.node(node_name)
        lost = 0
        for dfs_file in self._files.values():
            for block in dfs_file.blocks:
                allocation = block.replicas.pop(node_name, None)
                if allocation is not None:
                    node.disk.free(allocation)
                    lost += 1
        self._down.add(node_name)
        return lost

    def mark_down(self, node_name: str) -> int:
        """Process crash: the node's replicas survive but cannot serve.

        Unlike :meth:`fail_node` the disk contents are retained — a
        restarted process (:meth:`restore_node`) brings them straight
        back, which is the fail-stop model the sharded executor's
        ``node.crash-mid-query`` site uses.  Returns the number of
        replicas made unavailable.
        """
        self.cluster.node(node_name)  # validate the name
        self._down.add(node_name)
        return sum(
            1
            for dfs_file in self._files.values()
            for block in dfs_file.blocks
            if node_name in block.replicas
        )

    def restore_node(self, node_name: str) -> None:
        """Bring a down node back into read and placement rotation.

        After :meth:`mark_down` its retained replicas become readable
        again; after :meth:`fail_node` it rejoins empty and
        :meth:`re_replicate` may place new replicas on it.  Restoring
        an already-up node is a no-op; unknown names are an error.
        """
        self.cluster.node(node_name)  # validate the name
        self._down.discard(node_name)

    def inject_node_crash(
        self,
        counters: PerfCounters | None = None,
        exclude: Sequence[str] = (),
    ) -> str | None:
        """Maybe crash one node (injector-driven) and repair the store.

        Routes the ``cluster.node-crash`` fault site through the shared
        injector: when it fires, a deterministic victim outside
        *exclude* (typically the coordinator) loses every replica it
        holds, and the store immediately re-replicates — ES2's
        survey-highlighted recovery mechanism — charging one network
        transfer per repaired replica.  Returns the victim's name, or
        ``None`` when no fault fired (or no victim was eligible).
        """
        if self.injector is None:
            return None
        candidates = [
            node.name for node in self.cluster.nodes if node.name not in exclude
        ]
        if not candidates or not self.injector.fires(SITE_NODE_CRASH, counters):
            return None
        victim = self.injector.choice(candidates)
        self.fail_node(victim)
        try:
            self.re_replicate(counters)
        except DistributedError as error:
            # The crash was injected; mark the failed repair so the
            # caller's accounting attributes it correctly.
            error.injected = True
            raise
        # The victim rejoins with an empty disk (replacement machine),
        # keeping it eligible for later crashes and placements.
        self.restore_node(victim)
        self.injector.report.record_recovered()
        if counters is not None:
            counters.fault_recoveries += 1
        return victim

    def _first_under_replicated(self) -> tuple[str, DFSBlock] | None:
        """The first (path, block) below target, in stable file order."""
        for path, dfs_file in self._files.items():
            for block in dfs_file.blocks:
                if len(self._up_replicas(block)) < self.replication:
                    return path, block
        return None

    def re_replicate(
        self,
        counters: PerfCounters | None = None,
        crash_site: str | None = None,
    ) -> int:
        """Restore the replication target for every under-replicated block.

        Each repaired replica costs one network transfer of the block
        and is sourced from a surviving available replica — a block
        with **zero** available replicas is lost and raises
        :class:`~repro.errors.DistributedError` (replication's honest
        limit).  New replicas land only on up nodes; when too few are
        up to meet the target the repair also raises.

        The loop is convergent under cascading failures: pass
        *crash_site* (e.g. ``cluster.node-crash``) to check the shared
        injector after every repaired replica — a firing kills one more
        up node mid-repair (disk loss) and the scan restarts, so blocks
        un-repaired by the second failure are revisited.  Each absorbed
        mid-repair crash is recorded as *recovered* once the store
        converges.  Returns the number of replicas created.
        """
        created = 0
        absorbed_crashes = 0
        while True:
            problem = self._first_under_replicated()
            if problem is None:
                break
            path, block = problem
            if not self._up_replicas(block):
                raise DistributedError(
                    f"block {path!r}#{block.index} lost: no surviving "
                    "replica to re-replicate from"
                )
            candidates = [
                node
                for node in self.cluster.nodes
                if node.name not in block.replicas and node.name not in self._down
            ]
            if not candidates:
                raise DistributedError(
                    f"not enough nodes to re-replicate {path!r}#{block.index}"
                )
            node = candidates[0]
            block.replicas[node.name] = node.disk.allocate(
                block.size, f"dfs:{path}#{block.index}"
            )
            self.cluster.network.transfer_cost(block.size, counters)
            created += 1
            if (
                crash_site is not None
                and self.injector is not None
                and self.injector.fires(crash_site, counters)
            ):
                victims = [
                    candidate.name
                    for candidate in self.cluster.nodes
                    if candidate.name not in self._down
                ]
                if victims:
                    self.fail_node(self.injector.choice(victims))
                    absorbed_crashes += 1
        if absorbed_crashes and self.injector is not None:
            self.injector.report.record_recovered(absorbed_crashes)
            if counters is not None:
                counters.fault_recoveries += absorbed_crashes
        return created
