"""Shared-nothing cluster and replicated block store (ES2 substrate)."""

from repro.distributed.cluster import Cluster, ClusterNode, NetworkModel
from repro.distributed.dfs import BlockStore, DFSBlock, DFSFile

__all__ = [
    "Cluster",
    "ClusterNode",
    "NetworkModel",
    "BlockStore",
    "DFSBlock",
    "DFSFile",
]
