"""Simulated shared-nothing cluster (the ES2 substrate).

ES2 runs on "large cluster[s] of shared-nothing commodity machines".
This module provides the minimum honest stand-in: named nodes, each
with its own host memory and disk (no memory is shared), plus a flat
network cost model for remote reads.  It exists so the ES2 mini-engine
can exhibit the classification-relevant behaviours — distributed data
location, partition-to-node delegation, replication for fault
tolerance — against real allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DistributedError
from repro.hardware.event import Cycles, PerfCounters
from repro.hardware.memory import MemoryKind, MemorySpace

__all__ = ["ClusterNode", "Cluster", "NetworkModel"]

_GiB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth of the cluster interconnect (per message)."""

    bandwidth: float = 1.25e9  # 10 GbE in bytes/second
    latency_s: float = 100.0e-6
    host_frequency_hz: float = 2.6e9

    def peek_transfer_cost(self, nbytes: int) -> Cycles:
        """Estimate the cycles to move *nbytes* without charging anyone.

        The planning-time variant of :meth:`transfer_cost`, mirroring
        the staging cache's ``peek`` convention: routers and placement
        planners compare candidate assignments with this method so a
        plan that is merely *considered* never shows up in a run's
        counters (a lint test pins that the router calls only this).
        """
        if nbytes < 0:
            raise DistributedError(f"transfer size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        seconds = self.latency_s + nbytes / self.bandwidth
        return seconds * self.host_frequency_hz

    def transfer_cost(self, nbytes: int, counters: PerfCounters | None = None) -> Cycles:
        """Host cycles to move *nbytes* node-to-node once."""
        cost = self.peek_transfer_cost(nbytes)
        if cost and counters is not None:
            counters.cycles += cost
            counters.bytes_transferred += nbytes
        return cost


class ClusterNode:
    """One shared-nothing machine: private memory and disk."""

    def __init__(
        self, name: str, memory_capacity: int = 8 * _GiB, disk_capacity: int = 256 * _GiB
    ) -> None:
        self.name = name
        self.memory = MemorySpace(f"{name}.mem", MemoryKind.HOST, memory_capacity)
        self.disk = MemorySpace(f"{name}.disk", MemoryKind.DISK, disk_capacity)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterNode({self.name})"


class Cluster:
    """A fixed set of nodes with hash-based placement."""

    def __init__(self, node_count: int = 4, network: NetworkModel | None = None) -> None:
        if node_count < 1:
            raise DistributedError(f"a cluster needs >= 1 node, got {node_count}")
        self.nodes = [ClusterNode(f"node{index}") for index in range(node_count)]
        self.network = network or NetworkModel()

    def node(self, name: str) -> ClusterNode:
        """Look up a node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise DistributedError(f"unknown node {name!r}")

    def node_for(self, key: int) -> ClusterNode:
        """Deterministic placement of an integer key onto a node."""
        return self.nodes[key % len(self.nodes)]

    def replica_nodes(self, key: int, replication: int) -> list[ClusterNode]:
        """The *replication* consecutive nodes starting at the key's home.

        Raises when replication exceeds the cluster size (a block cannot
        be replicated twice on one node).
        """
        if replication < 1:
            raise DistributedError(f"replication must be >= 1, got {replication}")
        if replication > len(self.nodes):
            raise DistributedError(
                f"replication {replication} exceeds cluster size {len(self.nodes)}"
            )
        start = key % len(self.nodes)
        return [
            self.nodes[(start + offset) % len(self.nodes)]
            for offset in range(replication)
        ]

    def add_node(self) -> ClusterNode:
        """Provision one more shared-nothing node (elastic scale-out)."""
        node = ClusterNode(f"node{len(self.nodes)}")
        self.nodes.append(node)
        return node

    def __len__(self) -> int:
        return len(self.nodes)
