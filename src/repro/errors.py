"""Exception hierarchy for the ``repro`` library.

Every exception raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still distinguishing the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class SchemaError(ReproError):
    """A schema definition or schema lookup is invalid.

    Raised for duplicate attribute names, unknown attributes, empty
    schemas, and type/width mismatches.
    """


class LayoutError(ReproError):
    """A layout or fragment definition violates Section III's rules.

    Examples: fragments that do not cover the relation, fragments that
    span non-gapless regions, overlapping fragments within a layout that
    forbids overlap, or a linearization requested on a fragment shape
    that does not support it.
    """


class StorageError(ReproError):
    """A storage operation failed (allocation, out-of-bounds access)."""


class CapacityError(StorageError):
    """A memory space cannot satisfy an allocation request.

    This is the error behind CoGaDB's "all or nothing" device placement
    fallback: when the device memory cannot hold a column, placement
    falls back to host memory instead of splitting the column.
    """


class EngineError(ReproError):
    """A storage engine was used outside its declared capabilities.

    Raised, for example, when asking a static engine to re-organize its
    layout, or asking a single-layout engine to add a second layout.
    """


class TransactionError(EngineError):
    """A transactional operation failed (conflict, unknown record)."""


class DelegationError(EngineError):
    """A delegation policy was violated.

    Delegation-based fragment schemes restrict which layout may serve
    which data region; accessing a region through a layout that does not
    own it (and has no delegate) is undefined behaviour in the paper's
    terms — here it is a hard error.
    """


class ExecutionError(ReproError):
    """Query execution failed (bad plan, operator misuse)."""


class TransferError(ExecutionError):
    """A host<->device transfer failed mid-flight.

    Raised by the interconnect model when a PCIe fault is injected (or,
    in a real system, on a DMA/CRC error).  The cycles of the failed
    attempt are already charged when this is raised — a broken transfer
    still burns wire time before it is detected.  Retryable: resilience
    policies (:mod:`repro.faults`) re-issue the copy or degrade to a
    host-only path.
    """


class DeviceError(ExecutionError):
    """A device-side operation failed (allocation or kernel launch).

    Covers the two device hazards the GPU-database literature calls
    out: device memory allocation failure (OOM beyond the capacity
    model's reach) and kernel launch failure.  Like
    :class:`TransferError` it is retryable and is the trigger for
    GPU -> CPU degradation chains.
    """


class FusionError(ExecutionError):
    """A fused pipeline was built or executed incorrectly.

    Raised for malformed pipeline specifications (missing terminal
    aggregate, out-of-range selectivity hints) and for fused executions
    that cannot produce a data-plane answer (a filter over phantom
    fragments has no values to test, exactly like ``filter_scan``).
    """


class UnsupportedPipelineError(FusionError):
    """A pipeline shape the fusion compiler refuses to compile.

    The compiler fuses scan→[filter]→[project…]→aggregate chains only;
    shapes outside that grammar (a second filter, a projection with no
    preceding filter, stages after the terminal aggregate) raise this
    at :func:`~repro.fusion.compile_pipeline` time — never at run time —
    so the unfused oracle and the fused path always agree on what a
    plan means.
    """


class ReorganizationAborted(ExecutionError):
    """An online layout re-organization was interrupted mid-flight.

    The re-organizer guarantees roll-back: when this escapes, the
    engine's layout is the untouched pre-reorganization layout and every
    partially-built fragment has been freed.  Callers may simply retry
    the re-organization later.
    """


class RebalanceAborted(ExecutionError):
    """An elastic shard rebalance operation was aborted and rolled back.

    The live-migration protocol guarantees the abort is clean: when this
    escapes, the shard map still serves the *pre-migration* placement at
    the pre-migration epoch, every partially-copied destination file has
    been deleted from the DFS, and a ``rebalance-abort`` marker is in
    the WAL so recovery never resumes the dead migration.  The absorbed
    fault (if the abort was injected) is already tallied as *recovered*
    in the resilience report — callers must not re-attribute it.  The
    operation may simply be re-planned and retried later.
    """


class EngineCrashed(ReproError):
    """The simulated process died: volatile state is gone.

    Unlike the retryable execution errors, a crash cannot be absorbed by
    an in-process policy — the run is over.  Durable state (the
    write-ahead log's flushed prefix, checkpoints) survives; the
    :mod:`repro.recovery` subsystem rebuilds an engine from it.  Crash
    fault sites (``wal.torn-append``, ``crash.post-commit``,
    ``crash.during-reorg``) raise this with ``injected = True``.
    """


class WalError(ReproError):
    """The write-ahead log was misused (append after crash, bad config)."""


class RecoveryError(ReproError):
    """Crash recovery could not restore a committed-prefix state.

    Raised when the durable log has no complete checkpoint to start
    from, or when replay meets a record the engine cannot apply.
    """


class PlacementError(ReproError):
    """A data placement decision could not be applied."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class ClassificationError(ReproError):
    """An engine's mechanisms could not be classified against the taxonomy."""


class DistributedError(ReproError):
    """A simulated cluster operation failed (unknown node, under-replication)."""


class NodeUnavailable(DistributedError):
    """A cluster node cannot serve: it crashed or its lease expired.

    Raised by the sharded scatter-gather executor when the node a
    sub-query was dispatched to dies mid-flight (the
    ``node.crash-mid-query`` fault site) or when the failure detector
    refuses a node whose heartbeat lease has lapsed.  Absorbable: the
    failover path re-runs the sub-query on a surviving DFS replica.
    """


class ShardRetryExhausted(DistributedError):
    """A shard sub-query failed on every surviving replica.

    The failover state machine tried the shard's primary and every
    remaining replica candidate without success — either the cluster
    lost too many nodes at once or the shard's blocks lost every
    replica (true data loss below the replication factor).  The
    ``__cause__`` chain carries the final per-node error.
    """


class MigrationInProgress(DistributedError):
    """A shard already has an in-flight live migration.

    The migration protocol is single-writer per shard: the copy /
    catch-up / cutover phases assume no concurrent rebalance touches the
    same shard's base file or serving state.  Raised by
    :meth:`~repro.sharding.placement.ShardMap.begin_migration` when a
    second operation names a shard whose first migration has neither
    committed nor aborted.  Queries are unaffected — only the competing
    migration is refused; retry after the in-flight one settles.
    """


class AdmissionRejected(ExecutionError):
    """A query was shed by admission control instead of being queued.

    The serving tier's bounded backlog refuses work it cannot serve
    within its latency budget: when the queue is full (and no
    lower-priority entry can be displaced), the newcomer is rejected
    with this error rather than letting the backlog — and therefore
    every tenant's tail latency — grow without bound.  Carries
    ``injected = True`` when raised by the ``serving.queue-overflow``
    fault site; an open-loop client treats both forms the same way:
    count the shed query and keep the arrival process running.
    """


class DeadlineExceeded(ExecutionError):
    """A retry policy's total-backoff deadline was hit before success.

    :class:`~repro.faults.RetryPolicy` raises this when the next
    backoff delay would push the cumulative backoff of one ``run()``
    past ``max_total_cycles`` — bounded-latency paths (shard failover,
    hedged dispatch) prefer surfacing over waiting forever.  Carries
    ``injected = True`` when the final absorbed error was injected, so
    chaos accounting attributes the surfaced fault correctly.
    """
