"""Primary-key hash indexes for record-centric point queries.

The paper's Q1 ("SELECT * FROM R WHERE pk = c") assumes "the database
system can efficiently identify exactly one record without scanning the
entire relation".  :class:`HashIndex` provides that: an equality index
from key values to row positions, with a probe cost model (hash compute
plus the bucket's random memory access).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.operators import materialize_rows
from repro.hardware.event import Cycles
from repro.layout.layout import Layout

__all__ = ["HashIndex", "SecondaryIndex", "point_query"]

#: ALU cycles to hash one key and walk one bucket.
HASH_CYCLES: Cycles = 12.0
#: Bytes per index entry (key hash + position), sizing the probe footprint.
ENTRY_BYTES = 16


class HashIndex:
    """An equality index from key value to row position.

    Duplicate keys raise — this models a primary key, per Q1's
    non-compound-primary-key assumption.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._positions: dict[Hashable, int] = {}

    @classmethod
    def build(
        cls, layout: Layout, attribute: str, ctx: ExecutionContext | None = None
    ) -> "HashIndex":
        """Index every row of *layout* on *attribute*.

        Build cost (when a context is given): one column scan plus one
        hash insert per row.
        """
        index = cls(attribute)
        for fragment in layout.fragments_for_attribute(attribute):
            start = fragment.region.rows.start
            values = fragment.column(attribute)
            for offset in range(fragment.filled):
                index.insert(values[offset].item() if hasattr(values[offset], "item") else values[offset], start + offset)
        if ctx is not None:
            count = layout.relation.row_count
            ctx.charge(f"index-build({attribute})", count * HASH_CYCLES)
        return index

    def insert(self, key: Hashable, position: int) -> None:
        """Register *key* at *position*; duplicate keys are an error."""
        if key in self._positions:
            raise ExecutionError(
                f"duplicate key {key!r} on indexed attribute {self.attribute!r}"
            )
        self._positions[key] = position

    def delete(self, key: Hashable) -> None:
        """Remove a key (missing keys are an error)."""
        if key not in self._positions:
            raise ExecutionError(f"key {key!r} not in index on {self.attribute!r}")
        del self._positions[key]

    def move(self, key: Hashable, position: int) -> None:
        """Repoint a key at a new position (for re-organizing engines)."""
        if key not in self._positions:
            raise ExecutionError(f"key {key!r} not in index on {self.attribute!r}")
        self._positions[key] = position

    def lookup(self, key: Hashable, ctx: ExecutionContext | None = None) -> int | None:
        """The position of *key*, or None; charges one probe when given a context."""
        if ctx is not None:
            footprint = max(len(self._positions), 1) * ENTRY_BYTES
            probe = ctx.platform.memory_model.random(
                count=1, touched=ENTRY_BYTES, footprint=footprint
            )
            ctx.charge(f"index-probe({self.attribute})", probe + HASH_CYCLES)
        return self._positions.get(key)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, key: object) -> bool:
        return key in self._positions


def point_query(
    layout: Layout,
    index: HashIndex,
    key: Any,
    ctx: ExecutionContext,
) -> tuple[Any, ...] | None:
    """Q1: probe the index, then materialize the full record.

    Returns None when the key does not exist.
    """
    position = index.lookup(key, ctx)
    if position is None:
        return None
    rows = materialize_rows(layout, [position], ctx)
    return rows[0]


class SecondaryIndex:
    """A non-unique equality index: key value -> sorted position list.

    The substrate behind ES2's "distributed secondary indexes" for
    record-centric access, and generally behind Q1-style predicates on
    non-key attributes.  Lookups return the *sorted position list* the
    paper's operators consume downstream.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._positions: dict[Hashable, list[int]] = {}

    @classmethod
    def build(
        cls, layout: Layout, attribute: str, ctx: ExecutionContext | None = None
    ) -> "SecondaryIndex":
        """Index every row of *layout* on *attribute*."""
        index = cls(attribute)
        for fragment in layout.fragments_for_attribute(attribute):
            start = fragment.region.rows.start
            values = fragment.column(attribute)
            for offset in range(fragment.filled):
                value = values[offset]
                index.insert(
                    value.item() if hasattr(value, "item") else value,
                    start + offset,
                )
        if ctx is not None:
            ctx.charge(
                f"index-build({attribute})",
                layout.relation.row_count * HASH_CYCLES,
            )
        return index

    def insert(self, key: Hashable, position: int) -> None:
        """Register one (key, position) pair (duplicates allowed)."""
        bucket = self._positions.setdefault(key, [])
        index = 0
        while index < len(bucket) and bucket[index] < position:
            index += 1
        if index < len(bucket) and bucket[index] == position:
            raise ExecutionError(
                f"position {position} already indexed under key {key!r}"
            )
        bucket.insert(index, position)

    def remove(self, key: Hashable, position: int) -> None:
        """Drop one (key, position) pair."""
        bucket = self._positions.get(key)
        if not bucket or position not in bucket:
            raise ExecutionError(
                f"({key!r}, {position}) not in index on {self.attribute!r}"
            )
        bucket.remove(position)
        if not bucket:
            del self._positions[key]

    def lookup(
        self, key: Hashable, ctx: ExecutionContext | None = None
    ) -> tuple[int, ...]:
        """The sorted positions of *key* (empty tuple when absent)."""
        bucket = self._positions.get(key, ())
        if ctx is not None:
            footprint = max(self.entries, 1) * ENTRY_BYTES
            probe = ctx.platform.memory_model.random(
                count=1, touched=ENTRY_BYTES, footprint=footprint
            )
            walk = ctx.platform.memory_model.sequential(len(bucket) * ENTRY_BYTES)
            ctx.charge(f"index-probe({self.attribute})", probe + HASH_CYCLES + walk)
        return tuple(bucket)

    @property
    def entries(self) -> int:
        """Total (key, position) pairs."""
        return sum(len(bucket) for bucket in self._positions.values())

    def __len__(self) -> int:
        return len(self._positions)
