"""Execution engine: operators, processing models, threading, device."""

from repro.execution.access import AccessDescriptor, AccessKind
from repro.execution.bulk import BulkPipeline, bulk_count_where, bulk_sum
from repro.execution.context import CounterScope, ExecutionContext
from repro.execution.device import (
    device_count_where,
    device_sum_column,
    is_device_resident,
    transfer_fragment,
)
from repro.execution.index import HashIndex, SecondaryIndex, point_query
from repro.execution.operators import (
    aggregate_column,
    filter_scan,
    materialize_rows,
    sum_at_positions,
    sum_column,
    update_field,
)
from repro.execution.threading import (
    MULTI_THREADED_8,
    SINGLE_THREADED,
    ThreadingPolicy,
    blockwise_partition,
)
from repro.execution.volcano import (
    VolcanoOperator,
    VolcanoScan,
    VolcanoSelect,
    VolcanoSum,
    run_volcano,
)

__all__ = [
    "ExecutionContext",
    "CounterScope",
    "ThreadingPolicy",
    "SINGLE_THREADED",
    "MULTI_THREADED_8",
    "blockwise_partition",
    "AccessKind",
    "AccessDescriptor",
    "sum_column",
    "aggregate_column",
    "sum_at_positions",
    "materialize_rows",
    "filter_scan",
    "update_field",
    "device_sum_column",
    "device_count_where",
    "transfer_fragment",
    "is_device_resident",
    "HashIndex",
    "SecondaryIndex",
    "point_query",
    "BulkPipeline",
    "bulk_sum",
    "bulk_count_where",
    "VolcanoOperator",
    "VolcanoScan",
    "VolcanoSelect",
    "VolcanoSum",
    "run_volcano",
]
