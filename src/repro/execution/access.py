"""Access-pattern descriptors (challenge b.i of the paper's intro).

The paper's central dichotomy: *record-centric* access (small subset of
records, large subset of fields per record — OLTP) versus
*attribute-centric* access (large subset of records, small subset of
fields — OLAP).  :class:`AccessDescriptor` quantifies one operation on
both axes so workload statistics, the layout advisor and the adaptive
engines can react to the dichotomy numerically instead of by label.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = ["AccessKind", "AccessDescriptor"]


class AccessKind(enum.Enum):
    """Read/write distinction for workload statistics."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class AccessDescriptor:
    """One operation's footprint on a relation.

    Attributes
    ----------
    kind:
        Read or write.
    attributes:
        The attributes touched.
    row_count:
        Number of rows touched.
    relation_rows:
        Total rows of the relation at the time of access.
    relation_arity:
        Total attributes of the relation.
    """

    kind: AccessKind
    attributes: tuple[str, ...]
    row_count: int
    relation_rows: int
    relation_arity: int

    def __post_init__(self) -> None:
        if self.row_count < 0 or self.relation_rows < 0:
            raise WorkloadError("row counts must be >= 0")
        if not 1 <= len(self.attributes) <= max(self.relation_arity, 1):
            raise WorkloadError(
                f"touched {len(self.attributes)} attributes of "
                f"{self.relation_arity}"
            )

    @property
    def row_selectivity(self) -> float:
        """Fraction of the relation's rows touched (0 on empty relations)."""
        if self.relation_rows == 0:
            return 0.0
        return min(1.0, self.row_count / self.relation_rows)

    @property
    def attribute_selectivity(self) -> float:
        """Fraction of the relation's attributes touched."""
        return len(self.attributes) / self.relation_arity

    @property
    def is_record_centric(self) -> bool:
        """Small row subset, large field subset (the paper's Q1 shape)."""
        return self.row_selectivity <= 0.01 and self.attribute_selectivity >= 0.5

    @property
    def is_attribute_centric(self) -> bool:
        """Large row subset, small field subset (the paper's Q2 shape)."""
        return self.row_selectivity >= 0.5 and self.attribute_selectivity <= 0.5
