"""Bulk (vector-at-a-time) processing with late materialization.

Section II-A: "DSM combined with a Bulk-style processing model is a
good match for analytic processing in main-memory databases due to
improved CPU data cache efficiency."  A bulk pipeline moves vectors of
``vector_size`` positions/values between stages, so the per-call
interface overhead is paid once per *vector* instead of once per tuple
— the structural advantage over Volcano that the processing-model
ablation benchmark quantifies.

Since the fusion layer landed there is exactly **one** vector-at-a-time
code path in the tree: :func:`repro.fusion.host.vector_pass`.  The
classes and helpers here are thin declarative wrappers over it — same
charge sequence, same labels, same outputs as the historical
implementation (the processing-model tests pin that byte-for-byte).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.operators import (
    ADD_CYCLES_PER_VALUE,
    PREDICATE_CYCLES_PER_VALUE,
)
from repro.fusion.host import DEFAULT_VECTOR_SIZE, vector_pass
from repro.layout.layout import Layout

__all__ = ["BulkPipeline", "bulk_sum", "bulk_count_where", "DEFAULT_VECTOR_SIZE"]


class BulkPipeline:
    """A chain of vectorized stages over one attribute of a layout.

    Stages are numpy functions ``array -> array``; the pipeline charges
    the scan's data-access cost, each stage's per-value compute, and one
    interface-call overhead per (stage, vector) pair.  Execution
    delegates to the shared fused vector core
    (:func:`repro.fusion.host.vector_pass`).
    """

    def __init__(
        self,
        layout: Layout,
        attribute: str,
        vector_size: int = DEFAULT_VECTOR_SIZE,
    ) -> None:
        if vector_size < 1:
            raise ExecutionError(f"vector_size must be >= 1, got {vector_size}")
        self.layout = layout
        self.attribute = attribute
        self.vector_size = vector_size
        self._stages: list[tuple[str, Callable[[np.ndarray], np.ndarray], float]] = []

    def map(
        self,
        stage: Callable[[np.ndarray], np.ndarray],
        name: str = "map",
        cycles_per_value: float = 1.0,
    ) -> "BulkPipeline":
        """Append a vectorized stage (returns self for chaining)."""
        self._stages.append((name, stage, cycles_per_value))
        return self

    def collect(self, ctx: ExecutionContext) -> np.ndarray:
        """Run the pipeline and concatenate all output vectors."""
        return vector_pass(
            self.layout, self.attribute, self._stages, ctx, self.vector_size
        )


def bulk_sum(layout: Layout, attribute: str, ctx: ExecutionContext,
             vector_size: int = DEFAULT_VECTOR_SIZE) -> float:
    """Vectorized full-column sum (Q2 under the bulk model)."""
    pipeline = BulkPipeline(layout, attribute, vector_size)
    values = pipeline.collect(ctx)
    count = len(values)
    ctx.charge("bulk-final-add", math.ceil(count / max(vector_size, 1)) * ADD_CYCLES_PER_VALUE)
    return float(np.sum(values)) if count else 0.0


def bulk_count_where(
    layout: Layout,
    attribute: str,
    predicate: Callable[[np.ndarray], np.ndarray],
    ctx: ExecutionContext,
    vector_size: int = DEFAULT_VECTOR_SIZE,
) -> int:
    """Count rows whose *attribute* satisfies a vectorized predicate."""
    pipeline = BulkPipeline(layout, attribute, vector_size).map(
        lambda values: np.asarray(predicate(values), dtype=bool),
        name="predicate",
        cycles_per_value=PREDICATE_CYCLES_PER_VALUE,
    )
    mask = pipeline.collect(ctx)
    return int(np.sum(mask)) if len(mask) else 0
