"""Volcano-style processing: tuple-at-a-time iterators.

Section II-A: "NSM combined with the Volcano-style processing model
suits well for [the record-centric] access pattern in case the costs
for function calls can be hidden by data access costs."  This module
makes that trade measurable: every ``next()`` crossing an operator
boundary costs :attr:`ExecutionContext.call_overhead_cycles`, on top of
the data-access costs the scan charges.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.operators import column_scan_cost
from repro.layout.layout import Layout

__all__ = ["VolcanoOperator", "VolcanoScan", "VolcanoSelect", "VolcanoSum", "run_volcano"]

Row = tuple[Any, ...]


class VolcanoOperator:
    """Base iterator operator: open / next / close.

    Subclasses pull from ``child`` and pay one interface-call overhead
    per ``next()`` they issue (the classic Volcano cost).
    """

    def __init__(self, child: "VolcanoOperator | None" = None) -> None:
        self.child = child
        self._ctx: ExecutionContext | None = None

    @property
    def ctx(self) -> ExecutionContext:
        """The context bound by :meth:`open`."""
        if self._ctx is None:
            raise ExecutionError(f"{type(self).__name__} used before open()")
        return self._ctx

    def open(self, ctx: ExecutionContext) -> None:
        """Bind the context and recurse into the child."""
        self._ctx = ctx
        if self.child is not None:
            self.child.open(ctx)

    def next(self) -> Row | None:
        """Produce the next row, or None when exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources and recurse into the child."""
        if self.child is not None:
            self.child.close()
        self._ctx = None

    def _pull(self) -> Row | None:
        """Fetch one row from the child, paying the call overhead."""
        if self.child is None:
            raise ExecutionError(f"{type(self).__name__} has no child to pull from")
        self.ctx.charge("volcano-calls", self.ctx.call_overhead_cycles)
        return self.child.next()


class VolcanoScan(VolcanoOperator):
    """Leaf scan over a layout, producing projected rows one at a time.

    The scan's data-access cost is charged once at ``open()`` (the bytes
    must be read either way — single-threaded, since Volcano pipelines
    are sequential); the per-tuple production cost is the call overhead
    its consumers pay on every pull.
    """

    def __init__(self, layout: Layout, attributes: Sequence[str] | None = None) -> None:
        super().__init__(None)
        self.layout = layout
        self.attributes = tuple(attributes or layout.relation.schema.names)
        self._cursor = 0

    def open(self, ctx: ExecutionContext) -> None:
        super().open(ctx)
        self._cursor = 0
        memory = 0.0
        compute = 0.0
        for attribute in self.attributes:
            for fragment in self.layout.fragments_for_attribute(attribute):
                fragment_memory, fragment_compute = column_scan_cost(
                    fragment, attribute, ctx
                )
                memory += fragment_memory
                compute += fragment_compute
        ctx.charge("volcano-scan", memory + compute)

    def next(self) -> Row | None:
        if self._cursor >= self.layout.relation.row_count:
            return None
        row = self.layout.read_row(self._cursor)
        positions = [
            self.layout.relation.schema.position_of(name) for name in self.attributes
        ]
        self._cursor += 1
        return tuple(row[position] for position in positions)


class VolcanoSelect(VolcanoOperator):
    """Row-at-a-time selection with a Python predicate."""

    def __init__(
        self, child: VolcanoOperator, predicate: Callable[[Row], bool]
    ) -> None:
        super().__init__(child)
        self.predicate = predicate

    def next(self) -> Row | None:
        while True:
            row = self._pull()
            if row is None:
                return None
            self.ctx.charge("volcano-predicate", 2.0)
            if self.predicate(row):
                return row


class VolcanoSum(VolcanoOperator):
    """Aggregates one column position of its input into a single row."""

    def __init__(self, child: VolcanoOperator, column_index: int = 0) -> None:
        super().__init__(child)
        self.column_index = column_index
        self._done = False

    def open(self, ctx: ExecutionContext) -> None:
        super().open(ctx)
        self._done = False

    def next(self) -> Row | None:
        if self._done:
            return None
        total = 0.0
        while True:
            row = self._pull()
            if row is None:
                break
            self.ctx.charge("volcano-add", 1.0)
            total += float(row[self.column_index])
        self._done = True
        return (total,)


def run_volcano(root: VolcanoOperator, ctx: ExecutionContext) -> list[Row]:
    """Drive a Volcano plan to completion and collect its rows."""
    root.open(ctx)
    try:
        rows: list[Row] = []
        while True:
            ctx.charge("volcano-calls", ctx.call_overhead_cycles)
            row = root.next()
            if row is None:
                return rows
            rows.append(row)
    finally:
        root.close()
