"""Relational operators with a data plane and a cost plane.

Every operator does two things at once:

* **data plane** — computes the correct answer from the fragments'
  numpy arrays (so tests can assert results, not just costs);
* **cost plane** — charges the execution context the cycles the access
  pattern would cost on the simulated platform, respecting the
  fragment's linearization (NSM scans are strided, DSM scans are
  sequential streams, point accesses are random) and the context's
  threading policy.

Join processing is deliberately absent: the paper excludes join costs
("we consider costs starting right after the output (i.e., sorted
position lists) of the last directly preceding join operator is
available"), so operators here accept position lists directly.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.hardware.event import Cycles
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.perf.cost_cache import (
    active_cost_cache,
    cache_usable,
    fragment_fingerprint,
    platform_fingerprint,
)

__all__ = [
    "sum_column",
    "aggregate_column",
    "aggregate_reducer",
    "combine_partials",
    "sum_at_positions",
    "materialize_rows",
    "filter_scan",
    "update_field",
    "column_scan_cost",
]

#: ALU cycles to add one value into an accumulator (scalar, no SIMD).
ADD_CYCLES_PER_VALUE: Cycles = 1.0
#: ALU cycles to copy one field during materialization.
COPY_CYCLES_PER_FIELD: Cycles = 2.0
#: ALU cycles to evaluate one predicate during a filter scan.
PREDICATE_CYCLES_PER_VALUE: Cycles = 2.0


def _is_row_major(fragment: Fragment) -> bool:
    """Whether consecutive bytes in the fragment belong to one tuplet."""
    if fragment.linearization is LinearizationKind.NSM:
        return True
    return (
        fragment.linearization is LinearizationKind.DIRECT
        and fragment.region.is_row
    )


def column_scan_cost(fragment: Fragment, attribute: str, ctx: ExecutionContext) -> tuple[Cycles, Cycles]:
    """(bandwidth-bound, compute) cycles of scanning one column of a fragment.

    DSM/direct columns stream contiguously; NSM columns are strided by
    the record width (the hardware pulls whole lines regardless, which
    is exactly the paper's misplacement penalty (ii): "unnecessary
    loading of additional data into the cache").

    The result is a pure function of the platform's model parameters
    and the fragment's geometry, so it is memoized in the process-wide
    :class:`~repro.perf.cost_cache.CostCache` — except while a fault
    injector is armed, when every costing recomputes (see
    docs/PERFORMANCE.md).
    """
    cache = active_cost_cache()
    key = None
    if cache is not None and cache_usable(ctx.platform):
        key = (
            "column-scan",
            platform_fingerprint(ctx.platform),
            fragment_fingerprint(fragment),
            attribute,
        )
        memoized = cache.get(key)
        if memoized is not None:
            return memoized
    model = ctx.platform.memory_model
    width = fragment.schema.attribute(attribute).width
    count = fragment.filled
    if count == 0:
        return 0.0, 0.0
    if _is_row_major(fragment):
        memory = model.strided(
            count=count,
            stride=fragment.schema.record_width,
            touched=width,
            footprint=fragment.nbytes,
        )
    else:
        # Compressed columns stream their (smaller) encoded footprint.
        memory = model.sequential(
            fragment.nbytes if fragment.is_compressed else count * width
        )
    compute = count * ADD_CYCLES_PER_VALUE
    if fragment.is_compressed and fragment.compression is not None:
        compute += count * fragment.compression.codec.decode_cycles_per_value
    if key is not None:
        cache.put(key, (memory, compute))
    return memory, compute


def sum_column(layout: Layout, attribute: str, ctx: ExecutionContext) -> float:
    """Attribute-centric aggregation: sum one attribute over all rows.

    This is the paper's Q2 (``SELECT sum(a) FROM R``), executed with the
    bulk processing model and the context's threading policy.
    """
    fragments = layout.fragments_for_attribute(attribute)
    total = 0.0
    memory: Cycles = 0.0
    compute: Cycles = 0.0
    for fragment in fragments:
        if not fragment.is_phantom:
            values = fragment.column(attribute)
            total += float(np.sum(values)) if len(values) else 0.0
        fragment_memory, fragment_compute = column_scan_cost(fragment, attribute, ctx)
        memory += fragment_memory
        compute += fragment_compute
    cycles = ctx.platform.cpu.parallelize(
        compute_cycles=compute,
        memory_cycles=memory,
        threads=ctx.threading.threads,
    )
    # The span wraps only the charge: all of the operator's simulated
    # time accrues at this single point, so the span's begin/end cycles
    # bracket exactly the operator's cost (zero observer effect).
    with ctx.span(f"sum({attribute})", "operator", rows=layout.relation.row_count):
        ctx.charge(f"sum({attribute})", cycles)
        ctx.counters.instructions += int(compute)
    return total


#: Supported aggregate names -> (numpy reducer, identity for empty input).
_AGGREGATES = {
    "sum": (np.sum, 0.0),
    "min": (np.min, None),
    "max": (np.max, None),
    "mean": (np.mean, None),
    "count": (len, 0),
}


def aggregate_reducer(op: str) -> tuple[Callable[..., Any], Any]:
    """The ``(reducer, identity-for-empty-input)`` pair behind *op*.

    Shared vocabulary between the unfused operators here and the fused
    pipelines in :mod:`repro.fusion` — both sides must reduce with the
    same numpy expression for byte-identical answers.
    """
    if op not in _AGGREGATES:
        raise ExecutionError(
            f"unknown aggregate {op!r}; choose from {sorted(_AGGREGATES)}"
        )
    return _AGGREGATES[op]


def combine_partials(
    op: str, partials: Sequence[Any], counts: Sequence[int]
) -> float | int | None:
    """Combine per-fragment aggregate partials into one answer.

    This is the (only) combine step of :func:`aggregate_column`, split
    out so the fused executors reproduce it expression-for-expression:
    a fused pipeline computes the *same* per-fragment partials in the
    same fragment order and must fold them with the same float
    operations, or results stop being byte-identical to the oracle.
    """
    identity = aggregate_reducer(op)[1]
    if not partials:
        return identity
    if op == "sum":
        return float(np.sum(partials))
    if op == "min":
        return float(np.min(partials))
    if op == "max":
        return float(np.max(partials))
    if op == "count":
        return int(np.sum(partials))
    # mean: combine partial means weighted by fragment sizes.
    total = sum(float(p) * c for p, c in zip(partials, counts))
    return total / sum(counts)


def aggregate_column(
    layout: Layout, attribute: str, op: str, ctx: ExecutionContext
) -> float | int | None:
    """Attribute-centric aggregation with a named reducer.

    ``op`` is one of ``sum | min | max | mean | count``.  The access
    pattern (and therefore the cost) is identical to :func:`sum_column`
    — one column scan; only the ALU combine differs.  Empty relations
    return the op's identity (None for min/max/mean).
    """
    reducer, __ = aggregate_reducer(op)
    fragments = layout.fragments_for_attribute(attribute)
    partials: list[Any] = []
    counts: list[int] = []
    memory: Cycles = 0.0
    compute: Cycles = 0.0
    for fragment in fragments:
        if not fragment.is_phantom and fragment.filled:
            values = fragment.column(attribute)
            partials.append(reducer(values))
            counts.append(fragment.filled)
        fragment_memory, fragment_compute = column_scan_cost(fragment, attribute, ctx)
        memory += fragment_memory
        compute += fragment_compute
    cycles = ctx.platform.cpu.parallelize(
        compute_cycles=compute,
        memory_cycles=memory,
        threads=ctx.threading.threads,
    )
    with ctx.span(f"{op}({attribute})", "operator", rows=layout.relation.row_count):
        ctx.charge(f"{op}({attribute})", cycles)
    return combine_partials(op, partials, counts)


def _positions_by_fragment(
    fragments: Sequence[Fragment], positions: Sequence[int]
) -> list[tuple[Fragment, list[int]]]:
    """Group global row positions by owning fragment (fragments in row order)."""
    grouped: list[tuple[Fragment, list[int]]] = []
    for fragment in fragments:
        rows = fragment.region.rows
        local = [
            position - rows.start for position in positions if rows.contains(position)
        ]
        if local:
            grouped.append((fragment, local))
    covered = sum(len(local) for __, local in grouped)
    if covered != len(positions):
        raise ExecutionError(
            f"{covered} of {len(positions)} positions routed; layout does not "
            "cover the position list"
        )
    return grouped


def sum_at_positions(
    layout: Layout,
    attribute: str,
    positions: Sequence[int],
    ctx: ExecutionContext,
) -> float:
    """Record-centric aggregation: sum *attribute* over a position list.

    The positions are the sorted output of a preceding join (Figure 2's
    "sum prices of 150 items"); each one is a point access.
    """
    fragments = layout.fragments_for_attribute(attribute)
    model = ctx.platform.memory_model
    total = 0.0
    latency: Cycles = 0.0
    compute: Cycles = 0.0
    for fragment, local in _positions_by_fragment(fragments, positions):
        width = fragment.schema.attribute(attribute).width
        if not fragment.is_phantom:
            column = fragment.column(attribute)
            total += float(np.sum(column[np.asarray(local, dtype=np.int64)]))
        latency += model.random(
            count=len(local), touched=width, footprint=fragment.nbytes
        )
        compute += len(local) * ADD_CYCLES_PER_VALUE
    cycles = ctx.platform.cpu.parallelize(
        compute_cycles=compute,
        memory_cycles=0.0,
        threads=ctx.threading.threads,
        latency_bound_cycles=latency,
    )
    with ctx.span(
        f"sum({attribute})@positions", "operator", rows=len(positions)
    ):
        ctx.charge(f"sum({attribute})@{len(positions)}pos", cycles)
    return total


def materialize_rows(
    layout: Layout, positions: Sequence[int], ctx: ExecutionContext
) -> list[tuple[Any, ...]]:
    """Record-centric materialization of whole rows at *positions*.

    This is Figure 2's "materialize 150 customers": the SELECT * tail of
    Q1-style queries.  On an NSM layout each row costs one random record
    access; on a DSM(-emulated) layout it costs one random access *per
    attribute* — the factor that makes the row store win panel 1.
    """
    model = ctx.platform.memory_model
    schema = layout.relation.schema
    results: list[tuple[Any, ...]] = []
    latency: Cycles = 0.0
    compute: Cycles = 0.0

    # Cost plane: group by (fragment, shape); every attribute of every
    # position must be fetched from its owning fragment.
    fragment_positions: dict[int, tuple[Fragment, set[int]]] = {}
    for position in positions:
        for attribute in schema.names:
            fragment = layout.fragment_for(position, attribute)
            entry = fragment_positions.setdefault(id(fragment), (fragment, set()))
            entry[1].add(position)
    for fragment, rows in fragment_positions.values():
        count = len(rows)
        if _is_row_major(fragment):
            # One random access pulls the whole tuplet.
            latency += model.random(
                count=count,
                touched=fragment.schema.record_width,
                footprint=fragment.nbytes,
            )
        else:
            # One random access per attribute of the fragment.
            for attribute in fragment.schema.names:
                width = fragment.schema.attribute(attribute).width
                latency += model.random(
                    count=count, touched=width, footprint=fragment.nbytes
                )
        compute += count * fragment.schema.arity * COPY_CYCLES_PER_FIELD

    # Data plane (skipped when the layout holds phantom fragments:
    # cost-only benchmark runs have no payload to materialize).
    if not any(fragment.is_phantom for fragment in layout.fragments):
        for position in positions:
            results.append(layout.read_row(position))

    cycles = ctx.platform.cpu.parallelize(
        compute_cycles=compute,
        memory_cycles=0.0,
        threads=ctx.threading.threads,
        latency_bound_cycles=latency,
    )
    with ctx.span("materialize", "operator", rows=len(positions)):
        ctx.charge(f"materialize@{len(positions)}pos", cycles)
    return results


def filter_scan(
    layout: Layout,
    attribute: str,
    predicate: Callable[[np.ndarray], np.ndarray],
    ctx: ExecutionContext,
) -> list[int]:
    """Full scan of one attribute, returning matching global positions.

    *predicate* maps a value array to a boolean mask (vectorized, bulk
    processing model with late materialization — only positions are
    produced, not rows).
    """
    fragments = layout.fragments_for_attribute(attribute)
    matches: list[int] = []
    memory: Cycles = 0.0
    compute: Cycles = 0.0
    for fragment in fragments:
        if fragment.is_phantom:
            raise ExecutionError(
                f"{fragment.label}: filter_scan is data-dependent and cannot "
                "run on phantom fragments"
            )
        values = fragment.column(attribute)
        if len(values) == 0:
            continue
        mask = np.asarray(predicate(values), dtype=bool)
        if mask.shape != values.shape:
            raise ExecutionError(
                f"predicate returned shape {mask.shape} for {values.shape} values"
            )
        start = fragment.region.rows.start
        matches.extend(int(index) + start for index in np.nonzero(mask)[0])
        fragment_memory, __ = column_scan_cost(fragment, attribute, ctx)
        memory += fragment_memory
        compute += fragment.filled * PREDICATE_CYCLES_PER_VALUE
    cycles = ctx.platform.cpu.parallelize(
        compute_cycles=compute,
        memory_cycles=memory,
        threads=ctx.threading.threads,
    )
    with ctx.span(
        f"filter({attribute})", "operator", rows=layout.relation.row_count
    ):
        ctx.charge(f"filter({attribute})", cycles)
    return matches


def update_field(
    layout: Layout, position: int, attribute: str, value: Any, ctx: ExecutionContext
) -> None:
    """Point update of one field (the OLTP write path).

    Every fragment of the layout covering the cell is updated (an
    overlapping layout keeps replicas coherent by construction here;
    replication-based engines charge the extra writes).
    """
    model = ctx.platform.memory_model
    staging = ctx.platform.staging
    touched = 0
    with ctx.span(f"update({attribute})", "operator", position=position):
        for fragment in layout.fragments:
            if fragment.region.contains(position, attribute):
                local = position - fragment.region.rows.start
                fragment.update_field(local, attribute, value)
                # A write makes any staged device replica of this fragment
                # stale: drop it so the next device query re-stages (the
                # fragment's version bump catches missed paths as well).
                staging.invalidate_fragment(fragment)
                width = fragment.schema.attribute(attribute).width
                cycles = model.random(
                    count=1, touched=width, footprint=fragment.nbytes
                )
                ctx.charge(f"update({attribute})", cycles)
                ctx.counters.bytes_written += width
                touched += 1
    if touched == 0:
        raise ExecutionError(f"no fragment covers ({position}, {attribute!r})")
