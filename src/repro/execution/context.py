"""Execution contexts: where operator costs are charged.

An :class:`ExecutionContext` binds a simulated platform to a counter
bundle and a threading policy.  Operators read data out of fragments
(the data plane) and charge the platform's models (the cost plane)
through this object, so a benchmark series is just "same plan, different
context".
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.event import CostBreakdown, Cycles, PerfCounters
from repro.hardware.platform import Platform
from repro.execution.threading import SINGLE_THREADED, ThreadingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.policy import RetryPolicy
    from repro.recovery.wal import WriteAheadLog

__all__ = ["ExecutionContext"]


@dataclass
class ExecutionContext:
    """Per-query execution state.

    Attributes
    ----------
    platform:
        The simulated machine.
    threading:
        Host threading policy for parallelizable operators.
    counters:
        Accumulates cycles and explanatory events across the query.
    breakdown:
        Labelled cost decomposition for reports.
    call_overhead_cycles:
        Cost of one operator-interface call (next()/function call); the
        Volcano model pays it per tuple, the bulk model per vector.
    retry:
        Optional :class:`~repro.faults.RetryPolicy` applied by
        fault-aware operators (device staging transfers); ``None``
        means transient failures propagate on first occurrence.
    wal:
        Optional :class:`~repro.recovery.WriteAheadLog` carried for
        durability-aware components: the re-organizer logs its
        begin/end/abort markers here when present, so a crash
        mid-reorganization is visible to recovery.  ``None`` (the
        default) means the run is not durable and nothing is logged.
    """

    platform: Platform
    threading: ThreadingPolicy = SINGLE_THREADED
    counters: PerfCounters = field(default_factory=PerfCounters)
    breakdown: CostBreakdown = field(default_factory=CostBreakdown)
    call_overhead_cycles: Cycles = 20.0
    retry: "RetryPolicy | None" = None
    wal: "WriteAheadLog | None" = None

    @property
    def cycles(self) -> Cycles:
        """Total cycles charged so far."""
        return self.counters.cycles

    def charge(self, label: str, cycles: Cycles) -> None:
        """Charge raw cycles under a breakdown label."""
        self.counters.charge(cycles)
        self.breakdown.add(label, cycles)

    def note(self, label: str, cycles: Cycles) -> None:
        """Record a breakdown entry for cycles already counted."""
        self.breakdown.add(label, cycles)

    # ------------------------------------------------------------------
    # Tracing hooks (no-ops when the platform carries no tracer)
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "operator", **attrs):
        """A traced region on this context's simulated timeline.

        Context manager yielding the open
        :class:`~repro.obs.Span` — or ``None`` when the platform has no
        tracer, so instrumented code can guard annotations with
        ``if span is not None``.  Purely observational: entering or
        exiting a span never charges a cycle (the zero-observer-effect
        contract of :mod:`repro.obs`).
        """
        tracer = self.platform.tracer
        if tracer is None:
            return nullcontext(None)
        return tracer.span(name, category, self.counters, **attrs)

    def instant(self, name: str, category: str = "operator", **attrs) -> None:
        """Record a zero-duration trace event at the current cycle."""
        tracer = self.platform.tracer
        if tracer is not None:
            tracer.instant(name, category, self.counters, **attrs)

    def seconds(self) -> float:
        """Wall-clock seconds of the charged total on this platform."""
        return self.platform.seconds(self.counters.cycles)

    def render_breakdown(self, top: int = 10) -> str:
        """A human-readable table of the largest cost components.

        Shows up to *top* labels by cycles with their share of the
        total — what the examples print when explaining where a
        configuration's time went.
        """
        parts = sorted(
            self.breakdown.parts.items(), key=lambda item: -item[1]
        )[: max(top, 0)]
        total = self.breakdown.total or 1.0
        lines = [
            f"{label:<40s} {cycles / self.platform.cpu.frequency_hz * 1e3:10.4f} ms "
            f"{cycles / total * 100:5.1f}%"
            for label, cycles in parts
        ]
        return "\n".join(lines)

    def fork(self) -> "ExecutionContext":
        """A context sharing platform/policy/log but with fresh counters."""
        return ExecutionContext(
            platform=self.platform,
            threading=self.threading,
            call_overhead_cycles=self.call_overhead_cycles,
            retry=self.retry,
            wal=self.wal,
        )
