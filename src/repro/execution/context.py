"""Execution contexts: where operator costs are charged.

An :class:`ExecutionContext` binds a simulated platform to a counter
bundle and a threading policy.  Operators read data out of fragments
(the data plane) and charge the platform's models (the cost plane)
through this object, so a benchmark series is just "same plan, different
context".

Concurrent serving (``repro.serving``) interleaves many queries on one
simulated timeline, so one flat counter bundle is not enough: every
query needs its *own* counters (for per-query latency and metrics
attribution) while the platform still needs an exact total.
:class:`CounterScope` is that mechanism.  A scope is opened at a point
on the timeline (:meth:`ExecutionContext.open_scope`), *activated* to
receive every charge the operators make while it runs
(:meth:`ExecutionContext.activate` swaps the context's counter bundle —
operators read ``ctx.counters`` dynamically, so nothing else changes),
and finally *settled* into the root counters exactly once
(:meth:`ExecutionContext.settle`).  The invariant the serving tier's
property tests pin down: after every scope is settled, the root totals
equal the element-wise sum of all scope deltas — no charge is lost and
none is double-counted, under any interleaving.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import ExecutionError
from repro.hardware.event import CostBreakdown, Cycles, PerfCounters
from repro.hardware.platform import Platform
from repro.execution.threading import SINGLE_THREADED, ThreadingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.policy import RetryPolicy
    from repro.recovery.wal import WriteAheadLog

__all__ = ["CounterScope", "ExecutionContext"]


class CounterScope:
    """One query's (or one batch's) private slice of the counter plane.

    Attributes
    ----------
    name:
        Scope label — the metrics registry observes the scope's delta
        under this name.
    counters:
        The scope's own :class:`~repro.hardware.event.PerfCounters`.
        Its ``cycles`` field is *seeded* with the timeline position the
        scope opened at, so tracer spans recorded inside the scope are
        stamped at the right simulated instant; :meth:`delta` subtracts
        the seed again.
    breakdown:
        The scope's own labelled cost decomposition.
    baseline_cycles:
        The timeline position the scope opened at (the cycles seed).
    settled:
        Whether the scope's delta has been folded into the root
        counters; a scope settles exactly once.
    """

    def __init__(self, name: str, at_cycles: Cycles = 0.0) -> None:
        self.name = name
        self.counters = PerfCounters(cycles=at_cycles)
        self.breakdown = CostBreakdown()
        self.baseline_cycles = at_cycles
        self.settled = False

    def delta(self) -> PerfCounters:
        """The scope's own charges: its counters minus the cycles seed.

        Every field except ``cycles`` started at zero, so the snapshot
        is the delta; ``cycles`` subtracts the opening baseline.  Safe
        to call at any time (it copies).
        """
        bundle = PerfCounters(**self.counters.snapshot())
        bundle.cycles -= self.baseline_cycles
        return bundle

    @property
    def cycles(self) -> Cycles:
        """Cycles charged inside the scope so far (baseline excluded)."""
        return self.counters.cycles - self.baseline_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CounterScope({self.name!r}, cycles={self.cycles!r}, "
            f"settled={self.settled})"
        )


@dataclass
class ExecutionContext:
    """Per-query execution state.

    Attributes
    ----------
    platform:
        The simulated machine.
    threading:
        Host threading policy for parallelizable operators.
    counters:
        Accumulates cycles and explanatory events across the query.
    breakdown:
        Labelled cost decomposition for reports.
    call_overhead_cycles:
        Cost of one operator-interface call (next()/function call); the
        Volcano model pays it per tuple, the bulk model per vector.
    retry:
        Optional :class:`~repro.faults.RetryPolicy` applied by
        fault-aware operators (device staging transfers); ``None``
        means transient failures propagate on first occurrence.
    wal:
        Optional :class:`~repro.recovery.WriteAheadLog` carried for
        durability-aware components: the re-organizer logs its
        begin/end/abort markers here when present, so a crash
        mid-reorganization is visible to recovery.  ``None`` (the
        default) means the run is not durable and nothing is logged.
    """

    platform: Platform
    threading: ThreadingPolicy = SINGLE_THREADED
    counters: PerfCounters = field(default_factory=PerfCounters)
    breakdown: CostBreakdown = field(default_factory=CostBreakdown)
    call_overhead_cycles: Cycles = 20.0
    retry: "RetryPolicy | None" = None
    wal: "WriteAheadLog | None" = None
    #: Activation stack: ``(saved_counters, saved_breakdown, scope)``
    #: per active scope; the bottom entry holds the root bundles.
    _scope_stack: list = field(default_factory=list, init=False, repr=False)

    @property
    def cycles(self) -> Cycles:
        """Total cycles charged so far."""
        return self.counters.cycles

    # ------------------------------------------------------------------
    # Counter scopes (interleaved-query accounting)
    # ------------------------------------------------------------------
    def open_scope(
        self, name: str, at_cycles: Cycles | None = None
    ) -> CounterScope:
        """A fresh :class:`CounterScope` positioned on the timeline.

        *at_cycles* seeds the scope's cycle counter (an event loop
        passes its simulated *now* so spans inside the scope are
        stamped at the dispatch instant); omitted, the scope opens at
        the currently-active bundle's cycle position.  Opening does not
        activate: charges keep landing wherever they landed before.
        """
        start = self.counters.cycles if at_cycles is None else at_cycles
        return CounterScope(name, start)

    @contextmanager
    def activate(self, scope: CounterScope) -> Iterator[CounterScope]:
        """Route every charge to *scope* for the duration of the block.

        Swaps the context's ``counters``/``breakdown`` for the scope's
        own bundles — operators resolve ``ctx.counters`` dynamically,
        so every charge, span, and fault tally inside the block lands
        in the scope.  Activations nest (a rebalance scope may wrap
        interleaved per-query scopes) and restore the previous bundles
        on exit even when the block raises.  A settled scope cannot be
        re-activated: its delta is already in the root totals, and new
        charges would be lost.
        """
        if scope.settled:
            raise ExecutionError(
                f"scope {scope.name!r} is already settled; "
                "charges made now would never reach the root totals"
            )
        self._scope_stack.append((self.counters, self.breakdown, scope))
        self.counters = scope.counters
        self.breakdown = scope.breakdown
        try:
            yield scope
        finally:
            saved_counters, saved_breakdown, __ = self._scope_stack.pop()
            self.counters = saved_counters
            self.breakdown = saved_breakdown

    def settle(self, scope: CounterScope) -> PerfCounters:
        """Fold *scope*'s delta into the root totals, exactly once.

        Merges the scope's counter delta and breakdown into the *root*
        bundles (the bottom of the activation stack — the context's
        original counters, wherever the call happens in a nest) and
        marks the scope settled.  Settling twice, or settling a scope
        that is still active, is a hard error: either would break the
        exactly-once attribution invariant the serving metrics gate
        asserts.  Returns the delta so callers can observe it (e.g.
        into a :class:`~repro.obs.MetricsRegistry`) without recomputing.
        """
        if scope.settled:
            raise ExecutionError(f"scope {scope.name!r} already settled")
        if any(active is scope for __, __, active in self._scope_stack):
            raise ExecutionError(
                f"scope {scope.name!r} is still active; deactivate before "
                "settling"
            )
        scope.settled = True
        delta = scope.delta()
        if self._scope_stack:
            root_counters, root_breakdown, __ = self._scope_stack[0]
        else:
            root_counters, root_breakdown = self.counters, self.breakdown
        root_counters.merge(delta)
        for label, cycles in scope.breakdown.parts.items():
            root_breakdown.add(label, cycles)
        return delta

    def charge(self, label: str, cycles: Cycles) -> None:
        """Charge raw cycles under a breakdown label."""
        self.counters.charge(cycles)
        self.breakdown.add(label, cycles)

    def note(self, label: str, cycles: Cycles) -> None:
        """Record a breakdown entry for cycles already counted."""
        self.breakdown.add(label, cycles)

    # ------------------------------------------------------------------
    # Tracing hooks (no-ops when the platform carries no tracer)
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "operator", **attrs):
        """A traced region on this context's simulated timeline.

        Context manager yielding the open
        :class:`~repro.obs.Span` — or ``None`` when the platform has no
        tracer, so instrumented code can guard annotations with
        ``if span is not None``.  Purely observational: entering or
        exiting a span never charges a cycle (the zero-observer-effect
        contract of :mod:`repro.obs`).
        """
        tracer = self.platform.tracer
        if tracer is None:
            return nullcontext(None)
        return tracer.span(name, category, self.counters, **attrs)

    def instant(self, name: str, category: str = "operator", **attrs) -> None:
        """Record a zero-duration trace event at the current cycle."""
        tracer = self.platform.tracer
        if tracer is not None:
            tracer.instant(name, category, self.counters, **attrs)

    def seconds(self) -> float:
        """Wall-clock seconds of the charged total on this platform."""
        return self.platform.seconds(self.counters.cycles)

    def render_breakdown(self, top: int = 10) -> str:
        """A human-readable table of the largest cost components.

        Shows up to *top* labels by cycles with their share of the
        total — what the examples print when explaining where a
        configuration's time went.
        """
        parts = sorted(
            self.breakdown.parts.items(), key=lambda item: -item[1]
        )[: max(top, 0)]
        total = self.breakdown.total or 1.0
        lines = [
            f"{label:<40s} {cycles / self.platform.cpu.frequency_hz * 1e3:10.4f} ms "
            f"{cycles / total * 100:5.1f}%"
            for label, cycles in parts
        ]
        return "\n".join(lines)

    def fork(self) -> "ExecutionContext":
        """A context sharing platform/policy/log but with fresh counters."""
        return ExecutionContext(
            platform=self.platform,
            threading=self.threading,
            call_overhead_cycles=self.call_overhead_cycles,
            retry=self.retry,
            wal=self.wal,
        )
