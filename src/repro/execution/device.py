"""Device-side execution: GPU kernels and host<->device staging.

Reproduces the paper's device configuration: an optimized two-pass
parallel reduction (>= 1024 blocks x 512 threads, final pass 1 block x
1024 threads) over a column, with the host<->device transfer charged —
or not — depending on whether the column is already device-resident
(Figure 2, panels 3 vs. 4).

Host-resident columns are served through the platform's
:class:`~repro.staging.StagingManager` (``platform.staging``): a repeat
query finds its device replica in the staging cache and pays no PCIe at
all, a miss stages the column in one coalesced burst, and a column that
cannot fit even after evicting every cached replica falls back to the
historical bounce-buffer streaming path — whose charges are
byte-identical to the pre-cache code, so a cold cache reproduces the
old cost sequence exactly.

Resilience: staging transfers are retried under the context's
:class:`~repro.faults.RetryPolicy`, injected device-OOM is absorbed by
evicting staged replicas (surfacing as
:class:`~repro.errors.DeviceError` only when the cache has nothing to
give back), and any fault that survives the retries propagates so the
calling engine's fallback chain can degrade to the host path (recording
which path actually served the query).
"""

from __future__ import annotations

import numpy as np

import math

from repro.errors import CapacityError, ExecutionError, PlacementError
from repro.execution.context import ExecutionContext
from repro.faults.injector import SITE_PCIE_TRANSFER
from repro.hardware.event import Cycles, PerfCounters
from repro.hardware.memory import MemoryKind, MemorySpace
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout

__all__ = [
    "device_sum_column",
    "device_count_where",
    "transfer_fragment",
    "ensure_resident",
    "is_device_resident",
]


def _staging_transfer(
    attribute: str, staged_bytes: int, ctx: ExecutionContext
) -> Cycles:
    """Charge the host->device staging copy, retrying injected faults.

    The retry policy comes from the context; without one, a
    :class:`~repro.errors.TransferError` propagates on first failure
    (callers degrade to the host path via their fallback chains).
    Every attempt — failed ones included — charges its wire time, so
    resilience is visible in the measured cycle count.
    """
    scheduler = ctx.platform.staging.scheduler

    def attempt() -> Cycles:
        return scheduler.transfer(staged_bytes, ctx.counters)

    if ctx.retry is not None:
        return ctx.retry.run(f"pcie-transfer({attribute})", attempt, ctx)
    return attempt()


def is_device_resident(fragment: Fragment) -> bool:
    """Whether a fragment's payload lives in device memory."""
    return fragment.space.kind is MemoryKind.DEVICE


def transfer_fragment(
    fragment: Fragment, space: MemorySpace, ctx: ExecutionContext, label: str = ""
) -> Fragment:
    """Copy a fragment into *space*, charging the PCIe transfer.

    Raises :class:`~repro.errors.CapacityError` when the target space
    cannot hold it — the trigger of CoGaDB's all-or-nothing fallback —
    and :class:`~repro.errors.PlacementError` when the fragment already
    lives there (use :func:`ensure_resident` for the idempotent form).
    """
    if fragment.space is space:
        raise PlacementError(
            f"{fragment.label}: already resident in {space.name}"
        )
    clone = fragment.copy_to(space, label)
    cost = ctx.platform.staging.scheduler.transfer(fragment.nbytes, ctx.counters)
    ctx.note(f"transfer({fragment.label})", cost)
    return clone


def ensure_resident(
    fragment: Fragment, space: MemorySpace, ctx: ExecutionContext, label: str = ""
) -> Fragment:
    """Idempotent placement: the fragment in *space*, transferring if needed.

    Returns *fragment* unchanged (and charges nothing) when it already
    lives in *space*; otherwise behaves exactly like
    :func:`transfer_fragment`.  This is the helper engines deduplicate
    their copy-then-charge sequences onto — re-placing an
    already-placed column is a no-op, not a
    :class:`~repro.errors.PlacementError`.
    """
    if fragment.space is space:
        return fragment
    return transfer_fragment(fragment, space, ctx, label)


def _chunked_reduction_cost(
    ctx: ExecutionContext, count: int, per_chunk: int, width: int
) -> Cycles:
    """Charge a chunked reduction without pricing every chunk separately.

    A chunked staging loop runs ``count // per_chunk`` full chunks plus
    at most one remainder chunk, so only two distinct kernel costs
    exist.  Each is priced once against a scratch counter, then the
    per-chunk charges are replayed with seeded ``np.cumsum`` (strict
    left-to-right accumulation) so cycles and device-cycles — and the
    integer launch counts — land byte-identical to the per-chunk loop.
    """
    gpu = ctx.platform.gpu
    n_full, remainder = divmod(count, per_chunk)
    costs: list[Cycles] = []
    device_cycles: list[float] = []
    launches = 0
    if n_full:
        probe = PerfCounters()
        full_cost = gpu.reduction_cost(per_chunk, width, probe)
        costs.extend([full_cost] * n_full)
        device_cycles.extend([probe.device_cycles] * n_full)
        launches += probe.kernel_launches * n_full
    if remainder:
        probe = PerfCounters()
        costs.append(gpu.reduction_cost(remainder, width, probe))
        device_cycles.append(probe.device_cycles)
        launches += probe.kernel_launches
    counters = ctx.counters
    kernel_cost = _seeded_sum(0.0, costs)
    counters.cycles = _seeded_sum(counters.cycles, costs)
    counters.device_cycles = _seeded_sum(counters.device_cycles, device_cycles)
    counters.kernel_launches += launches
    return kernel_cost


def _seeded_sum(seed: float, values: list[float]) -> float:
    """Strict left-to-right float sum of *values* starting from *seed*."""
    accumulator = np.empty(len(values) + 1, dtype=np.float64)
    accumulator[0] = seed
    accumulator[1:] = values
    np.cumsum(accumulator, out=accumulator)
    return float(accumulator[-1])


def _even_split(total: int, parts: int) -> list[int]:
    """Split *total* bytes into *parts* near-equal positive chunks."""
    base, extra = divmod(total, parts)
    return [base + 1] * extra + [base] * (parts - extra)


def _overlapped_staging(
    ctx: ExecutionContext,
    attribute: str,
    staged_bytes: int,
    count: int,
    chunks: int,
    width: int,
) -> Cycles:
    """Charge a double-buffered chunked staging loop (overlap model).

    Chunk *i*'s kernel runs while chunk *i+1* is in flight, so the
    total is the pipelined critical path instead of transfer + kernel
    serially; the hidden cycles are tallied in ``overlapped_cycles``.
    Returns the kernel portion's serial cost for the breakdown (the
    transfer portion is reported under ``overlapped-staging``).
    """
    platform = ctx.platform
    scheduler = platform.staging.scheduler
    per_chunk = math.ceil(count / chunks)
    kernel_parts = platform.gpu.chunk_reduction_costs(count, per_chunk, width)
    n = len(kernel_parts)
    sizes = _even_split(staged_bytes, n)
    interconnect = platform.interconnect
    transfer_parts = [
        interconnect.transfer_seconds(size) * interconnect.host_frequency_hz
        for size in sizes
    ]
    kernel_costs = [cost for cost, _, _ in kernel_parts]
    total, savings = scheduler.pipeline_cost(transfer_parts, kernel_costs)

    def attempt() -> Cycles:
        # Wire time and kernel time are interleaved on the critical
        # path, so the whole pipelined charge lands per attempt — and
        # shows up as one span per attempt, like the burst path.
        with ctx.span(
            "overlapped-staging", "pcie", bytes=staged_bytes, chunks=n
        ):
            ctx.counters.cycles += total
            if platform.injector is not None:
                platform.injector.check(SITE_PCIE_TRANSFER, ctx.counters)
        return total

    if ctx.retry is not None:
        ctx.retry.run(f"pcie-transfer({attribute})", attempt, ctx)
    else:
        attempt()
    counters = ctx.counters
    counters.bytes_transferred += staged_bytes
    counters.pcie_bytes += staged_bytes
    counters.transfers += n
    metrics = getattr(platform, "metrics", None)
    if metrics is not None:
        metrics.record(
            "pcie.bytes", float(staged_bytes), cycle=counters.cycles,
            layer="pcie",
        )
        metrics.record(
            "pcie.transfers", float(n), cycle=counters.cycles, layer="pcie"
        )
    counters.overlapped_cycles += savings
    counters.device_cycles += sum(part for _, part, _ in kernel_parts)
    counters.kernel_launches += sum(launches for _, _, launches in kernel_parts)
    ctx.note("overlapped-staging", total)
    return total


def device_sum_column(
    layout: Layout,
    attribute: str,
    ctx: ExecutionContext,
    charge_transfer: bool = True,
) -> float:
    """Sum one attribute on the GPU (the paper's reduction kernel).

    For every fragment covering *attribute*:

    * if it is device-resident, only the kernel cost is charged;
    * if the staging cache holds a fresh device replica, the replica
      serves the read and no PCIe is charged (a staging hit);
    * otherwise the column is staged through ``platform.staging`` — one
      coalesced burst installs a cached replica for the next query —
      unless ``charge_transfer`` is False, which reproduces panel 4's
      "transfer costs to device excluded" accounting (the data plane
      still computes the true sum either way).

    Staging adapts to device-memory pressure (Bress, Funke & Teubner's
    robustness strategies): when the column cannot be cached even after
    LRU eviction, it streams through a bounce buffer sized to the free
    device memory, processed in chunks — same total traffic, one extra
    kernel launch per chunk (and, with ``platform.staging.overlap``
    enabled, double-buffered so transfer hides behind compute).  A
    device with no free memory at all raises
    :class:`~repro.errors.CapacityError`, which callers (CoGaDB's HyPE)
    turn into a host fallback.
    """
    fragments = layout.fragments_for_attribute(attribute)
    if not fragments:
        return 0.0  # empty relation: nothing to reduce, no launch issued
    staging = ctx.platform.staging
    width = fragments[0].schema.attribute(attribute).width
    with ctx.span(
        f"device-sum({attribute})",
        "operator",
        on_device=all(is_device_resident(fragment) for fragment in fragments),
    ):
        total = 0.0
        count = 0
        misses: list[Fragment] = []
        for fragment in fragments:
            count += fragment.filled
            if is_device_resident(fragment):
                if not fragment.is_phantom:
                    values = fragment.column(attribute)
                    total += float(np.sum(values)) if len(values) else 0.0
                continue
            entry = (
                staging.lookup(fragment, attribute, ctx.counters)
                if charge_transfer
                else None
            )
            if entry is not None:
                # The replica serves the read: a stale entry here would be
                # a wrong answer, which is what the invalidation regression
                # tests check for.
                if entry.values is not None and len(entry.values):
                    total += float(np.sum(entry.values))
                continue
            if not fragment.is_phantom:
                values = fragment.column(attribute)
                total += float(np.sum(values)) if len(values) else 0.0
            misses.append(fragment)

        chunks = 1
        kernel_charged = False
        staged_bytes = sum(fragment.filled * width for fragment in misses)
        if staged_bytes and charge_transfer:
            entries = staging.acquire(misses, attribute, width, ctx)
            if entries is None:
                # The column cannot be cached: stream it through a bounce
                # buffer exactly as the pre-cache path did.
                device = ctx.platform.device_memory
                buffer_bytes = min(staged_bytes, device.available)
                if buffer_bytes < width:
                    raise CapacityError(
                        f"device memory exhausted: {device.available} B free, "
                        f"cannot stage even one {width} B element of "
                        f"{attribute!r}"
                    )
                bounce = device.allocate(buffer_bytes, f"stage({attribute})")
                try:
                    chunks = math.ceil(staged_bytes / buffer_bytes)
                    if staging.overlap and chunks > 1 and count:
                        _overlapped_staging(
                            ctx, attribute, staged_bytes, count, chunks, width
                        )
                        kernel_charged = True
                    else:
                        cost = _staging_transfer(attribute, staged_bytes, ctx)
                        ctx.note("pcie-transfer", cost)
                finally:
                    device.free(bounce)
        if count and not kernel_charged:
            with ctx.span(
                f"gpu-reduce({attribute})", "kernel", elements=count, chunks=chunks
            ):
                if chunks == 1:
                    kernel_cost = ctx.platform.gpu.reduction_cost(
                        count, width, ctx.counters
                    )
                else:
                    per_chunk = math.ceil(count / chunks)
                    kernel_cost = _chunked_reduction_cost(
                        ctx, count, per_chunk, width
                    )
                ctx.note(f"gpu-reduce({attribute})", kernel_cost)
        # Returning the scalar to the host is one tiny device->host copy.
        result_cost = ctx.platform.staging.scheduler.transfer(width, ctx.counters)
        ctx.note("result-copy", result_cost)
    return total


def device_count_where(
    layout: Layout,
    attribute: str,
    predicate,
    ctx: ExecutionContext,
    charge_transfer: bool = True,
) -> int:
    """Count rows matching a vectorized predicate, on the GPU.

    The selection kernel streams the column once (bandwidth-bound, like
    the reduction) and reduces the match bitmap on-device, so only the
    scalar count crosses the bus back — the classic GPU selection +
    count fusion.  Host-resident fragments are served from the staging
    cache when possible and staged (with replica installation) on a
    miss, unless ``charge_transfer`` is False.
    """
    fragments = layout.fragments_for_attribute(attribute)
    if not fragments:
        return 0  # empty relation
    staging = ctx.platform.staging
    width = fragments[0].schema.attribute(attribute).width
    with ctx.span(f"device-count-where({attribute})", "operator"):
        matches = 0
        count = 0
        misses: list[Fragment] = []
        for fragment in fragments:
            count += fragment.filled
            entry = None
            if not is_device_resident(fragment):
                entry = (
                    staging.lookup(fragment, attribute, ctx.counters)
                    if charge_transfer
                    else None
                )
                if entry is None:
                    misses.append(fragment)
            if not fragment.is_phantom:
                values = (
                    entry.values
                    if entry is not None and entry.values is not None
                    else fragment.column(attribute)
                )
                if len(values):
                    mask = np.asarray(predicate(values), dtype=bool)
                    if mask.shape != values.shape:
                        raise ExecutionError(
                            f"predicate returned shape {mask.shape} for "
                            f"{values.shape} values"
                        )
                    matches += int(np.sum(mask))
        staged_bytes = sum(fragment.filled * width for fragment in misses)
        if staged_bytes and charge_transfer:
            entries = staging.acquire(misses, attribute, width, ctx)
            if entries is None:
                # No room to cache the replicas: charge the same burst
                # uncached (this path never allocated a bounce buffer).
                cost = _staging_transfer(attribute, staged_bytes, ctx)
                ctx.note("pcie-transfer", cost)
        if count:
            with ctx.span(
                f"gpu-count-where({attribute})", "kernel", elements=count
            ):
                kernel_seconds = ctx.platform.gpu.streaming_kernel_seconds(
                    nbytes=count * width, ops=count * 2  # compare + ballot
                )
                kernel = (
                    ctx.platform.gpu.seconds_to_host_cycles(kernel_seconds)
                    + 2 * ctx.platform.gpu.launch_latency_cycles
                )
                ctx.charge(f"gpu-count-where({attribute})", kernel)
                ctx.counters.kernel_launches += 2
                ctx.counters.device_cycles += (
                    kernel_seconds * ctx.platform.gpu.clock_hz
                )
        result_cost = ctx.platform.staging.scheduler.transfer(8, ctx.counters)
        ctx.note("result-copy", result_cost)
    return matches
