"""Device-side execution: GPU kernels and host<->device staging.

Reproduces the paper's device configuration: an optimized two-pass
parallel reduction (>= 1024 blocks x 512 threads, final pass 1 block x
1024 threads) over a column, with the host<->device transfer charged —
or not — depending on whether the column is already device-resident
(Figure 2, panels 3 vs. 4).

Resilience: staging transfers are retried under the context's
:class:`~repro.faults.RetryPolicy`, injected device-OOM is surfaced as
:class:`~repro.errors.DeviceError`, and any fault that survives the
retries propagates so the calling engine's fallback chain can degrade
to the host path (recording which path actually served the query).
"""

from __future__ import annotations

import numpy as np

import math

from repro.errors import CapacityError, ExecutionError, PlacementError
from repro.execution.context import ExecutionContext
from repro.faults.injector import SITE_DEVICE_ALLOC
from repro.hardware.event import Cycles, PerfCounters
from repro.hardware.memory import MemoryKind, MemorySpace
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout

__all__ = [
    "device_sum_column",
    "device_count_where",
    "transfer_fragment",
    "is_device_resident",
]


def _staging_transfer(
    attribute: str, staged_bytes: int, ctx: ExecutionContext
) -> Cycles:
    """Charge the host->device staging copy, retrying injected faults.

    The retry policy comes from the context; without one, a
    :class:`~repro.errors.TransferError` propagates on first failure
    (callers degrade to the host path via their fallback chains).
    Every attempt — failed ones included — charges its wire time, so
    resilience is visible in the measured cycle count.
    """
    def attempt() -> Cycles:
        return ctx.platform.interconnect.transfer_cost(staged_bytes, ctx.counters)

    if ctx.retry is not None:
        return ctx.retry.run(f"pcie-transfer({attribute})", attempt, ctx)
    return attempt()


def is_device_resident(fragment: Fragment) -> bool:
    """Whether a fragment's payload lives in device memory."""
    return fragment.space.kind is MemoryKind.DEVICE


def transfer_fragment(
    fragment: Fragment, space: MemorySpace, ctx: ExecutionContext, label: str = ""
) -> Fragment:
    """Copy a fragment into *space*, charging the PCIe transfer.

    Raises :class:`~repro.errors.CapacityError` when the target space
    cannot hold it — the trigger of CoGaDB's all-or-nothing fallback.
    """
    if fragment.space is space:
        raise PlacementError(
            f"{fragment.label}: already resident in {space.name}"
        )
    clone = fragment.copy_to(space, label)
    cost = ctx.platform.interconnect.transfer_cost(fragment.nbytes, ctx.counters)
    ctx.note(f"transfer({fragment.label})", cost)
    return clone


def _chunked_reduction_cost(
    ctx: ExecutionContext, count: int, per_chunk: int, width: int
) -> Cycles:
    """Charge a chunked reduction without pricing every chunk separately.

    A chunked staging loop runs ``count // per_chunk`` full chunks plus
    at most one remainder chunk, so only two distinct kernel costs
    exist.  Each is priced once against a scratch counter, then the
    per-chunk charges are replayed with seeded ``np.cumsum`` (strict
    left-to-right accumulation) so cycles and device-cycles — and the
    integer launch counts — land byte-identical to the per-chunk loop.
    """
    gpu = ctx.platform.gpu
    n_full, remainder = divmod(count, per_chunk)
    costs: list[Cycles] = []
    device_cycles: list[float] = []
    launches = 0
    if n_full:
        probe = PerfCounters()
        full_cost = gpu.reduction_cost(per_chunk, width, probe)
        costs.extend([full_cost] * n_full)
        device_cycles.extend([probe.device_cycles] * n_full)
        launches += probe.kernel_launches * n_full
    if remainder:
        probe = PerfCounters()
        costs.append(gpu.reduction_cost(remainder, width, probe))
        device_cycles.append(probe.device_cycles)
        launches += probe.kernel_launches
    counters = ctx.counters
    kernel_cost = _seeded_sum(0.0, costs)
    counters.cycles = _seeded_sum(counters.cycles, costs)
    counters.device_cycles = _seeded_sum(counters.device_cycles, device_cycles)
    counters.kernel_launches += launches
    return kernel_cost


def _seeded_sum(seed: float, values: list[float]) -> float:
    """Strict left-to-right float sum of *values* starting from *seed*."""
    accumulator = np.empty(len(values) + 1, dtype=np.float64)
    accumulator[0] = seed
    accumulator[1:] = values
    np.cumsum(accumulator, out=accumulator)
    return float(accumulator[-1])


def device_sum_column(
    layout: Layout,
    attribute: str,
    ctx: ExecutionContext,
    charge_transfer: bool = True,
) -> float:
    """Sum one attribute on the GPU (the paper's reduction kernel).

    For every fragment covering *attribute*:

    * if it is device-resident, only the kernel cost is charged;
    * otherwise the column's bytes are staged over PCIe through a real
      device-memory bounce buffer — unless ``charge_transfer`` is
      False, which reproduces panel 4's "transfer costs to device
      excluded" accounting (the data plane still computes the true sum
      either way).

    Staging adapts to device-memory pressure (Bress, Funke & Teubner's
    robustness strategies): the bounce buffer is sized to the free
    device memory, and a column larger than it is processed in chunks —
    same total traffic, one extra kernel launch per chunk.  A device
    with no free memory at all raises
    :class:`~repro.errors.CapacityError`, which callers (CoGaDB's HyPE)
    turn into a host fallback.
    """
    fragments = layout.fragments_for_attribute(attribute)
    if not fragments:
        return 0.0  # empty relation: nothing to reduce, no launch issued
    width = fragments[0].schema.attribute(attribute).width
    total = 0.0
    count = 0
    staged_bytes = 0
    for fragment in fragments:
        if not fragment.is_phantom:
            values = fragment.column(attribute)
            total += float(np.sum(values)) if len(values) else 0.0
        count += fragment.filled
        if not is_device_resident(fragment):
            staged_bytes += fragment.filled * width

    chunks = 1
    if staged_bytes and charge_transfer:
        device = ctx.platform.device_memory
        if ctx.platform.injector is not None:
            # Injected device OOM: the allocation request itself fails
            # (beyond what the capacity model can predict).
            ctx.platform.injector.check(SITE_DEVICE_ALLOC, ctx.counters)
        buffer_bytes = min(staged_bytes, device.available)
        if buffer_bytes < width:
            raise CapacityError(
                f"device memory exhausted: {device.available} B free, "
                f"cannot stage even one {width} B element of {attribute!r}"
            )
        bounce = device.allocate(buffer_bytes, f"stage({attribute})")
        try:
            chunks = math.ceil(staged_bytes / buffer_bytes)
            cost = _staging_transfer(attribute, staged_bytes, ctx)
            # Each chunk is its own DMA setup.
            cost += (chunks - 1) * ctx.platform.interconnect.transfer_cost(0)
            ctx.note("pcie-transfer", cost)
        finally:
            device.free(bounce)
    if count:
        if chunks == 1:
            kernel_cost = ctx.platform.gpu.reduction_cost(
                count, width, ctx.counters
            )
        else:
            per_chunk = math.ceil(count / chunks)
            kernel_cost = _chunked_reduction_cost(ctx, count, per_chunk, width)
        ctx.note(f"gpu-reduce({attribute})", kernel_cost)
    # Returning the scalar to the host is one tiny device->host copy.
    result_cost = ctx.platform.interconnect.transfer_cost(width, ctx.counters)
    ctx.note("result-copy", result_cost)
    return total


def device_count_where(
    layout: Layout,
    attribute: str,
    predicate,
    ctx: ExecutionContext,
    charge_transfer: bool = True,
) -> int:
    """Count rows matching a vectorized predicate, on the GPU.

    The selection kernel streams the column once (bandwidth-bound, like
    the reduction) and reduces the match bitmap on-device, so only the
    scalar count crosses the bus back — the classic GPU selection +
    count fusion.  Host-resident fragments are staged first unless
    ``charge_transfer`` is False.
    """
    import numpy as np

    fragments = layout.fragments_for_attribute(attribute)
    if not fragments:
        return 0  # empty relation
    width = fragments[0].schema.attribute(attribute).width
    matches = 0
    count = 0
    staged_bytes = 0
    for fragment in fragments:
        if not fragment.is_phantom:
            values = fragment.column(attribute)
            if len(values):
                mask = np.asarray(predicate(values), dtype=bool)
                if mask.shape != values.shape:
                    raise ExecutionError(
                        f"predicate returned shape {mask.shape} for "
                        f"{values.shape} values"
                    )
                matches += int(np.sum(mask))
        count += fragment.filled
        if not is_device_resident(fragment):
            staged_bytes += fragment.filled * width
    if staged_bytes and charge_transfer:
        if ctx.platform.injector is not None:
            ctx.platform.injector.check(SITE_DEVICE_ALLOC, ctx.counters)
        cost = _staging_transfer(attribute, staged_bytes, ctx)
        ctx.note("pcie-transfer", cost)
    if count:
        kernel_seconds = ctx.platform.gpu.streaming_kernel_seconds(
            nbytes=count * width, ops=count * 2  # compare + ballot
        )
        kernel = (
            ctx.platform.gpu.seconds_to_host_cycles(kernel_seconds)
            + 2 * ctx.platform.gpu.launch_latency_cycles
        )
        ctx.charge(f"gpu-count-where({attribute})", kernel)
        ctx.counters.kernel_launches += 2
        ctx.counters.device_cycles += kernel_seconds * ctx.platform.gpu.clock_hz
    result_cost = ctx.platform.interconnect.transfer_cost(8, ctx.counters)
    ctx.note("result-copy", result_cost)
    return matches
