"""Threading policies: the paper's single- vs. multi-threaded series.

The paper's multi-threaded host runs fix 8 threads with *blockwise
partitioning*: "each thread operates on one exclusive and subsequent
list of input positions".  :func:`blockwise_partition` reproduces that
split; :class:`ThreadingPolicy` carries the thread count into the CPU
model's :meth:`~repro.hardware.cpu.CPUModel.parallelize`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError

__all__ = [
    "ThreadingPolicy",
    "SINGLE_THREADED",
    "MULTI_THREADED_8",
    "blockwise_partition",
]


@dataclass(frozen=True)
class ThreadingPolicy:
    """How a host operator spreads its work over worker threads."""

    name: str
    threads: int

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ExecutionError(f"threads must be >= 1, got {self.threads}")

    @property
    def is_parallel(self) -> bool:
        """True when thread management is involved at all."""
        return self.threads > 1


#: The paper's sequential baseline ("no thread management involved at all").
SINGLE_THREADED = ThreadingPolicy("single-threaded", 1)

#: The paper's parallel host configuration (8 threads, blockwise).
MULTI_THREADED_8 = ThreadingPolicy("multi-threaded", 8)


def blockwise_partition(count: int, threads: int) -> list[tuple[int, int]]:
    """Split ``[0, count)`` into *threads* exclusive, subsequent blocks.

    Returns ``(start, stop)`` half-open pairs; earlier blocks get the
    remainder, matching the usual blockwise scheme.  Fewer blocks than
    *threads* are returned when there is not enough work.

    >>> blockwise_partition(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    if count < 0:
        raise ExecutionError(f"count must be >= 0, got {count}")
    if threads < 1:
        raise ExecutionError(f"threads must be >= 1, got {threads}")
    if count == 0:
        return []
    blocks = min(threads, count)
    base, extra = divmod(count, blocks)
    partitions: list[tuple[int, int]] = []
    cursor = 0
    for index in range(blocks):
        size = base + (1 if index < extra else 0)
        partitions.append((cursor, cursor + size))
        cursor += size
    return partitions
