"""Snapshot isolation for HTAP: fork + copy-on-write (challenge b.iii)."""

from repro.mvcc.snapshot import (
    FAULT_OVERHEAD_CYCLES,
    PAGE_BYTES,
    PTE_COPY_CYCLES,
    Snapshot,
    SnapshotManager,
)

__all__ = [
    "Snapshot",
    "SnapshotManager",
    "PAGE_BYTES",
    "PTE_COPY_CYCLES",
    "FAULT_OVERHEAD_CYCLES",
]
