"""Copy-on-write snapshots: detaching analytics from transactions.

Challenge (b.iii): HTAP systems must process "long-running ad-hoc
analytic queries and massive short-living write-intensive transactional
queries ... without interferences".  HyPer's answer — cited twice by
the survey ([1] virtual-memory snapshots, [20] MVCC) — is to give every
analytic query a consistent *snapshot* of the data that the OLTP stream
keeps mutating, paying only for the pages actually touched by writes.

:class:`SnapshotManager` models that mechanism at page granularity:

* :meth:`fork` creates a snapshot of a layout — cost is one page-table
  copy (cycles per page entry), NOT a data copy;
* writes must pass through :meth:`before_update`; the first write to a
  page under a live snapshot copies the page's **pre-image** into the
  snapshot (one page copy per (snapshot, page) — the copy-on-write
  fault), after which the writer proceeds at full speed;
* :class:`Snapshot` serves reads that are consistent as of the fork,
  overlaying preserved pre-images on the live fragments;
* :meth:`Snapshot.release` drops the pre-images and stops charging
  faults.

The interference ablation (A6) compares this against the naive
"detach by full copy" strategy the paper's challenge implies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import TransactionError
from repro.execution.context import ExecutionContext
from repro.hardware.event import Cycles
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout

__all__ = ["Snapshot", "SnapshotManager", "PAGE_BYTES", "PTE_COPY_CYCLES"]

#: Virtual-memory page size the CoW mechanism works at.
PAGE_BYTES = 4096
#: Cycles to duplicate one page-table entry during fork().
PTE_COPY_CYCLES: Cycles = 130.0
#: Cycles of kernel fault-handling overhead per CoW page copy.
FAULT_OVERHEAD_CYCLES: Cycles = 2_500.0


@dataclass
class Snapshot:
    """One consistent read view of a layout, as of its fork instant.

    Pre-images are stored per (fragment, attribute, page index): the
    page's values at fork time.  Reads overlay them on the live data.
    """

    layout: Layout
    manager: "SnapshotManager"
    #: (fragment id, attribute, page index) -> pre-image value array.
    _preimages: dict[tuple[int, str, int], np.ndarray] = field(default_factory=dict)
    _released: bool = False
    pages_copied: int = 0

    # ------------------------------------------------------------------
    @property
    def is_live(self) -> bool:
        """Whether the snapshot still intercepts writes."""
        return not self._released

    def release(self) -> None:
        """Drop the snapshot: pre-images are freed, faults stop.

        Idempotent: releasing an already-released snapshot is a no-op —
        no error, no second cycle charge, no double-free.  Recovery
        teardown sweeps every snapshot it can reach
        (:meth:`SnapshotManager.release_all`) without knowing which
        ones the crashed run already dropped, so double releases are
        the *normal* case there, not a bug.
        """
        if self._released:
            return
        self._released = True
        self._preimages.clear()
        self.manager._forget(self)

    def _require_live(self) -> None:
        if self._released:
            raise TransactionError("snapshot has been released")

    # ------------------------------------------------------------------
    # Consistent reads
    # ------------------------------------------------------------------
    def column(self, attribute: str) -> np.ndarray:
        """The attribute's values as of the fork (across fragments)."""
        self._require_live()
        parts = []
        for fragment in self.layout.fragments_for_attribute(attribute):
            parts.append(self._fragment_column(fragment, attribute))
        return np.concatenate(parts) if parts else np.empty(0)

    def _fragment_column(self, fragment: Fragment, attribute: str) -> np.ndarray:
        live = np.array(fragment.column(attribute), copy=True)
        width = fragment.schema.attribute(attribute).width
        rows_per_page = max(PAGE_BYTES // width, 1)
        for (fragment_id, name, page), preimage in self._preimages.items():
            if fragment_id != id(fragment) or name != attribute:
                continue
            start = page * rows_per_page
            stop = min(start + len(preimage), len(live))
            if start < len(live):
                live[start:stop] = preimage[: stop - start]
        return live

    def read_field(self, position: int, attribute: str) -> Any:
        """One field as of the fork."""
        self._require_live()
        fragment = self.layout.fragment_for(position, attribute)
        local = position - fragment.region.rows.start
        width = fragment.schema.attribute(attribute).width
        rows_per_page = max(PAGE_BYTES // width, 1)
        page = local // rows_per_page
        key = (id(fragment), attribute, page)
        preimage = self._preimages.get(key)
        if preimage is not None:
            return preimage[local - page * rows_per_page]
        return fragment.read_field(local, attribute)

    def sum(self, attribute: str, ctx: ExecutionContext) -> float:
        """Attribute-centric aggregation over the snapshot.

        Costs the same column stream as a live scan (the snapshot's
        pages are ordinary memory) — that is the whole point: analytics
        run at full speed, isolated from the writers.
        """
        self._require_live()
        from repro.execution.operators import column_scan_cost

        total = 0.0
        memory: Cycles = 0.0
        compute: Cycles = 0.0
        for fragment in self.layout.fragments_for_attribute(attribute):
            values = self._fragment_column(fragment, attribute)
            total += float(np.sum(values)) if len(values) else 0.0
            fragment_memory, fragment_compute = column_scan_cost(
                fragment, attribute, ctx
            )
            memory += fragment_memory
            compute += fragment_compute
        cycles = ctx.platform.cpu.parallelize(
            compute_cycles=compute,
            memory_cycles=memory,
            threads=ctx.threading.threads,
        )
        ctx.charge(f"snapshot-sum({attribute})", cycles)
        return total


class SnapshotManager:
    """Fork/CoW coordination for one layout's writers and snapshots."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout
        self._live: list[Snapshot] = []

    @property
    def live_snapshots(self) -> tuple[Snapshot, ...]:
        """Snapshots still intercepting writes."""
        return tuple(self._live)

    def _forget(self, snapshot: Snapshot) -> None:
        self._live = [s for s in self._live if s is not snapshot]

    def release_all(self) -> int:
        """Release every live snapshot (recovery teardown sweep).

        Returns the number of snapshots actually released.  Safe to
        call repeatedly and to interleave with individual
        :meth:`Snapshot.release` calls — release is idempotent.
        """
        released = 0
        for snapshot in list(self._live):
            snapshot.release()
            released += 1
        return released

    # ------------------------------------------------------------------
    def fork(self, ctx: ExecutionContext) -> Snapshot:
        """Create a snapshot: one page-table copy, no data copy."""
        payload = sum(fragment.nbytes for fragment in self.layout.fragments)
        pages = math.ceil(payload / PAGE_BYTES)
        cost = pages * PTE_COPY_CYCLES
        ctx.charge("snapshot-fork", cost)
        snapshot = Snapshot(layout=self.layout, manager=self)
        self._live.append(snapshot)
        return snapshot

    def before_update(
        self, position: int, attribute: str, ctx: ExecutionContext
    ) -> None:
        """CoW hook: call before mutating cell ``(position, attribute)``.

        For every live snapshot that has not yet preserved the
        containing page, the page's pre-image is copied (one fault +
        one page copy each).  Writers NOT calling this before writing
        would corrupt snapshot consistency — engines integrating the
        manager route all updates through it.
        """
        for fragment in self.layout.fragments:
            if not fragment.region.contains(position, attribute):
                continue
            local = position - fragment.region.rows.start
            width = fragment.schema.attribute(attribute).width
            rows_per_page = max(PAGE_BYTES // width, 1)
            page = local // rows_per_page
            key = (id(fragment), attribute, page)
            for snapshot in self._live:
                if key in snapshot._preimages:
                    continue
                start = page * rows_per_page
                stop = min(start + rows_per_page, fragment.filled)
                snapshot._preimages[key] = np.array(
                    fragment.column(attribute)[start:stop], copy=True
                )
                snapshot.pages_copied += 1
                copy_cost = (
                    FAULT_OVERHEAD_CYCLES
                    + ctx.platform.memory_model.sequential(2 * PAGE_BYTES)
                )
                ctx.charge("cow-fault", copy_cost)
                ctx.counters.bytes_written += PAGE_BYTES
