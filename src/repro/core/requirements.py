"""Section IV-C's reference storage-engine requirements, checkable.

"(1) at least constrained strong flexible layout support, (2) layout
responsive to changes in workloads, (3) mixed data location and
distributed data locality, (4) fragmentation linearization that cover
NSM and DSM, (5) built-in multi layout handling for relations, and
(6) fragment scheme supports delegation."

Each requirement is one predicate over a derived
:class:`~repro.core.classification.Classification`;
:func:`check_requirements` evaluates all six, and the gap benchmark
(E8) shows that no surveyed engine passes all of them while the
reference engine does — the paper's "resolute: not yet".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.classification import Classification
from repro.core.taxonomy import (
    FragmentScheme,
    LayoutAdaptability,
    LayoutHandling,
    LocationLocality,
    LocationTarget,
)

__all__ = ["Requirement", "REFERENCE_REQUIREMENTS", "check_requirements", "satisfies_all"]


@dataclass(frozen=True)
class Requirement:
    """One numbered requirement of the reference design."""

    number: int
    title: str
    predicate: Callable[[Classification], bool]

    def check(self, classification: Classification) -> bool:
        """Whether *classification* satisfies the requirement."""
        return self.predicate(classification)


REFERENCE_REQUIREMENTS: tuple[Requirement, ...] = (
    Requirement(
        1,
        "at least constrained strong flexible layout support",
        lambda c: c.flexibility.is_strong,
    ),
    Requirement(
        2,
        "layout responsive to changes in workloads",
        lambda c: c.adaptability is LayoutAdaptability.RESPONSIVE,
    ),
    Requirement(
        3,
        "mixed data location and distributed data locality",
        lambda c: c.location_target is LocationTarget.MIXED
        and c.location_locality is LocationLocality.DISTRIBUTED,
    ),
    Requirement(
        4,
        "fragmentation linearization that covers NSM and DSM",
        lambda c: c.linearization.covers_nsm_and_dsm,
    ),
    Requirement(
        5,
        "built-in multi layout handling for relations",
        lambda c: c.layout_handling is LayoutHandling.MULTI_BUILT_IN,
    ),
    Requirement(
        6,
        "fragment scheme supports delegation",
        lambda c: c.scheme is FragmentScheme.DELEGATION,
    ),
)


def check_requirements(classification: Classification) -> dict[int, bool]:
    """Requirement number -> pass/fail for one classification."""
    return {
        requirement.number: requirement.check(classification)
        for requirement in REFERENCE_REQUIREMENTS
    }


def satisfies_all(classification: Classification) -> bool:
    """Whether every reference requirement holds."""
    return all(check_requirements(classification).values())
