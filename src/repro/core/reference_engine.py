"""The paper's reference storage-engine design, implemented.

Section IV-C closes the gap analysis with a design sketch; this module
realizes it as a working engine that satisfies all six requirements at
once (the survey shows no existing engine does):

1. **Constrained strong flexible layouts** — a horizontal delta/main
   cut first, then vertical decomposition of the main region into
   columns (delta tiles stay NSM for writes).
2. **Responsive** — :meth:`reorganize` merges the delta into the main
   columns and re-derives device placements from workload statistics.
3. **Mixed location, distributed locality** — hot main columns are
   replicated to device memory (all-or-nothing per column), the rest
   stay on the host.
4. **Linearization covering NSM and DSM** — fat NSM delta tiles plus
   DSM(-emulated) main columns, with both formats available per
   fragment.
5. **Built-in multi layout** — the unified host layout and the
   device-accelerated layout are both complete views of the relation.
6. **Delegation** — a region policy assigns every row exclusively to
   the delta or the main (no redundancy between them); only the
   device placement is replicated, and writes keep replicas coherent.

Beyond the six requirements, the engine integrates the
:mod:`repro.mvcc` snapshot mechanism for challenge (b.iii): updates
pass through a copy-on-write hook, and :meth:`ReferenceEngine.analytic_snapshot`
hands analytics a consistent view that the OLTP stream cannot disturb.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.adapt.statistics import AttributeStatistics
from repro.engines.base import (
    DelegationPolicy,
    EngineCapabilities,
    FragmentationChoice,
    MultiLayoutSupport,
    StorageEngine,
    WorkloadSupport,
    fill_fragment,
)
from repro.errors import EngineError
from repro.execution.access import AccessKind
from repro.execution.context import ExecutionContext
from repro.execution.device import device_sum_column, is_device_resident
from repro.execution.operators import sum_column
from repro.faults.policy import FallbackChain, FallbackStep
from repro.layout.fragment import Fragment
from repro.layout.layout import Layout
from repro.layout.linearization import LinearizationKind
from repro.layout.partitioning import PartitioningOrder
from repro.layout.region import Region
from repro.model.relation import Relation, RowRange
from repro.mvcc.snapshot import Snapshot, SnapshotManager

__all__ = ["RegionDelegation", "ReferenceEngine"]

DEFAULT_DELTA_TILE_ROWS = 1024


class RegionDelegation(DelegationPolicy):
    """Row-range delegation: every row is owned by delta or main."""

    def __init__(self, main_rows: int) -> None:
        self.main_rows = main_rows

    def owner_of(self, position: int, attribute: str) -> str:
        return "main" if position < self.main_rows else "delta"

    def describe(self) -> str:
        return f"delta/main split at row {self.main_rows}"


class ReferenceEngine(StorageEngine):
    """The ideal HTAP CPU/GPU storage engine of Section IV-C."""

    name = "Reference"
    year = 2017

    def __init__(
        self,
        platform,
        delta_tile_rows: int = DEFAULT_DELTA_TILE_ROWS,
        auto_place: bool = True,
        constrained: bool = True,
    ) -> None:
        super().__init__(platform)
        if delta_tile_rows < 1:
            raise EngineError(f"{self.name}: delta_tile_rows must be >= 1")
        self.delta_tile_rows = delta_tile_rows
        self.auto_place = auto_place
        #: The paper asks for "at least constrained" strong flexibility;
        #: the unconstrained variant drops the fixed cut order (clients
        #: may then define arbitrary fragment grids via the layout API).
        self.constrained = constrained
        self._delegations: dict[str, RegionDelegation] = {}
        self._snapshot_managers: dict[str, SnapshotManager] = {}

    def capabilities(self) -> EngineCapabilities:
        return EngineCapabilities(
            fragmentation_choice=FragmentationChoice.BOTH,
            constrained_order=(
                PartitioningOrder.HORIZONTAL_THEN_VERTICAL
                if self.constrained
                else None
            ),
            fat_formats=frozenset({LinearizationKind.NSM, LinearizationKind.DSM}),
            per_fragment_choice=True,
            multi_layout=MultiLayoutSupport.BUILT_IN,
            workload=WorkloadSupport.HTAP,
            host_execution=True,
            device_execution=True,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _main_column(
        self,
        relation: Relation,
        attribute: str,
        rows: RowRange,
        columns: dict[str, np.ndarray] | None,
    ) -> Fragment:
        fragment = Fragment(
            Region(rows, (attribute,)),
            relation.schema,
            None,
            self.platform.host_memory,
            label=f"ref:{relation.name}:main:{attribute}",
            materialize=columns is not None,
        )
        fill_fragment(fragment, columns)
        return fragment

    def _build(
        self, relation: Relation, columns: dict[str, np.ndarray] | None
    ) -> list[Layout]:
        main_columns = [
            self._main_column(relation, attribute, relation.rows, columns)
            for attribute in relation.schema.names
        ]
        self._delegations[relation.name] = RegionDelegation(relation.row_count)
        unified = Layout(f"{relation.name}/unified", relation, main_columns)
        self._snapshot_managers[relation.name] = SnapshotManager(unified)
        accelerated = Layout(
            f"{relation.name}/accelerated",
            relation,
            list(main_columns),
            allow_overlap=True,
        )
        return [unified, accelerated]

    def _after_load(self, managed) -> None:
        super()._after_load(managed)
        if self.auto_place and managed.relation.row_count:
            self._place_hottest(managed.relation.name)

    def delegation_policy(self, name: str) -> RegionDelegation:
        return self._delegations[name]

    def _drop_extras(self, managed) -> None:
        name = managed.relation.name
        self._delegations.pop(name, None)
        self._snapshot_managers.pop(name, None)

    # ------------------------------------------------------------------
    # Snapshot isolation (challenge b.iii)
    # ------------------------------------------------------------------
    def analytic_snapshot(self, name: str, ctx: ExecutionContext) -> Snapshot:
        """Fork a consistent read view for a long-running analytic query.

        The snapshot survives any number of concurrent updates (they
        pay copy-on-write faults for the pages they touch); release it
        when the query finishes to stop the faulting.
        """
        return self._snapshot_managers[name].fork(ctx)

    def update(self, name, position, attribute, value, ctx):
        self._snapshot_managers[name].before_update(position, attribute, ctx)
        super().update(name, position, attribute, value, ctx)

    # ------------------------------------------------------------------
    # Device placement (requirement 3)
    # ------------------------------------------------------------------
    def _numeric_attributes(self, relation: Relation) -> list[str]:
        return [
            attribute.name
            for attribute in relation.schema
            if attribute.dtype.numpy_dtype().kind in ("i", "f")
        ]

    def placed_columns(self, name: str) -> list[str]:
        """Attributes currently replicated in device memory."""
        accelerated = self.managed(name).layouts[1]
        return [
            fragment.region.attributes[0]
            for fragment in accelerated.fragments
            if is_device_resident(fragment) and fragment.region.is_column
        ]

    def _place_hottest(self, name: str, limit: int | None = None) -> list[str]:
        """Replicate the hottest numeric main columns to the device.

        Ranking comes from the workload trace when it has events, and
        falls back to schema order otherwise.  All-or-nothing per
        column; returns the attributes newly placed.
        """
        managed = self.managed(name)
        relation = managed.relation
        unified, accelerated = managed.layouts
        stats = AttributeStatistics.from_events(
            relation.schema, managed.trace.window()
        )
        candidates = self._numeric_attributes(relation)
        if managed.trace.window():
            ranked = [
                attribute
                for attribute in stats.hottest(relation.schema.arity)
                if attribute in candidates
            ]
        else:
            ranked = candidates
        placed: list[str] = []
        already = set(self.placed_columns(name))
        device = self.platform.device_memory
        for attribute in ranked:
            if limit is not None and len(placed) >= limit:
                break
            if attribute in already:
                continue
            host_fragment = None
            for fragment in unified.fragments:
                if (
                    fragment.region.attributes == (attribute,)
                    and not is_device_resident(fragment)
                ):
                    host_fragment = fragment
                    break
            if host_fragment is None or not device.fits(host_fragment.nbytes):
                continue
            replica = host_fragment.copy_to(
                device, f"ref:{name}:main:{attribute}@device"
            )
            accelerated.replace_fragments(
                [replica, *accelerated.fragments]
            )
            placed.append(attribute)
        return placed

    def _unplace_all(self, name: str) -> None:
        """Drop every device replica (before a merge invalidates them)."""
        accelerated = self.managed(name).layouts[1]
        keep = []
        for fragment in accelerated.fragments:
            if is_device_resident(fragment):
                fragment.free()
            else:
                keep.append(fragment)
        accelerated.replace_fragments(keep)

    # ------------------------------------------------------------------
    # Writes: OLTP goes to the NSM delta
    # ------------------------------------------------------------------
    def insert(self, name: str, row: Sequence[Any], ctx: ExecutionContext) -> int:
        managed = self.managed(name)
        relation = managed.relation
        schema = relation.schema
        if len(row) != schema.arity:
            raise EngineError(
                f"{self.name}: row has {len(row)} values, schema needs {schema.arity}"
            )
        unified, accelerated = managed.layouts
        position = relation.row_count
        tile = None
        for fragment in unified.fragments:
            if (
                fragment.region.rows.contains(position)
                and fragment.region.arity == schema.arity
                and not fragment.is_full
            ):
                tile = fragment
                break
        if tile is None:
            rows = RowRange(position, position + self.delta_tile_rows)
            region = Region(rows, schema.names)
            tile = Fragment(
                region,
                schema,
                None if region.is_thin else LinearizationKind.NSM,
                self.platform.host_memory,
                label=f"ref:{name}:delta:[{rows.start},{rows.stop})",
            )
            unified.add_fragment(tile)
            accelerated.add_fragment(tile)
        tile.append_rows([tuple(row)])
        managed.relation = relation.resized(position + 1)
        unified.relation = managed.relation
        accelerated.relation = managed.relation
        if managed.primary_index is not None:
            managed.primary_index.insert(row[0], position)
        self.record_access(name, AccessKind.WRITE, schema.names, 1)
        cost = ctx.platform.memory_model.random(
            count=1, touched=schema.record_width, footprint=max(tile.nbytes, 1)
        )
        ctx.charge(f"ref-insert({name})", cost)
        ctx.counters.bytes_written += schema.record_width
        return position

    # ------------------------------------------------------------------
    # Reads: OLAP prefers the device, delegation routes the rest
    # ------------------------------------------------------------------
    def sum(self, name: str, attribute: str, ctx: ExecutionContext) -> float:
        """Main part on the GPU when placed, delta patched on the CPU."""
        managed = self.managed(name)
        self.record_access(
            name, AccessKind.READ, (attribute,), managed.relation.row_count
        )
        unified, accelerated = managed.layouts
        device_fragment = None
        for fragment in accelerated.fragments:
            if (
                fragment.region.attributes == (attribute,)
                and is_device_resident(fragment)
            ):
                device_fragment = fragment
                break
        if device_fragment is None:
            return sum_column(unified, attribute, ctx)

        def device_path() -> float:
            view = Layout(
                f"{name}/device-view",
                managed.relation,
                [device_fragment],
                allow_overlap=True, validate=False,
            )
            total = device_sum_column(view, attribute, ctx)
            # Patch in the delta rows beyond the device replica's range.
            delta_view_fragments = [
                fragment
                for fragment in unified.fragments
                if fragment.region.rows.start >= device_fragment.region.rows.stop
                and attribute in fragment.region.attributes
            ]
            if delta_view_fragments:
                delta_view = Layout(
                    f"{name}/delta-view",
                    managed.relation,
                    delta_view_fragments,
                    allow_overlap=True, validate=False,
                )
                total += sum_column(delta_view, attribute, ctx)
            return total

        injector = self.platform.injector
        chain = FallbackChain(
            [
                FallbackStep("device", device_path),
                FallbackStep("host", lambda: sum_column(unified, attribute, ctx)),
            ],
            report=injector.report if injector is not None else None,
        )
        with ctx.span(
            f"ref-sum({attribute})", "operator", placed=True
        ) as span:
            total, served_by = chain.run(ctx)
            if span is not None:
                span.attrs["served_by"] = served_by
        return total

    # ------------------------------------------------------------------
    # Responsive adaptation: delta merge + re-placement (requirement 2)
    # ------------------------------------------------------------------
    def reorganize(self, name: str, ctx: ExecutionContext) -> bool:
        """Merge the delta into the main columns, then re-place.

        Returns False when the delta is empty and placements are
        already optimal for the observed workload.
        """
        managed = self.managed(name)
        relation = managed.relation
        unified, accelerated = managed.layouts
        delegation = self._delegations[name]
        manager = self._snapshot_managers[name]
        if manager.live_snapshots:
            raise EngineError(
                f"{self.name}: cannot re-organize {name!r} while "
                f"{len(manager.live_snapshots)} analytic snapshot(s) are live"
            )
        delta_tiles = [
            fragment
            for fragment in unified.fragments
            if fragment.region.rows.start >= delegation.main_rows
        ]
        changed = False
        if delta_tiles:
            self._unplace_all(name)
            # The merge rewrites every main column in place; any staged
            # device replicas of the old fragments are now stale.
            ctx.platform.staging.invalidate_all()
            schema = relation.schema
            old_columns = [
                fragment
                for fragment in unified.fragments
                if fragment not in delta_tiles
            ]
            merged: dict[str, np.ndarray] = {}
            for attribute in schema.names:
                parts = [
                    fragment.column(attribute)
                    for fragment in old_columns
                    if attribute in fragment.region.attributes
                ]
                for tile in sorted(
                    delta_tiles, key=lambda f: f.region.rows.start
                ):
                    parts.append(np.asarray(tile.column(attribute)))
                merged[attribute] = np.concatenate(parts) if parts else np.empty(0)
            new_columns = [
                self._main_column(relation, attribute, relation.rows, merged)
                for attribute in schema.names
            ]
            cost = 2 * ctx.platform.memory_model.sequential(relation.nsm_bytes)
            ctx.charge(f"ref-merge({name})", cost)
            for fragment in unified.fragments:
                fragment.free()
            unified.replace_fragments(new_columns)
            unified.validate()
            accelerated.replace_fragments(list(new_columns))
            delegation.main_rows = relation.row_count
            changed = True
        placed = self._place_hottest(name)
        if placed:
            for attribute in placed:
                replica_bytes = relation.row_count * relation.schema.attribute(
                    attribute
                ).width
                cost = ctx.platform.staging.scheduler.transfer(
                    replica_bytes, ctx.counters
                )
                ctx.note(f"ref-place({attribute})", cost)
            changed = True
        return changed
