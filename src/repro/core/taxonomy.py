"""The paper's taxonomy (Figure 4) as enums and an explicit tree.

Each classification *axis* is an enum whose values are the taxonomy's
leaves; :data:`TAXONOMY_TREE` reproduces Figure 4's hierarchy literally
(inner nodes and all), so the structure itself is testable and
renderable, not just the leaf values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.layout.properties import LinearizationProperty

__all__ = [
    "LayoutHandling",
    "LayoutFlexibility",
    "LayoutAdaptability",
    "LocationTarget",
    "LocationLocality",
    "FragmentScheme",
    "ProcessorSupport",
    "LinearizationProperty",
    "TaxonomyNode",
    "TAXONOMY_TREE",
]


class LayoutHandling(enum.Enum):
    """Single layout vs. multi layout (built-in or emulated)."""

    SINGLE = "single"
    MULTI_BUILT_IN = "built-in multi"
    MULTI_EMULATED = "emulated multi"

    @property
    def is_multi(self) -> bool:
        """Whether a relation may have several alternative layouts."""
        return self is not LayoutHandling.SINGLE


class LayoutFlexibility(enum.Enum):
    """Fragmentation freedom: none, one technique, or both (ordered?)."""

    INFLEXIBLE = "inflex."
    WEAK = "weak flex."
    STRONG_CONSTRAINED = "strong flex. (constr.)"
    STRONG_UNCONSTRAINED = "strong flex. (unconstr.)"

    @property
    def is_flexible(self) -> bool:
        """Anything beyond one-fragment-per-layout."""
        return self is not LayoutFlexibility.INFLEXIBLE

    @property
    def is_strong(self) -> bool:
        """Combines vertical and horizontal partitioning."""
        return self in (
            LayoutFlexibility.STRONG_CONSTRAINED,
            LayoutFlexibility.STRONG_UNCONSTRAINED,
        )

    @property
    def table_label(self) -> str:
        """Table 1 prints strong flexibility without the order suffix."""
        if self.is_strong:
            return "strong flex."
        return self.value


class LayoutAdaptability(enum.Enum):
    """Whether layouts re-organize in response to the workload."""

    STATIC = "static"
    RESPONSIVE = "respons."


class LocationTarget(enum.Enum):
    """Where tuplets live (the target half of the data-location axis)."""

    HOST_MEMORY_ONLY = "host-memory-only"
    DEVICE_MEMORY_ONLY = "device-memory-only"
    SECONDARY_MEMORY_ONLY = "secondary-memory-only"
    MIXED = "mixed"


class LocationLocality(enum.Enum):
    """Centralized vs. distributed data locality."""

    CENTRALIZED = "centr."
    DISTRIBUTED = "distr."


class FragmentScheme(enum.Enum):
    """How multi-layout redundancy is managed (or not present)."""

    NONE = "-"
    REPLICATION = "replication"
    DELEGATION = "delegated"


class ProcessorSupport(enum.Enum):
    """Which processors execute the engine's operators."""

    CPU = "CPU"
    GPU = "GPU"
    CPU_GPU = "CPU/GPU"

    @property
    def includes_gpu(self) -> bool:
        """Whether the device participates in execution."""
        return self in (ProcessorSupport.GPU, ProcessorSupport.CPU_GPU)


@dataclass(frozen=True)
class TaxonomyNode:
    """One node of Figure 4's tree."""

    name: str
    children: tuple["TaxonomyNode", ...] = ()
    leaf_value: object | None = None

    @property
    def is_leaf(self) -> bool:
        """Whether the node carries a classification value."""
        return not self.children

    def walk(self) -> Iterator[tuple[int, "TaxonomyNode"]]:
        """Depth-first (depth, node) traversal."""
        yield 0, self
        for child in self.children:
            for depth, node in child.walk():
                yield depth + 1, node

    def leaves(self) -> list["TaxonomyNode"]:
        """All leaf nodes under this node."""
        return [node for __, node in self.walk() if node.is_leaf]

    def find(self, name: str) -> "TaxonomyNode | None":
        """First node with the given name (depth-first)."""
        for __, node in self.walk():
            if node.name == name:
                return node
        return None

    def render(self, indent: str = "  ") -> str:
        """A plain-text rendering of the subtree."""
        lines = [f"{indent * depth}{node.name}" for depth, node in self.walk()]
        return "\n".join(lines)


def _leaf(name: str, value: object) -> TaxonomyNode:
    return TaxonomyNode(name, leaf_value=value)


#: Figure 4, literally: the classification-property tree.
TAXONOMY_TREE = TaxonomyNode(
    "Storage Engine",
    (
        TaxonomyNode(
            "Layout Handling",
            (
                _leaf("Single Layout", LayoutHandling.SINGLE),
                TaxonomyNode(
                    "Multi Layout",
                    (
                        _leaf("Built-In", LayoutHandling.MULTI_BUILT_IN),
                        _leaf("Emulated", LayoutHandling.MULTI_EMULATED),
                    ),
                ),
            ),
        ),
        TaxonomyNode(
            "Layout Flexibility",
            (
                _leaf("Inflexible", LayoutFlexibility.INFLEXIBLE),
                TaxonomyNode(
                    "Flexible",
                    (
                        _leaf("Weak", LayoutFlexibility.WEAK),
                        TaxonomyNode(
                            "Strong",
                            (
                                _leaf(
                                    "Constrained",
                                    LayoutFlexibility.STRONG_CONSTRAINED,
                                ),
                                _leaf(
                                    "Unconstrained",
                                    LayoutFlexibility.STRONG_UNCONSTRAINED,
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
        TaxonomyNode(
            "Layout Adaptability",
            (
                _leaf("Static", LayoutAdaptability.STATIC),
                _leaf("Responsive", LayoutAdaptability.RESPONSIVE),
            ),
        ),
        TaxonomyNode(
            "Data Location",
            (
                TaxonomyNode(
                    "Target",
                    (
                        _leaf("Host-Memory-Only", LocationTarget.HOST_MEMORY_ONLY),
                        _leaf(
                            "Device-Memory-Only", LocationTarget.DEVICE_MEMORY_ONLY
                        ),
                        _leaf("Mixed", LocationTarget.MIXED),
                    ),
                ),
                TaxonomyNode(
                    "Locality",
                    (
                        _leaf("Centralized", LocationLocality.CENTRALIZED),
                        _leaf("Distributed", LocationLocality.DISTRIBUTED),
                    ),
                ),
            ),
        ),
        TaxonomyNode(
            "Fragment Linearization",
            (
                TaxonomyNode(
                    "Fat Fragments",
                    (
                        _leaf("NSM-Fixed", LinearizationProperty.FAT_NSM_FIXED),
                        _leaf("DSM-Fixed", LinearizationProperty.FAT_DSM_FIXED),
                        _leaf("Variable", LinearizationProperty.FAT_VARIABLE),
                    ),
                ),
                TaxonomyNode(
                    "Thin Fragments",
                    (
                        _leaf("Direct Linearization", LinearizationProperty.DIRECT),
                        TaxonomyNode(
                            "Emulated Linearization",
                            (
                                _leaf("NSM", LinearizationProperty.THIN_NSM_EMULATED),
                                _leaf("DSM", LinearizationProperty.THIN_DSM_EMULATED),
                            ),
                        ),
                    ),
                ),
                TaxonomyNode(
                    "Variable",
                    (
                        _leaf(
                            "DSM-Fixed Partially NSM-Emulated",
                            LinearizationProperty.VARIABLE_DSM_FIXED_PARTIALLY_NSM_EMULATED,
                        ),
                        _leaf(
                            "NSM-Fixed Partially DSM-Emulated",
                            LinearizationProperty.VARIABLE_NSM_FIXED_PARTIALLY_DSM_EMULATED,
                        ),
                    ),
                ),
            ),
        ),
        TaxonomyNode(
            "Fragment Scheme",
            (
                _leaf("Replication-Based", FragmentScheme.REPLICATION),
                _leaf("Delegation-Based", FragmentScheme.DELEGATION),
            ),
        ),
    ),
)
