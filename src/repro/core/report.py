"""Text renderings of the paper's artifacts (Table 1, Figure 4, E8).

The benchmark harness prints these so a run's output can be compared
against the paper side by side; EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.classification import Classification
from repro.core.requirements import REFERENCE_REQUIREMENTS, check_requirements
from repro.core.survey import SurveyResult
from repro.core.taxonomy import TAXONOMY_TREE

__all__ = [
    "render_table",
    "render_survey_table",
    "render_taxonomy",
    "render_requirements_matrix",
]

_HEADERS = (
    "Engine",
    "Layout handling",
    "Layout flexibility",
    "Layout adaptability",
    "Data location",
    "Fragment linearization",
    "Fragment scheme",
    "Processor",
    "Workload",
    "Date",
)


def render_table(rows: Sequence[Sequence[str]], headers: Sequence[str]) -> str:
    """A plain-text table with per-column width alignment."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))

    separator = "-+-".join("-" * width for width in widths)
    lines = [fmt(headers), separator]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_survey_table(results: Sequence[SurveyResult]) -> str:
    """Table 1, re-derived, with a match marker per row."""
    rows = []
    for result in results:
        marker = "==" if result.matches else "!="
        rows.append((*result.derived.row(), marker))
    return render_table(rows, (*_HEADERS, "vs paper"))


def render_taxonomy() -> str:
    """Figure 4's tree as indented text."""
    return TAXONOMY_TREE.render()


def render_requirements_matrix(
    classifications: Sequence[Classification],
) -> str:
    """The E8 gap matrix: engines x six reference requirements."""
    headers = ["Engine"] + [
        f"R{requirement.number}" for requirement in REFERENCE_REQUIREMENTS
    ] + ["all six"]
    rows = []
    for classification in classifications:
        verdicts = check_requirements(classification)
        rows.append(
            (
                classification.engine,
                *("yes" if verdicts[r.number] else "no" for r in REFERENCE_REQUIREMENTS),
                "YES" if all(verdicts.values()) else "no",
            )
        )
    legend = "\n".join(
        f"  R{requirement.number}: {requirement.title}"
        for requirement in REFERENCE_REQUIREMENTS
    )
    return render_table(rows, headers) + "\n\nRequirements:\n" + legend
