"""The paper's contribution: taxonomy, classification, survey, reference design."""

from repro.core.classification import (
    Classification,
    check_capability_consistency,
    classify,
)
from repro.core.optimizer import ContinuousOptimizer
from repro.core.reference_engine import ReferenceEngine, RegionDelegation
from repro.core.report import (
    render_requirements_matrix,
    render_survey_table,
    render_table,
    render_taxonomy,
)
from repro.core.requirements import (
    REFERENCE_REQUIREMENTS,
    Requirement,
    check_requirements,
    satisfies_all,
)
from repro.core.survey import (
    PAPER_TABLE_1,
    ExpectedRow,
    SurveyResult,
    build_reference_instances,
    run_survey,
)
from repro.core.taxonomy import (
    TAXONOMY_TREE,
    FragmentScheme,
    LayoutAdaptability,
    LayoutFlexibility,
    LayoutHandling,
    LinearizationProperty,
    LocationLocality,
    LocationTarget,
    ProcessorSupport,
    TaxonomyNode,
)

__all__ = [
    "LayoutHandling",
    "LayoutFlexibility",
    "LayoutAdaptability",
    "LocationTarget",
    "LocationLocality",
    "FragmentScheme",
    "ProcessorSupport",
    "LinearizationProperty",
    "TaxonomyNode",
    "TAXONOMY_TREE",
    "Classification",
    "classify",
    "check_capability_consistency",
    "ExpectedRow",
    "PAPER_TABLE_1",
    "SurveyResult",
    "build_reference_instances",
    "run_survey",
    "Requirement",
    "REFERENCE_REQUIREMENTS",
    "check_requirements",
    "satisfies_all",
    "ReferenceEngine",
    "ContinuousOptimizer",
    "RegionDelegation",
    "render_table",
    "render_survey_table",
    "render_taxonomy",
    "render_requirements_matrix",
]
