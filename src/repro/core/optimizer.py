"""Figure 1's loop: continuous re-organization and re-assignment.

The paper's opening figure shows HTAP systems cycling between
"physical record layout re-organization" and "compute device
re-assignment" as the workload mixes analytical and transactional
queries.  :class:`ContinuousOptimizer` runs that loop for any
responsive engine: it watches the relation's workload trace and invokes
the engine's :meth:`reorganize` every *period* queries — re-cutting
layouts AND re-deriving device placements in one step (both live inside
the engines' reorganize hooks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.base import StorageEngine
from repro.errors import EngineError
from repro.execution.context import ExecutionContext

__all__ = ["ContinuousOptimizer"]


@dataclass
class ContinuousOptimizer:
    """Periodic background optimization for one engine relation.

    Attributes
    ----------
    engine:
        A responsive engine (static engines are rejected — they have
        nothing to run the loop with).
    relation:
        The relation to watch.
    period:
        Queries between optimization attempts.
    """

    engine: StorageEngine
    relation: str
    period: int = 100
    reorganizations: int = 0
    _last_seen: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise EngineError("optimizer period must be >= 1")
        if not self.engine.is_responsive:
            raise EngineError(
                f"{self.engine.name} is static; the Figure 1 loop needs a "
                "responsive engine"
            )
        self._last_seen = self.engine.managed(self.relation).trace.total_recorded

    @property
    def queries_since_last_run(self) -> int:
        """Trace growth since the optimizer last fired."""
        trace = self.engine.managed(self.relation).trace
        return trace.total_recorded - self._last_seen

    def tick(self, ctx: ExecutionContext) -> bool:
        """Run one loop iteration if the period has elapsed.

        Returns True when a re-organization actually changed the
        physical design.  Call after every query (cheap when idle).
        """
        if self.queries_since_last_run < self.period:
            return False
        self._last_seen = self.engine.managed(self.relation).trace.total_recorded
        changed = self.engine.reorganize(self.relation, ctx)
        if changed:
            self.reorganizations += 1
        return changed
