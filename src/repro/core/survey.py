"""Table 1 as an executable artifact.

:data:`PAPER_TABLE_1` transcribes the paper's survey table;
:func:`build_reference_instances` constructs a *representative live
instance* of every surveyed engine (loaded with the TPC-C-like item
table and exercised with a small standard protocol so capability-
revealing state exists — CoGaDB placements, L-Store tails, ...);
:func:`run_survey` classifies the instances and compares against the
paper.  The survey test asserts zero mismatches, which makes Table 1 a
theorem about the mini-engines instead of a transcription.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.classification import Classification, classify
from repro.core.taxonomy import (
    FragmentScheme,
    LayoutAdaptability,
    LayoutFlexibility,
    LayoutHandling,
    ProcessorSupport,
)
from repro.engines import (
    CoGaDBEngine,
    ES2Engine,
    FracturedMirrorsEngine,
    GpuTxEngine,
    H2OEngine,
    HyperEngine,
    HyriseEngine,
    LStoreEngine,
    PaxEngine,
    PelotonEngine,
    StorageEngine,
)
from repro.execution.context import ExecutionContext
from repro.hardware.platform import Platform
from repro.layout.linearization import LinearizationKind
from repro.layout.properties import LinearizationProperty
from repro.workload.tpcc import generate_items, item_schema

__all__ = ["ExpectedRow", "PAPER_TABLE_1", "SurveyResult", "build_reference_instances", "run_survey"]

REPRESENTATIVE_ROWS = 1000


@dataclass(frozen=True)
class ExpectedRow:
    """The paper's Table 1 cells for one engine (as taxonomy values)."""

    layout_handling: LayoutHandling
    flexibility: LayoutFlexibility
    adaptability: LayoutAdaptability
    location_label: str
    linearization: LinearizationProperty
    scheme: FragmentScheme
    processors: ProcessorSupport
    workload: str
    year: int


#: The paper's Table 1, engine name -> expected classification.
#: (Strong flexibility is printed without the constrained/unconstrained
#: suffix in the paper's table; the comparison uses ``table_label``.)
PAPER_TABLE_1: dict[str, ExpectedRow] = {
    "PAX": ExpectedRow(
        LayoutHandling.SINGLE,
        LayoutFlexibility.INFLEXIBLE,
        LayoutAdaptability.STATIC,
        "Host + Disc centr.",
        LinearizationProperty.FAT_DSM_FIXED,
        FragmentScheme.NONE,
        ProcessorSupport.CPU,
        "HTAP",
        2002,
    ),
    "Frac. Mirrors": ExpectedRow(
        LayoutHandling.MULTI_BUILT_IN,
        LayoutFlexibility.INFLEXIBLE,
        LayoutAdaptability.STATIC,
        "Host + Disc distr.",
        LinearizationProperty.FAT_NSM_PLUS_DSM_FIXED,
        FragmentScheme.REPLICATION,
        ProcessorSupport.CPU,
        "HTAP",
        2002,
    ),
    "HYRISE": ExpectedRow(
        LayoutHandling.SINGLE,
        LayoutFlexibility.WEAK,
        LayoutAdaptability.RESPONSIVE,
        "Host + Host centr.",
        LinearizationProperty.FAT_VARIABLE,
        FragmentScheme.NONE,
        ProcessorSupport.CPU,
        "HTAP",
        2010,
    ),
    "ES2": ExpectedRow(
        LayoutHandling.MULTI_BUILT_IN,
        LayoutFlexibility.STRONG_CONSTRAINED,
        LayoutAdaptability.RESPONSIVE,
        "Host + distr.",
        LinearizationProperty.FAT_DSM_FIXED,
        FragmentScheme.DELEGATION,
        ProcessorSupport.CPU,
        "HTAP",
        2011,
    ),
    "GPUTx": ExpectedRow(
        LayoutHandling.SINGLE,
        LayoutFlexibility.WEAK,
        LayoutAdaptability.STATIC,
        "Dev. + Dev. centr.",
        LinearizationProperty.THIN_DSM_EMULATED,
        FragmentScheme.NONE,
        ProcessorSupport.GPU,
        "OLTP",
        2011,
    ),
    "H2O": ExpectedRow(
        LayoutHandling.SINGLE,
        LayoutFlexibility.WEAK,
        LayoutAdaptability.RESPONSIVE,
        "Host + Host centr.",
        LinearizationProperty.VARIABLE_NSM_FIXED_PARTIALLY_DSM_EMULATED,
        FragmentScheme.NONE,
        ProcessorSupport.CPU,
        "HTAP",
        2014,
    ),
    "HyPer": ExpectedRow(
        LayoutHandling.SINGLE,
        LayoutFlexibility.STRONG_CONSTRAINED,
        LayoutAdaptability.RESPONSIVE,
        "Host + Host centr.",
        LinearizationProperty.THIN_DSM_EMULATED,
        FragmentScheme.NONE,
        ProcessorSupport.CPU,
        "HTAP",
        2015,
    ),
    "CoGaDB": ExpectedRow(
        LayoutHandling.MULTI_BUILT_IN,
        LayoutFlexibility.WEAK,
        LayoutAdaptability.STATIC,
        "Mixed + distr.",
        LinearizationProperty.THIN_DSM_EMULATED,
        FragmentScheme.REPLICATION,
        ProcessorSupport.CPU_GPU,
        "OLAP",
        2016,
    ),
    "L-Store": ExpectedRow(
        LayoutHandling.SINGLE,
        LayoutFlexibility.STRONG_CONSTRAINED,
        LayoutAdaptability.RESPONSIVE,
        "Host + Host centr.",
        LinearizationProperty.THIN_DSM_EMULATED,
        FragmentScheme.DELEGATION,
        ProcessorSupport.CPU,
        "HTAP",
        2016,
    ),
    "Peloton": ExpectedRow(
        LayoutHandling.MULTI_BUILT_IN,
        LayoutFlexibility.STRONG_CONSTRAINED,
        LayoutAdaptability.RESPONSIVE,
        "Host + Host centr.",
        LinearizationProperty.FAT_VARIABLE,
        FragmentScheme.DELEGATION,
        ProcessorSupport.CPU,
        "HTAP",
        2016,
    ),
}


def _standard_protocol(engine: StorageEngine, ctx: ExecutionContext) -> None:
    """Exercise an engine so capability-revealing state exists."""
    rows = engine.relation("item").row_count
    last = max(rows - 1, 0)
    engine.sum("item", "i_price", ctx)
    engine.materialize("item", sorted({1 % rows, rows // 2, last}), ctx)
    engine.update("item", 10 % rows, "i_price", 1.25, ctx)
    engine.update("item", 20 % rows, "i_im_id", 777, ctx)
    engine.sum_at("item", "i_price", sorted({5 % rows, rows // 3, last}), ctx)


def build_reference_instances(
    row_count: int = REPRESENTATIVE_ROWS,
) -> list[tuple[StorageEngine, str]]:
    """One representative live instance per surveyed engine.

    Every instance gets its own fresh platform (a fresh machine) and the
    same item table, then runs the standard protocol plus any engine-
    specific step its survey text calls for (CoGaDB's column placement,
    H2O's hot column, HYRISE's mixed containers, ...).
    """
    columns = generate_items(row_count)
    schema = item_schema()
    instances: list[tuple[StorageEngine, str]] = []

    def fresh(make: Callable[[Platform], StorageEngine]) -> StorageEngine:
        platform = Platform.paper_testbed()
        engine = make(platform)
        engine.create("item", schema)
        engine.load("item", columns)
        ctx = ExecutionContext(platform)
        _standard_protocol(engine, ctx)
        return engine

    instances.append((fresh(lambda p: PaxEngine(p, buffer_pool_pages=64)), "item"))
    instances.append((fresh(FracturedMirrorsEngine), "item"))
    instances.append(
        (
            fresh(
                lambda p: HyriseEngine(
                    p,
                    initial_containers=[
                        (("i_id", "i_im_id"), LinearizationKind.NSM),
                        (("i_name", "i_data"), LinearizationKind.DSM),
                        (("i_price",), LinearizationKind.DIRECT),
                    ],
                )
            ),
            "item",
        )
    )
    instances.append((fresh(lambda p: ES2Engine(p, partition_rows=256)), "item"))
    instances.append((fresh(GpuTxEngine), "item"))
    instances.append(
        (fresh(lambda p: H2OEngine(p, hot_columns=("i_price",))), "item")
    )
    instances.append((fresh(lambda p: HyperEngine(p, chunk_rows=256)), "item"))

    cogadb_platform = Platform.paper_testbed()
    cogadb = CoGaDBEngine(cogadb_platform)
    cogadb.create("item", schema)
    cogadb.load("item", columns)
    cogadb_ctx = ExecutionContext(cogadb_platform)
    cogadb.place_columns("item", ("i_price",), cogadb_ctx)
    _standard_protocol(cogadb, cogadb_ctx)
    instances.append((cogadb, "item"))

    instances.append((fresh(LStoreEngine), "item"))
    instances.append(
        (fresh(lambda p: PelotonEngine(p, tile_group_rows=256)), "item")
    )
    return instances


@dataclass(frozen=True)
class SurveyResult:
    """Derived classification vs. the paper's row, with the differences."""

    engine: str
    derived: Classification
    expected: ExpectedRow
    mismatches: tuple[str, ...]

    @property
    def matches(self) -> bool:
        """True when every compared column agrees with the paper."""
        return not self.mismatches


def _compare(derived: Classification, expected: ExpectedRow) -> tuple[str, ...]:
    problems: list[str] = []
    checks = (
        ("layout handling", derived.layout_handling, expected.layout_handling),
        (
            "flexibility",
            derived.flexibility.table_label,
            expected.flexibility.table_label,
        ),
        ("adaptability", derived.adaptability, expected.adaptability),
        ("data location", derived.location_label, expected.location_label),
        ("linearization", derived.linearization, expected.linearization),
        ("scheme", derived.scheme, expected.scheme),
        ("processors", derived.processors, expected.processors),
        ("workload", derived.workload, expected.workload),
        ("year", derived.year, expected.year),
    )
    for column, got, want in checks:
        if got != want:
            problems.append(f"{column}: derived {got!r}, paper says {want!r}")
    return tuple(problems)


def run_survey(row_count: int = REPRESENTATIVE_ROWS) -> list[SurveyResult]:
    """Classify every representative instance and diff against Table 1."""
    results: list[SurveyResult] = []
    for engine, relation_name in build_reference_instances(row_count):
        derived = classify(engine, relation_name)
        expected = PAPER_TABLE_1[engine.name]
        results.append(
            SurveyResult(
                engine=engine.name,
                derived=derived,
                expected=expected,
                mismatches=_compare(derived, expected),
            )
        )
    return results
